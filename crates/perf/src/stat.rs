//! The `xt-stat` dashboard and regression gate.
//!
//! `run_all` runs the observability workload matrix with interval
//! sampling, `render_json` emits the `BENCH_perf.json` artifact
//! (schema `xt-stat/v2`: v1 plus a per-run `memory` block — miss-class
//! mix, prefetch scorecard — and per-core-pair snoop matrices on the
//! cluster cells), `render_markdown` the sparkline dashboard, and
//! `diff_documents` / `selftest` implement the CI gate that compares a
//! candidate run against a committed baseline. The gate also validates
//! the memory block's internal conservation laws
//! ([`validate_memory`]) so a fabricated count mismatch fails CI.
//!
//! Everything except the full-mode `engine` block (measured host time,
//! explicitly informational) is deterministic: same binary, same
//! flags → byte-identical artifacts. The smoke artifact sets
//! `"engine": null` and is therefore byte-reproducible end to end —
//! that is what `scripts/ci.sh` pins with `diff --tolerance 0`.

use crate::json::{json_f64, Value};
use crate::sampler::TimeSeries;
use crate::topdown::TopDown;
use crate::{run_inorder_sampled, run_ooo_sampled};
use xt_asm::{Asm, Program};
use xt_core::{CoreConfig, RunReport};
use xt_isa::reg::Gpr;
use xt_mem::{MemConfig, PrefetchConfig};
use xt_soc::ClusterSim;
use xt_workloads::stream::{stream, STREAM_ELEMS};

/// Dynamic-instruction budget per run.
const MAX_INSTS: u64 = 500_000_000;

/// Sampling interval (simulated cycles) for smoke / full runs.
pub fn sampling_interval(smoke: bool) -> u64 {
    if smoke {
        1024
    } else {
        8192
    }
}

/// One sampled (workload, machine) run.
#[derive(Clone, Debug)]
pub struct StatRun {
    /// Workload id (stable JSON key).
    pub workload: &'static str,
    /// Machine name.
    pub machine: &'static str,
    /// Final report.
    pub report: RunReport,
    /// Interval time-series.
    pub series: TimeSeries,
}

/// One cluster cell (multicore throughput under the epoch engine).
#[derive(Clone, Debug)]
pub struct ClusterCell {
    /// Workload id.
    pub workload: &'static str,
    /// Simulated cores.
    pub cores: usize,
    /// Slowest core's cycles.
    pub makespan: u64,
    /// Aggregate instructions.
    pub instructions: u64,
    /// Aggregate throughput.
    pub ipc: f64,
    /// Snoop probes sent.
    pub snoops_sent: u64,
    /// Coherence transitions (invalidations + downgrades + upgrades).
    pub coh_transitions: u64,
    /// Requester-major snoop matrix (`cores * cores` entries; sums to
    /// [`ClusterCell::snoops_sent`]).
    pub snoop_matrix: Vec<u64>,
}

/// Measured engine host time (full mode only; informational).
#[derive(Clone, Copy, Debug)]
pub struct EngineSection {
    /// Epoch barriers crossed.
    pub epochs: u64,
    /// Host ns in the serial barrier.
    pub serial_ns: u64,
    /// Host ns in the parallel slice phase.
    pub parallel_ns: u64,
    /// serial / (serial + parallel).
    pub serial_share: f64,
}

/// The cluster section of the report.
#[derive(Clone, Debug)]
pub struct ClusterSection {
    /// Deterministic cells.
    pub cells: Vec<ClusterCell>,
    /// Host-time block (`None` in smoke mode → `"engine": null`).
    pub engine: Option<EngineSection>,
}

/// Dependency-chain microbench: one long serial ALU chain per
/// iteration, so IPC pins near 1 and the issue queue fills behind it.
fn depchain(iters: i64) -> Program {
    let mut a = Asm::new();
    a.li(Gpr::S0, iters);
    let top = a.here();
    for _ in 0..16 {
        a.addi(Gpr::A1, Gpr::A1, 1);
    }
    a.addi(Gpr::S0, Gpr::S0, -1);
    a.bnez(Gpr::S0, top);
    a.halt();
    a.finish().expect("depchain assembles")
}

/// Branchy microbench: an LCG-parity data-dependent branch per
/// iteration — essentially unpredictable, mispredict-flush dominated.
fn branchy(iters: i64) -> Program {
    let mut a = Asm::new();
    a.li(Gpr::S0, 12345);
    a.li(Gpr::S1, 1103515245);
    a.li(Gpr::S2, 12345);
    a.li(Gpr::A2, 0);
    a.li(Gpr::A3, iters);
    let top = a.new_label();
    a.bind(top).expect("label binds");
    a.mul(Gpr::S0, Gpr::S0, Gpr::S1);
    a.add(Gpr::S0, Gpr::S0, Gpr::S2);
    a.srli(Gpr::T0, Gpr::S0, 17);
    a.andi(Gpr::T0, Gpr::T0, 1);
    let skip = a.new_label();
    a.beqz(Gpr::T0, skip);
    a.addi(Gpr::A2, Gpr::A2, 1);
    a.bind(skip).expect("label binds");
    a.addi(Gpr::A3, Gpr::A3, -1);
    a.bnez(Gpr::A3, top);
    a.halt();
    a.finish().expect("branchy assembles")
}

/// Three-phase workload built to exercise the *time-series*: an ALU
/// phase (high IPC), a pointer-chase phase (memory-bound, 4 KiB hops so
/// every load misses), then a branchy phase (mispredict-bound). The
/// dashboard's sparklines show the three regimes as distinct plateaus.
fn phased(alu_iters: i64, chase_iters: i64, branchy_iters: i64, chain_len: u64) -> Program {
    let mut a = Asm::new();
    let base_addr = xt_asm::DEFAULT_DATA_BASE;
    let mut chain = vec![0u64; chain_len as usize * 512];
    for k in 0..chain_len {
        let next_idx = ((k + 1) % chain_len) * 512;
        chain[(k * 512) as usize] = base_addr + next_idx * 8;
    }
    let base = a.data_u64("chain", &chain);
    assert_eq!(base, base_addr, "chain is the first data symbol");
    // phase 1: independent ALU
    a.li(Gpr::A3, alu_iters);
    let p1 = a.here();
    a.addi(Gpr::A1, Gpr::A1, 1);
    a.addi(Gpr::A2, Gpr::A2, 1);
    a.addi(Gpr::A4, Gpr::A4, 1);
    a.addi(Gpr::A3, Gpr::A3, -1);
    a.bnez(Gpr::A3, p1);
    // phase 2: pointer chase
    a.la(Gpr::A1, base);
    a.li(Gpr::A3, chase_iters);
    let p2 = a.here();
    a.ld(Gpr::A1, Gpr::A1, 0);
    a.addi(Gpr::A3, Gpr::A3, -1);
    a.bnez(Gpr::A3, p2);
    // phase 3: unpredictable branches
    a.li(Gpr::S0, 12345);
    a.li(Gpr::S1, 1103515245);
    a.li(Gpr::S2, 12345);
    a.li(Gpr::A3, branchy_iters);
    let p3 = a.new_label();
    a.bind(p3).expect("label binds");
    a.mul(Gpr::S0, Gpr::S0, Gpr::S1);
    a.add(Gpr::S0, Gpr::S0, Gpr::S2);
    a.srli(Gpr::T0, Gpr::S0, 17);
    a.andi(Gpr::T0, Gpr::T0, 1);
    let skip = a.new_label();
    a.beqz(Gpr::T0, skip);
    a.addi(Gpr::A2, Gpr::A2, 1);
    a.bind(skip).expect("label binds");
    a.addi(Gpr::A3, Gpr::A3, -1);
    a.bnez(Gpr::A3, p3);
    a.halt();
    a.finish().expect("phased assembles")
}

/// Per-core private streaming kernel for the cluster section.
fn cluster_kernel(id: u64, loads: i64) -> Program {
    let mut a = Asm::new().with_data_base(0x8100_0000 + id * 0x0010_0000);
    let buf = a.data_zeros("buf", 64 * 1024);
    a.la(Gpr::A1, buf);
    a.li(Gpr::A2, loads);
    let top = a.here();
    a.ld(Gpr::A4, Gpr::A1, 0);
    a.add(Gpr::A5, Gpr::A5, Gpr::A4);
    a.addi(Gpr::A1, Gpr::A1, 8);
    a.addi(Gpr::A2, Gpr::A2, -1);
    a.bnez(Gpr::A2, top);
    a.halt();
    a.finish().expect("cluster kernel assembles")
}

fn mem_cfg(prefetch: PrefetchConfig) -> MemConfig {
    MemConfig {
        prefetch,
        ..MemConfig::default()
    }
}

/// Runs the sampled workload matrix. `smoke` shrinks every workload so
/// the matrix finishes in seconds (the CI gate size).
pub fn run_all(smoke: bool) -> Vec<StatRun> {
    let interval = sampling_interval(smoke);
    let stream_elems = if smoke { 2048 } else { STREAM_ELEMS };
    let depchain_iters = if smoke { 200 } else { 5000 };
    let branchy_iters = if smoke { 500 } else { 5000 };
    let (alu_i, chase_i, brn_i, chain) = if smoke {
        (300, 200, 300, 64)
    } else {
        (5000, 2000, 5000, 256)
    };

    let xt910 = CoreConfig::xt910();
    let u74 = CoreConfig::u74_like();
    let stream_k = stream(stream_elems);
    let dep = depchain(depchain_iters);
    let brn = branchy(branchy_iters);
    let phs = phased(alu_i, chase_i, brn_i, chain);

    let ooo = |workload, prog: &Program, mc: MemConfig| {
        let (report, series) = run_ooo_sampled(prog, &xt910, mc, MAX_INSTS, interval);
        StatRun {
            workload,
            machine: report.machine,
            report,
            series,
        }
    };
    let ino = |workload, prog: &Program, mc: MemConfig| {
        let (report, series) = run_inorder_sampled(prog, &u74, mc, MAX_INSTS, interval);
        StatRun {
            workload,
            machine: report.machine,
            report,
            series,
        }
    };

    vec![
        ooo("stream_pf_off", &stream_k.program, mem_cfg(PrefetchConfig::off())),
        ooo("stream_pf_on", &stream_k.program, mem_cfg(PrefetchConfig::all_large())),
        ooo("depchain", &dep, xt910.mem),
        ino("depchain", &dep, u74.mem),
        ooo("branchy", &brn, xt910.mem),
        ooo("phased", &phs, xt910.mem),
    ]
}

/// Runs the 4-core cluster cell. Simulated-cycle results are
/// deterministic for any thread count; host time is only reported in
/// full mode.
pub fn run_cluster(smoke: bool) -> ClusterSection {
    let loads = if smoke { 512 } else { 8192 };
    let progs: Vec<Program> = (0..4u64).map(|i| cluster_kernel(i, loads)).collect();
    let mc = MemConfig {
        cores: 4,
        ..MemConfig::default()
    };
    let r = ClusterSim::new(&progs, &CoreConfig::xt910(), mc, MAX_INSTS).run_threads(4);
    let cells = vec![ClusterCell {
        workload: "stream4",
        cores: 4,
        makespan: r.makespan(),
        instructions: r.total_instructions(),
        ipc: r.throughput_ipc(),
        snoops_sent: r.mem.snoops_sent,
        coh_transitions: r.mem.coh_transitions(),
        snoop_matrix: r.mem.snoop_matrix.clone(),
    }];
    let engine = if smoke {
        None
    } else {
        Some(EngineSection {
            epochs: r.engine.epochs,
            serial_ns: r.engine.serial_ns,
            parallel_ns: r.engine.parallel_ns,
            serial_share: r.engine.serial_share(),
        })
    };
    ClusterSection { cells, engine }
}

fn topdown_json(td: &TopDown, indent: &str) -> String {
    format!(
        "{indent}\"topdown\": {{ \"frontend\": {}, \"bad_speculation\": {}, \
         \"backend_core\": {}, \"backend_memory\": {}, \"vector\": {}, \"retiring\": {} }}",
        td.frontend, td.bad_speculation, td.backend_core, td.backend_memory, td.vector, td.retiring
    )
}

fn num_array<T: std::fmt::Display>(items: impl Iterator<Item = T>) -> String {
    let v: Vec<String> = items.map(|x| x.to_string()).collect();
    format!("[{}]", v.join(", "))
}

fn f64_array(items: impl Iterator<Item = f64>) -> String {
    let v: Vec<String> = items.map(json_f64).collect();
    format!("[{}]", v.join(", "))
}

/// Renders a run's `memory` block: core 0's miss-class attribution
/// (with its conservation total) plus the data-side prefetch scorecard
/// — aggregate columns summed over every stream slot, and the per-slot
/// breakdown for the non-zero slots. Instruction-side sequential
/// prefetches have no stream table and are excluded here (they report
/// only in the run totals), which is what makes `pf_late <= pf_useful`
/// hold structurally.
fn memory_json(mem: &xt_mem::MemStats, indent: &str) -> String {
    let scorecard = mem.pf_scorecard.first().map(Vec::as_slice).unwrap_or(&[]);
    let agg = |f: fn(&xt_mem::StreamScore) -> u64| -> u64 { scorecard.iter().map(f).sum() };
    let mut s = String::new();
    s.push_str(&format!("{indent}\"memory\": {{\n"));
    s.push_str(&format!("{indent}  \"misses\": {},\n", mem.l1d[0].1));
    s.push_str(&format!(
        "{indent}  \"compulsory\": {}, \"capacity\": {}, \"conflict\": {}, \"coherence\": {},\n",
        mem.miss_compulsory[0], mem.miss_capacity[0], mem.miss_conflict[0], mem.miss_coherence[0]
    ));
    s.push_str(&format!(
        "{indent}  \"pf_issued\": {}, \"pf_useful\": {}, \"pf_late\": {}, \"pf_useless\": {},\n",
        agg(|sc| sc.issued),
        agg(|sc| sc.useful),
        agg(|sc| sc.late),
        agg(|sc| sc.useless)
    ));
    s.push_str(&format!("{indent}  \"pf_scorecard\": ["));
    let slots: Vec<String> = scorecard
        .iter()
        .enumerate()
        .filter(|(_, sc)| sc.issued + sc.useful + sc.late + sc.useless > 0)
        .map(|(i, sc)| {
            format!(
                "{{ \"stream\": {i}, \"issued\": {}, \"useful\": {}, \"late\": {}, \
                 \"useless\": {}, \"accuracy\": {}, \"timeliness\": {} }}",
                sc.issued,
                sc.useful,
                sc.late,
                sc.useless,
                json_f64(sc.accuracy()),
                json_f64(sc.timeliness())
            )
        })
        .collect();
    s.push_str(&slots.join(", "));
    s.push_str("]\n");
    s.push_str(&format!("{indent}}}"));
    s
}

/// Renders the `BENCH_perf.json` document (schema `xt-stat/v2`).
pub fn render_json(runs: &[StatRun], cluster: &ClusterSection, smoke: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"xt-stat/v2\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!(
        "  \"interval\": {},\n",
        sampling_interval(smoke)
    ));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let p = &r.report.perf;
        let td = r.series.aggregate_topdown();
        let tm = r.series.total_mem();
        s.push_str("    {\n");
        s.push_str(&format!("      \"workload\": \"{}\",\n", r.workload));
        s.push_str(&format!("      \"machine\": \"{}\",\n", r.machine));
        s.push_str("      \"totals\": {\n");
        s.push_str(&format!("        \"cycles\": {},\n", p.cycles));
        s.push_str(&format!("        \"instructions\": {},\n", p.instructions));
        s.push_str(&format!("        \"ipc\": {},\n", json_f64(p.ipc())));
        s.push_str(&format!(
            "        \"pf_accuracy\": {},\n",
            json_f64(tm.pf_accuracy())
        ));
        s.push_str(&format!(
            "        \"pf_coverage\": {},\n",
            json_f64(tm.pf_coverage())
        ));
        s.push_str(&format!(
            "        \"pf_streams\": {},\n",
            tm.pf_streams
        ));
        s.push_str(&format!(
            "        \"coh_transitions\": {},\n",
            tm.coh_transitions
        ));
        s.push_str(&topdown_json(&td, "        "));
        s.push('\n');
        s.push_str("      },\n");
        s.push_str("      \"series\": {\n");
        s.push_str(&format!(
            "        \"end_cycle\": {},\n",
            num_array(r.series.samples.iter().map(|x| x.end_cycle))
        ));
        s.push_str(&format!(
            "        \"ipc\": {},\n",
            f64_array(r.series.samples.iter().map(|x| x.perf.ipc()))
        ));
        s.push_str(&format!(
            "        \"l1d_miss_rate\": {},\n",
            f64_array(r.series.samples.iter().map(|x| x.mem.l1d_miss_rate()))
        ));
        s.push_str(&format!(
            "        \"pf_accuracy\": {},\n",
            f64_array(r.series.samples.iter().map(|x| x.mem.pf_accuracy()))
        ));
        s.push_str(&format!(
            "        \"backend_memory\": {},\n",
            num_array(r.series.samples.iter().map(|x| x.topdown.backend_memory))
        ));
        s.push_str(&format!(
            "        \"retiring\": {}\n",
            num_array(r.series.samples.iter().map(|x| x.topdown.retiring))
        ));
        s.push_str("      },\n");
        s.push_str(&memory_json(&r.report.mem, "      "));
        s.push('\n');
        let comma = if i + 1 < runs.len() { "," } else { "" };
        s.push_str(&format!("    }}{comma}\n"));
    }
    s.push_str("  ],\n");
    s.push_str("  \"cluster\": {\n");
    s.push_str("    \"cells\": [\n");
    for (i, c) in cluster.cells.iter().enumerate() {
        let comma = if i + 1 < cluster.cells.len() { "," } else { "" };
        s.push_str(&format!(
            "      {{ \"workload\": \"{}\", \"cores\": {}, \"makespan\": {}, \
             \"instructions\": {}, \"ipc\": {}, \"snoops_sent\": {}, \
             \"coh_transitions\": {}, \"snoop_matrix\": {} }}{}\n",
            c.workload,
            c.cores,
            c.makespan,
            c.instructions,
            json_f64(c.ipc),
            c.snoops_sent,
            c.coh_transitions,
            num_array(c.snoop_matrix.iter()),
            comma
        ));
    }
    s.push_str("    ],\n");
    match &cluster.engine {
        Some(e) => s.push_str(&format!(
            "    \"engine\": {{ \"epochs\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \
             \"serial_share\": {} }}\n",
            e.epochs,
            e.serial_ns,
            e.parallel_ns,
            json_f64(e.serial_share)
        )),
        None => s.push_str("    \"engine\": null\n"),
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Renders a unicode sparkline of `vals` scaled to the series maximum,
/// chunk-averaged down to at most 64 glyphs.
pub fn spark(vals: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return String::new();
    }
    let points: Vec<f64> = if vals.len() <= 64 {
        vals.to_vec()
    } else {
        // average fixed-size chunks so the line stays readable
        let chunk = vals.len().div_ceil(64);
        vals.chunks(chunk)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    };
    let max = points.iter().cloned().fold(0.0f64, f64::max);
    points
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                LEVELS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

/// Renders the Markdown dashboard.
pub fn render_markdown(runs: &[StatRun], cluster: &ClusterSection, smoke: bool) -> String {
    let mut s = String::new();
    s.push_str("# xt-stat performance dashboard\n\n");
    s.push_str(if smoke {
        "Smoke-sized run (`xt-stat --smoke`): shapes are meaningful, magnitudes are not.\n\n"
    } else {
        "Generated by `cargo run --release -p xt-perf --bin xt-stat`.\n\n"
    });
    s.push_str(&format!(
        "Sampling interval: {} cycles. See docs/OBSERVABILITY.md for \
         definitions and the baseline-refresh workflow.\n\n",
        sampling_interval(smoke)
    ));

    s.push_str("## Summary\n\n");
    s.push_str("| workload | machine | cycles | insts | IPC | intervals |\n");
    s.push_str("|---|---|---:|---:|---:|---:|\n");
    for r in runs {
        let p = &r.report.perf;
        s.push_str(&format!(
            "| {} | {} | {} | {} | {:.3} | {} |\n",
            r.workload,
            r.machine,
            p.cycles,
            p.instructions,
            p.ipc(),
            r.series.samples.len()
        ));
    }

    s.push_str("\n## Top-down cycle accounting (aggregate)\n\n");
    s.push_str("| workload | machine | frontend | bad-spec | backend-core | backend-mem | vector | retiring |\n");
    s.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
    for r in runs {
        let td = r.series.aggregate_topdown();
        let sh = td.shares(r.report.perf.cycles);
        s.push_str(&format!(
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |\n",
            r.workload,
            r.machine,
            sh[0] * 100.0,
            sh[1] * 100.0,
            sh[2] * 100.0,
            sh[3] * 100.0,
            sh[4] * 100.0,
            sh[5] * 100.0,
        ));
    }

    s.push_str("\n## Time series\n\n");
    s.push_str(
        "Per-interval sparklines, each scaled to its own maximum \
         (leftmost = run start).\n\n",
    );
    for r in runs {
        let ipc: Vec<f64> = r.series.samples.iter().map(|x| x.perf.ipc()).collect();
        let miss: Vec<f64> = r
            .series
            .samples
            .iter()
            .map(|x| x.mem.l1d_miss_rate())
            .collect();
        let mem_share: Vec<f64> = r
            .series
            .samples
            .iter()
            .map(|x| x.topdown.backend_memory as f64 / x.perf.cycles.max(1) as f64)
            .collect();
        let fmax = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        s.push_str(&format!("### {} @ {}\n\n", r.workload, r.machine));
        s.push_str("```text\n");
        s.push_str(&format!("IPC          {}  (max {:.3})\n", spark(&ipc), fmax(&ipc)));
        s.push_str(&format!(
            "L1D miss     {}  (max {:.3})\n",
            spark(&miss),
            fmax(&miss)
        ));
        s.push_str(&format!(
            "mem-bound    {}  (max {:.3})\n",
            spark(&mem_share),
            fmax(&mem_share)
        ));
        s.push_str("```\n\n");
    }

    s.push_str("## Memory hierarchy\n\n");
    s.push_str(
        "L1D miss attribution (3C + coherence; classes sum to the miss \
         total exactly) and the data-side prefetch scorecard aggregates \
         (instruction-side sequential prefetches excluded). See \
         docs/OBSERVABILITY.md for the classification method and its \
         known limits.\n\n",
    );
    s.push_str("| workload | machine | misses | compulsory | capacity | conflict | coherence | pf issued | pf useful | pf late | pf useless |\n");
    s.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in runs {
        let mem = &r.report.mem;
        let scorecard = mem.pf_scorecard.first().map(Vec::as_slice).unwrap_or(&[]);
        let agg = |f: fn(&xt_mem::StreamScore) -> u64| -> u64 { scorecard.iter().map(f).sum() };
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.workload,
            r.machine,
            mem.l1d[0].1,
            mem.miss_compulsory[0],
            mem.miss_capacity[0],
            mem.miss_conflict[0],
            mem.miss_coherence[0],
            agg(|sc| sc.issued),
            agg(|sc| sc.useful),
            agg(|sc| sc.late),
            agg(|sc| sc.useless),
        ));
    }
    s.push('\n');

    s.push_str("## Multicore (epoch-barriered cluster engine)\n\n");
    s.push_str("| workload | cores | makespan | insts | IPC | snoops | coh-transitions |\n");
    s.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
    for c in &cluster.cells {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {:.3} | {} | {} |\n",
            c.workload, c.cores, c.makespan, c.instructions, c.ipc, c.snoops_sent, c.coh_transitions
        ));
    }
    for c in &cluster.cells {
        if c.snoop_matrix.iter().all(|&x| x == 0) {
            continue;
        }
        s.push_str(&format!(
            "\nSnoop matrix for {} (rows = requester, columns = holder):\n\n",
            c.workload
        ));
        s.push_str("```text\n");
        for r in 0..c.cores {
            let row: Vec<String> = (0..c.cores)
                .map(|h| format!("{:>6}", c.snoop_matrix[r * c.cores + h]))
                .collect();
            s.push_str(&format!("core{r} {}\n", row.join(" ")));
        }
        s.push_str("```\n");
    }
    match &cluster.engine {
        Some(e) => s.push_str(&format!(
            "\nEngine host time: {} epochs, serial barrier {:.1}% of engine wall \
             clock ({} ns serial / {} ns parallel). Informational: host time is \
             not part of the determinism contract.\n",
            e.epochs,
            e.serial_share * 100.0,
            e.serial_ns,
            e.parallel_ns
        )),
        None => s.push_str("\nEngine host time: not measured in smoke mode.\n"),
    }
    s
}

// ---- the diff gate ----

/// Outcome of a baseline/candidate comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// Out-of-tolerance metrics, human-readable.
    pub issues: Vec<String>,
    /// Metrics compared.
    pub compared: usize,
}

fn rel_exceeds(base: f64, cand: f64, tol: f64) -> bool {
    (cand - base).abs() > tol * base.abs().max(1.0)
}

fn compare_num(
    out: &mut DiffOutcome,
    ctx: &str,
    key: &str,
    base: &Value,
    cand: &Value,
    tol: f64,
) -> Result<(), String> {
    let b = base
        .get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("{ctx}: baseline missing numeric \"{key}\""))?;
    let c = cand
        .get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("{ctx}: candidate missing numeric \"{key}\""))?;
    out.compared += 1;
    if rel_exceeds(b, c, tol) {
        let dir = if (key == "ipc") == (c < b) {
            "regression"
        } else {
            "change (refresh baseline if intended)"
        };
        out.issues.push(format!(
            "{ctx}: {key} {b} -> {c} ({:+.2}%) — {dir}",
            (c - b) / b.abs().max(1e-12) * 100.0
        ));
    }
    Ok(())
}

/// Finds the run object matching (workload, machine).
fn find_run<'a>(doc: &'a Value, workload: &str, machine: &str) -> Option<&'a Value> {
    doc.get("runs")?.as_arr()?.iter().find(|r| {
        r.get("workload").and_then(Value::as_str) == Some(workload)
            && r.get("machine").and_then(Value::as_str) == Some(machine)
    })
}

/// Reads a required numeric field out of `obj`, for the conservation
/// checks in [`validate_memory`].
fn req_num(obj: &Value, ctx: &str, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("{ctx}: missing numeric \"{key}\""))
}

/// Validates the memory-observability conservation laws inside one
/// xt-stat document:
///
/// * per run: `misses == compulsory + capacity + conflict + coherence`
///   (the miss-classification conservation law) and `pf_late <=
///   pf_useful` (a late prefetch is by definition also useful);
/// * per cluster cell: `snoop_matrix` sums to `snoops_sent`.
///
/// [`diff_documents`] runs this on both documents, so a fabricated or
/// stale artifact that breaks event-count accounting fails the CI gate
/// even when every compared metric matches.
pub fn validate_memory(doc: &Value) -> Result<(), String> {
    let runs = doc.get("runs").and_then(Value::as_arr).ok_or("no runs array")?;
    for r in runs {
        let w = r.get("workload").and_then(Value::as_str).unwrap_or("?");
        let m = r.get("machine").and_then(Value::as_str).unwrap_or("?");
        let ctx = format!("{w}@{m} memory");
        let mem = r
            .get("memory")
            .ok_or_else(|| format!("{ctx}: missing memory block"))?;
        let misses = req_num(mem, &ctx, "misses")?;
        let classes = ["compulsory", "capacity", "conflict", "coherence"]
            .iter()
            .map(|k| req_num(mem, &ctx, k))
            .sum::<Result<f64, _>>()?;
        if misses != classes {
            return Err(format!(
                "{ctx}: miss classes sum to {classes}, but misses = {misses} \
                 (conservation law violated)"
            ));
        }
        let (useful, late) = (req_num(mem, &ctx, "pf_useful")?, req_num(mem, &ctx, "pf_late")?);
        if late > useful {
            return Err(format!("{ctx}: pf_late {late} > pf_useful {useful}"));
        }
    }
    let cells = doc
        .get("cluster")
        .and_then(|c| c.get("cells"))
        .and_then(Value::as_arr)
        .ok_or("no cluster cells")?;
    for c in cells {
        let w = c.get("workload").and_then(Value::as_str).unwrap_or("?");
        let ctx = format!("cluster {w}");
        let sent = req_num(c, &ctx, "snoops_sent")?;
        let matrix = c
            .get("snoop_matrix")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{ctx}: missing snoop_matrix"))?;
        let sum: f64 = matrix.iter().filter_map(Value::as_num).sum();
        if sum != sent {
            return Err(format!(
                "{ctx}: snoop_matrix sums to {sum}, but snoops_sent = {sent}"
            ));
        }
    }
    Ok(())
}

/// Compares `cand` against `base` with relative tolerance `tol`.
/// Simulated-cycle metrics (totals, top-down buckets, per-run memory
/// blocks, cluster cells) are compared; `engine` host-time blocks and
/// the raw series are informational and ignored. Both documents must
/// also pass [`validate_memory`]. `Err` means the documents are
/// structurally incomparable (missing runs, wrong schema, broken
/// conservation laws) — the CI gate treats that as failure too.
pub fn diff_documents(base: &Value, cand: &Value, tol: f64) -> Result<DiffOutcome, String> {
    for (doc, who) in [(base, "baseline"), (cand, "candidate")] {
        match doc.get("schema").and_then(Value::as_str) {
            Some("xt-stat/v2") => {}
            other => return Err(format!("{who}: unsupported schema {other:?}")),
        }
        validate_memory(doc).map_err(|e| format!("{who}: {e}"))?;
    }
    let mut out = DiffOutcome::default();
    let base_runs = base
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("baseline: no runs array")?;
    for br in base_runs {
        let w = br
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("baseline run without workload")?;
        let m = br
            .get("machine")
            .and_then(Value::as_str)
            .ok_or("baseline run without machine")?;
        let ctx = format!("{w}@{m}");
        let cr = find_run(cand, w, m)
            .ok_or_else(|| format!("candidate is missing run {ctx}"))?;
        let bt = br.get("totals").ok_or_else(|| format!("{ctx}: baseline has no totals"))?;
        let ct = cr.get("totals").ok_or_else(|| format!("{ctx}: candidate has no totals"))?;
        for key in ["cycles", "instructions", "ipc"] {
            compare_num(&mut out, &ctx, key, bt, ct, tol)?;
        }
        let btd = bt.get("topdown").ok_or_else(|| format!("{ctx}: baseline has no topdown"))?;
        let ctd = ct.get("topdown").ok_or_else(|| format!("{ctx}: candidate has no topdown"))?;
        for key in TopDown::NAMES {
            compare_num(&mut out, &format!("{ctx} topdown"), key, btd, ctd, tol)?;
        }
        let bm = br.get("memory").ok_or_else(|| format!("{ctx}: baseline has no memory"))?;
        let cm = cr.get("memory").ok_or_else(|| format!("{ctx}: candidate has no memory"))?;
        for key in [
            "misses", "compulsory", "capacity", "conflict", "coherence",
            "pf_issued", "pf_useful", "pf_late", "pf_useless",
        ] {
            compare_num(&mut out, &format!("{ctx} memory"), key, bm, cm, tol)?;
        }
    }
    let base_cells = base
        .get("cluster")
        .and_then(|c| c.get("cells"))
        .and_then(Value::as_arr)
        .ok_or("baseline: no cluster cells")?;
    let cand_cells = cand
        .get("cluster")
        .and_then(|c| c.get("cells"))
        .and_then(Value::as_arr)
        .ok_or("candidate: no cluster cells")?;
    for bc in base_cells {
        let w = bc
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("baseline cell without workload")?;
        let cc = cand_cells
            .iter()
            .find(|c| c.get("workload").and_then(Value::as_str) == Some(w))
            .ok_or_else(|| format!("candidate is missing cluster cell {w}"))?;
        for key in ["makespan", "instructions", "ipc", "snoops_sent", "coh_transitions"] {
            compare_num(&mut out, &format!("cluster {w}"), key, bc, cc, tol)?;
        }
    }
    Ok(out)
}

/// Deep-copies `doc` with every run's `totals.ipc` scaled by `ipc_mul`
/// and `totals.cycles` by `cycle_mul` (the injected regression for
/// [`selftest`]).
fn perturb(doc: &Value, ipc_mul: f64, cycle_mul: f64) -> Value {
    fn walk(v: &Value, in_totals: bool, ipc_mul: f64, cycle_mul: f64) -> Value {
        match v {
            Value::Obj(fields) => Value::Obj(
                fields
                    .iter()
                    .map(|(k, val)| {
                        let scaled = match (in_totals, k.as_str(), val) {
                            (true, "ipc", Value::Num(n)) => Value::Num(n * ipc_mul),
                            (true, "cycles", Value::Num(n)) => Value::Num(n * cycle_mul),
                            _ => walk(val, k == "totals", ipc_mul, cycle_mul),
                        };
                        (k.clone(), scaled)
                    })
                    .collect(),
            ),
            Value::Arr(items) => Value::Arr(
                items
                    .iter()
                    .map(|x| walk(x, in_totals, ipc_mul, cycle_mul))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    walk(doc, false, ipc_mul, cycle_mul)
}

/// Deep-copies `doc` with every `memory.compulsory` bumped by one
/// *without* bumping `misses` — a fabricated event-count mismatch that
/// breaks the miss-classification conservation law (the injected fault
/// for [`selftest`]).
fn break_conservation(doc: &Value) -> Value {
    fn walk(v: &Value, in_memory: bool) -> Value {
        match v {
            Value::Obj(fields) => Value::Obj(
                fields
                    .iter()
                    .map(|(k, val)| {
                        let next = match (in_memory, k.as_str(), val) {
                            (true, "compulsory", Value::Num(n)) => Value::Num(n + 1.0),
                            _ => walk(val, k == "memory"),
                        };
                        (k.clone(), next)
                    })
                    .collect(),
            ),
            Value::Arr(items) => Value::Arr(items.iter().map(|x| walk(x, in_memory)).collect()),
            other => other.clone(),
        }
    }
    walk(doc, false)
}

/// Self-test of the gate: a baseline must diff clean against itself,
/// an injected ≥tolerance IPC/cycle regression must be flagged, and a
/// fabricated event-count mismatch (miss classes no longer summing to
/// the miss total) must be rejected by [`validate_memory`]. Returns
/// `Err` if any direction fails — CI runs this so a broken comparator
/// can never silently wave regressions through.
pub fn selftest(base: &Value, tol: f64) -> Result<(), String> {
    let clean = diff_documents(base, base, tol)?;
    if !clean.issues.is_empty() {
        return Err(format!(
            "baseline differs from itself: {}",
            clean.issues.join("; ")
        ));
    }
    if clean.compared == 0 {
        return Err("self-diff compared zero metrics".into());
    }
    // inject a regression comfortably past the tolerance band
    let factor = 2.0 * tol + 0.2;
    let hurt = perturb(base, 1.0 - factor, 1.0 + factor);
    let flagged = diff_documents(base, &hurt, tol)?;
    if flagged.issues.is_empty() {
        return Err(format!(
            "injected {:.0}% IPC regression was not flagged at tolerance {tol}",
            factor * 100.0
        ));
    }
    // inject an event-count mismatch; the conservation gate must refuse
    // to compare the document at all
    let forged = break_conservation(base);
    match diff_documents(base, &forged, tol) {
        Err(e) if e.contains("conservation") => Ok(()),
        Err(e) => Err(format!(
            "forged miss-class mismatch rejected for the wrong reason: {e}"
        )),
        Ok(_) => Err("forged miss-class mismatch was not rejected".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn smoke_artifacts() -> (Vec<StatRun>, ClusterSection) {
        (run_all(true), run_cluster(true))
    }

    #[test]
    fn smoke_is_deterministic_and_conserved() {
        let (r1, c1) = smoke_artifacts();
        let (r2, c2) = smoke_artifacts();
        assert_eq!(
            render_json(&r1, &c1, true),
            render_json(&r2, &c2, true),
            "byte-identical JSON"
        );
        assert_eq!(render_markdown(&r1, &c1, true), render_markdown(&r2, &c2, true));
        for r in &r1 {
            r.series
                .conserves(&r.report.perf, &r.report.mem, 0)
                .unwrap_or_else(|e| panic!("{}@{}: {e}", r.workload, r.machine));
        }
    }

    #[test]
    fn smoke_json_parses_and_diffs_clean_against_itself() {
        let (runs, cluster) = smoke_artifacts();
        let doc = parse(&render_json(&runs, &cluster, true)).expect("own JSON parses");
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("xt-stat/v2"));
        assert!(doc.get("cluster").and_then(|c| c.get("engine")) == Some(&Value::Null));
        let out = diff_documents(&doc, &doc, 0.0).expect("comparable");
        assert!(out.issues.is_empty());
        assert!(out.compared > 0);
        selftest(&doc, 0.0).expect("gate self-test");
        selftest(&doc, 0.05).expect("gate self-test with a tolerance band");
    }

    #[test]
    fn diff_flags_an_injected_ipc_regression() {
        let (runs, cluster) = smoke_artifacts();
        let doc = parse(&render_json(&runs, &cluster, true)).unwrap();
        let hurt = perturb(&doc, 0.8, 1.0);
        let out = diff_documents(&doc, &hurt, 0.05).expect("comparable");
        assert!(
            out.issues.iter().any(|i| i.contains("ipc") && i.contains("regression")),
            "20% IPC drop flagged at 5% tolerance: {:?}",
            out.issues
        );
        // within tolerance: clean
        let nudge = perturb(&doc, 0.999, 1.0);
        let out = diff_documents(&doc, &nudge, 0.05).expect("comparable");
        assert!(out.issues.is_empty(), "0.1% wiggle passes 5%: {:?}", out.issues);
    }

    #[test]
    fn forged_event_counts_fail_the_conservation_gate() {
        let (runs, cluster) = smoke_artifacts();
        let doc = parse(&render_json(&runs, &cluster, true)).unwrap();
        validate_memory(&doc).expect("generated artifact conserves");
        let forged = break_conservation(&doc);
        let err = validate_memory(&forged).expect_err("forged counts rejected");
        assert!(err.contains("conservation"), "got: {err}");
        let err = diff_documents(&doc, &forged, 0.5).expect_err("diff refuses forged candidate");
        assert!(err.starts_with("candidate:"), "got: {err}");
    }

    #[test]
    fn phased_workload_shows_distinct_regimes() {
        let (runs, _) = smoke_artifacts();
        let phased = runs
            .iter()
            .find(|r| r.workload == "phased")
            .expect("phased run exists");
        let ipc: Vec<f64> = phased.series.samples.iter().map(|s| s.perf.ipc()).collect();
        assert!(ipc.len() >= 3, "phased run spans several intervals");
        let max = ipc.iter().cloned().fold(0.0f64, f64::max);
        let min = ipc.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 2.0 * min.max(0.01),
            "phases should differ in IPC: min {min:.3} max {max:.3}"
        );
    }

    #[test]
    fn prefetch_story_visible_in_totals() {
        let (runs, _) = smoke_artifacts();
        let cyc = |w: &str| {
            runs.iter()
                .find(|r| r.workload == w && r.machine == "XT-910")
                .map(|r| r.report.perf.cycles)
                .expect("cell exists")
        };
        assert!(cyc("stream_pf_on") < cyc("stream_pf_off"));
        let tm = |w: &str| {
            runs.iter()
                .find(|r| r.workload == w && r.machine == "XT-910")
                .map(|r| r.series.total_mem())
                .expect("cell exists")
        };
        let on = tm("stream_pf_on");
        assert!(on.pf_issued > 0, "prefetcher ran");
        assert!(on.pf_useful > 0, "some prefetched lines were demanded");
        assert!(on.pf_streams > 0, "STREAM confirms prefetch streams");
        assert_eq!(tm("stream_pf_off").pf_issued, 0, "ablation actually off");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(spark(&[]), "");
        assert_eq!(spark(&[0.0, 0.0]), "▁▁");
        let line = spark(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        let long: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert!(spark(&long).chars().count() <= 64);
    }
}
