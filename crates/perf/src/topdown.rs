//! TMA-style top-down cycle accounting.
//!
//! Maps the eight frontier-attributed [`StallCause`] counters onto the
//! classic four-level top-down tree (Yasin, ISPASS'14), adapted to what
//! a trace-driven model can attribute:
//!
//! | bucket           | stall causes                       | meaning |
//! |------------------|------------------------------------|---------|
//! | `frontend`       | `ICacheMiss`                       | fetch could not supply µops |
//! | `bad_speculation`| `MispredictFlush`, `OrderFlush`    | work thrown away + refill bubbles |
//! | `backend_core`   | `RobFull`, `IqFull`                | core windows full |
//! | `backend_memory` | `DCacheMiss`, `LsuQueueFull`       | data-side memory stalls |
//! | `vector`         | `VecBusy`                          | ready vector µops behind busy vector pipes |
//! | `retiring`       | residue: `cycles − all the above`  | useful work + shadowed stalls |
//!
//! `retiring` is **signed**: frontier-based attribution charges a
//! multi-interval wait in one call at charge time, so a single
//! interval's stall deltas can exceed its nominal cycle width (the
//! residue goes negative there and is repaid by neighbouring
//! intervals). The signed identity `sum(buckets) == cycles` holds
//! exactly for every interval, and the whole-run residue is
//! non-negative because the underlying counters conserve
//! ([`xt_core::PerfCounters::stalls_conserved`]).

use crate::sampler::PerfDelta;
use xt_core::StallCause;

/// One top-down decomposition: six buckets that sum (signed) to the
/// cycle count they decompose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopDown {
    /// Fetch-starved cycles (I-cache misses).
    pub frontend: u64,
    /// Mis-speculation recovery (branch mispredicts, order/exception
    /// flushes).
    pub bad_speculation: u64,
    /// Core-window back-pressure (ROB or issue queue full).
    pub backend_core: u64,
    /// Data-memory stalls (D-cache misses, LSU queues full).
    pub backend_memory: u64,
    /// Vector-unit back-pressure: ready vector µops waiting for a
    /// vector pipe or for an older op's lane-slice occupancy to drain.
    pub vector: u64,
    /// Residue: cycles not attributed to any stall — useful work plus
    /// stalls shadowed by an earlier-charged cause. Signed; see the
    /// [module docs](self).
    pub retiring: i64,
}

impl TopDown {
    /// Decomposes a cycle count given the per-cause stall array.
    pub fn from_stalls(cycles: u64, stalls: &[u64; xt_core::perf::NUM_STALL_CAUSES]) -> Self {
        let s = |c: StallCause| stalls[c as usize];
        let frontend = s(StallCause::ICacheMiss);
        let bad_speculation = s(StallCause::MispredictFlush) + s(StallCause::OrderFlush);
        let backend_core = s(StallCause::RobFull) + s(StallCause::IqFull);
        let backend_memory = s(StallCause::DCacheMiss) + s(StallCause::LsuQueueFull);
        let vector = s(StallCause::VecBusy);
        let attributed = frontend + bad_speculation + backend_core + backend_memory + vector;
        TopDown {
            frontend,
            bad_speculation,
            backend_core,
            backend_memory,
            vector,
            retiring: cycles as i64 - attributed as i64,
        }
    }

    /// Decomposes one interval delta.
    pub fn from_delta(d: &PerfDelta) -> Self {
        Self::from_stalls(d.cycles, &d.stalls)
    }

    /// The defining identity: the signed bucket sum equals the cycle
    /// count being decomposed.
    pub fn sums_to(&self, cycles: u64) -> bool {
        self.frontend as i64
            + self.bad_speculation as i64
            + self.backend_core as i64
            + self.backend_memory as i64
            + self.vector as i64
            + self.retiring
            == cycles as i64
    }

    /// Bucket shares of `cycles`, in the order frontend,
    /// bad-speculation, backend-core, backend-memory, vector, retiring.
    /// Retiring's share is clamped at 0 for display.
    pub fn shares(&self, cycles: u64) -> [f64; 6] {
        let c = cycles.max(1) as f64;
        [
            self.frontend as f64 / c,
            self.bad_speculation as f64 / c,
            self.backend_core as f64 / c,
            self.backend_memory as f64 / c,
            self.vector as f64 / c,
            (self.retiring.max(0)) as f64 / c,
        ]
    }

    /// Stable bucket names, matching the JSON keys.
    pub const NAMES: [&'static str; 6] = [
        "frontend",
        "bad_speculation",
        "backend_core",
        "backend_memory",
        "vector",
        "retiring",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_core::perf::NUM_STALL_CAUSES;

    #[test]
    fn buckets_partition_cycles() {
        let mut stalls = [0u64; NUM_STALL_CAUSES];
        stalls[StallCause::ICacheMiss as usize] = 10;
        stalls[StallCause::MispredictFlush as usize] = 5;
        stalls[StallCause::OrderFlush as usize] = 2;
        stalls[StallCause::RobFull as usize] = 7;
        stalls[StallCause::IqFull as usize] = 3;
        stalls[StallCause::DCacheMiss as usize] = 20;
        stalls[StallCause::LsuQueueFull as usize] = 1;
        stalls[StallCause::VecBusy as usize] = 4;
        let td = TopDown::from_stalls(100, &stalls);
        assert_eq!(td.frontend, 10);
        assert_eq!(td.bad_speculation, 7);
        assert_eq!(td.backend_core, 10);
        assert_eq!(td.backend_memory, 21);
        assert_eq!(td.vector, 4);
        assert_eq!(td.retiring, 48);
        assert!(td.sums_to(100));
    }

    #[test]
    fn overdrawn_interval_goes_negative_and_still_sums() {
        let mut stalls = [0u64; NUM_STALL_CAUSES];
        stalls[StallCause::DCacheMiss as usize] = 150;
        let td = TopDown::from_stalls(100, &stalls);
        assert_eq!(td.retiring, -50);
        assert!(td.sums_to(100));
        let sh = td.shares(100);
        assert_eq!(sh[5], 0.0, "display share clamps at zero");
        assert!((sh[3] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_decompose_to_zero() {
        let td = TopDown::from_stalls(0, &[0; NUM_STALL_CAUSES]);
        assert_eq!(td, TopDown::default());
        assert!(td.sums_to(0));
    }
}
