//! # xt-perf — telemetry for the XT-910 simulator
//!
//! The paper's evaluation is counter-driven (CoreMark/SPECInt IPC, the
//! STREAM prefetch ablation, TLB/cache sensitivity); this crate makes
//! those counters *observable over time* and *regression-protected*:
//!
//! * [`sampler`] — interval sampling of [`xt_core::PerfCounters`] +
//!   [`xt_mem::MemStats`] into a deterministic time-series of deltas,
//!   with an exact conservation law (interval deltas sum to the final
//!   counters),
//! * [`topdown`] — TMA-style top-down cycle accounting (frontend /
//!   bad-speculation / backend-core / backend-memory / retiring)
//!   derived from the frontier-based stall attribution,
//! * [`stat`] — the `xt-stat` binary: a Markdown dashboard with
//!   sparkline time-series, the `BENCH_perf.json` artifact (schema
//!   `xt-stat/v1`), and the `diff` / `selftest` subcommands CI uses as
//!   a benchmark regression gate,
//! * [`json`] — the hermetic JSON reader backing `diff`.
//!
//! See `docs/OBSERVABILITY.md` for the design notes and the schema.

#![warn(missing_docs)]

pub mod json;
pub mod sampler;
pub mod stat;
pub mod topdown;

pub use sampler::{IntervalSample, MemDelta, PerfDelta, Sampler, TimeSeries};
pub use topdown::TopDown;

use xt_asm::Program;
use xt_core::{CoreConfig, InOrderCore, OooCore, RunReport};
use xt_emu::{Emulator, TraceSource};
use xt_mem::{MemConfig, MemSystem};

/// Runs `prog` on the out-of-order model with a [`Sampler`] attached,
/// returning the final report plus the interval time-series. Sampling
/// is read-only: the report is identical to [`xt_core::run_ooo_with_mem`]'s.
pub fn run_ooo_sampled(
    prog: &Program,
    cfg: &CoreConfig,
    mem_cfg: MemConfig,
    max_insts: u64,
    interval: u64,
) -> (RunReport, TimeSeries) {
    let mut emu = Emulator::new();
    emu.load(prog);
    let mut trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(mem_cfg);
    let mut core = OooCore::new(cfg.clone(), 0);
    let mut sampler = Sampler::new(0, interval);
    for d in trace.by_ref() {
        core.step(&d, &mut mem);
        if sampler.due(core.cycles()) {
            sampler.observe(core.cycles(), core.perf(), &mem.stats());
        }
    }
    let report = core.finish_report(&mem, trace.exit_code);
    let series = sampler.finish(report.perf.cycles, &report.perf, &report.mem);
    (report, series)
}

/// Runs `prog` on the in-order baseline with a [`Sampler`] attached
/// (see [`run_ooo_sampled`]).
pub fn run_inorder_sampled(
    prog: &Program,
    cfg: &CoreConfig,
    mem_cfg: MemConfig,
    max_insts: u64,
    interval: u64,
) -> (RunReport, TimeSeries) {
    let mut emu = Emulator::new();
    emu.load(prog);
    let mut trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(mem_cfg);
    let mut core = InOrderCore::new(cfg.clone(), 0);
    let mut sampler = Sampler::new(0, interval);
    for d in trace.by_ref() {
        core.step(&d, &mut mem);
        if sampler.due(core.cycles()) {
            sampler.observe(core.cycles(), core.perf(), &mem.stats());
        }
    }
    let report = core.finish_report(&mem, trace.exit_code);
    let series = sampler.finish(report.perf.cycles, &report.perf, &report.mem);
    (report, series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_asm::Asm;
    use xt_isa::reg::Gpr;

    fn loop_prog(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(Gpr::S0, iters);
        let top = a.here();
        a.addi(Gpr::A1, Gpr::A1, 1);
        a.addi(Gpr::S0, Gpr::S0, -1);
        a.bnez(Gpr::S0, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn sampled_run_conserves_and_matches_plain_run() {
        let prog = loop_prog(500);
        let cfg = CoreConfig::xt910();
        let (report, series) =
            run_ooo_sampled(&prog, &cfg, cfg.mem, 1_000_000, 64);
        series
            .conserves(&report.perf, &report.mem, 0)
            .expect("conservation");
        let plain = xt_core::run_ooo(&prog, &cfg, 1_000_000);
        assert_eq!(report.perf, plain.perf, "sampling is read-only");
        assert_eq!(report.mem, plain.mem);
        assert!(series.samples.len() > 1, "run spans several intervals");
    }

    #[test]
    fn inorder_sampled_run_conserves() {
        let prog = loop_prog(300);
        let cfg = CoreConfig::u74_like();
        let (report, series) =
            run_inorder_sampled(&prog, &cfg, cfg.mem, 1_000_000, 32);
        series
            .conserves(&report.perf, &report.mem, 0)
            .expect("conservation");
        let plain = xt_core::run_inorder(&prog, &cfg, 1_000_000);
        assert_eq!(report.perf, plain.perf);
    }
}
