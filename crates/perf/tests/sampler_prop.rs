//! Property tests for the interval sampler: over random programs ×
//! random interval lengths, the time-series must conserve (interval
//! deltas sum exactly to the final counters, every interval's top-down
//! buckets sum to its cycles) on both timing models, and attaching the
//! sampler must not change timing at all.

use xt_check::progen::{ProgGen, ProgSpec};
use xt_core::CoreConfig;
use xt_harness::{check_with, Config, Gen, Rng};
use xt_perf::{run_inorder_sampled, run_ooo_sampled};

const MAX_INSTS: u64 = 200_000;

/// A random program spec paired with a random sampling interval.
#[derive(Clone, Debug)]
struct Case {
    spec: ProgSpec,
    interval: u64,
}

struct CaseGen {
    progs: ProgGen,
}

impl Gen for CaseGen {
    type Value = Case;

    fn generate(&self, rng: &mut Rng) -> Case {
        Case {
            spec: self.progs.generate(rng),
            // heavily skewed small so boundaries are crossed often;
            // occasionally longer than the whole run (single tail)
            interval: match rng.below(4) {
                0 => rng.gen_range_u64(1, 16),
                1 => rng.gen_range_u64(16, 256),
                2 => rng.gen_range_u64(256, 2048),
                _ => rng.gen_range_u64(2048, 1 << 20),
            },
        }
    }

    fn shrink(&self, value: &Case) -> Vec<Self::Value> {
        let mut out: Vec<Case> = self
            .progs
            .shrink(&value.spec)
            .into_iter()
            .map(|spec| Case {
                spec,
                interval: value.interval,
            })
            .collect();
        if value.interval > 1 {
            out.push(Case {
                spec: value.spec.clone(),
                interval: value.interval / 2,
            });
        }
        out
    }
}

#[test]
fn sampling_conserves_and_is_read_only_on_both_cores() {
    let gen = CaseGen {
        progs: ProgGen::default(),
    };
    check_with(
        &Config::seeded_cases(0x5a71e5, 120),
        "sampling_conserves_and_is_read_only_on_both_cores",
        &gen,
        |case| {
            let (prog, _expect) = case.spec.emit();
            let xt910 = CoreConfig::xt910();
            let u74 = CoreConfig::u74_like();

            let (report, series) =
                run_ooo_sampled(&prog, &xt910, xt910.mem, MAX_INSTS, case.interval);
            series
                .conserves(&report.perf, &report.mem, 0)
                .unwrap_or_else(|e| panic!("ooo interval {}: {e}", case.interval));
            let plain = xt_core::run_ooo(&prog, &xt910, MAX_INSTS);
            assert_eq!(report.perf, plain.perf, "ooo: sampling changed timing");
            assert_eq!(report.mem, plain.mem, "ooo: sampling changed memory stats");

            let (report, series) =
                run_inorder_sampled(&prog, &u74, u74.mem, MAX_INSTS, case.interval);
            series
                .conserves(&report.perf, &report.mem, 0)
                .unwrap_or_else(|e| panic!("inorder interval {}: {e}", case.interval));
            let plain = xt_core::run_inorder(&prog, &u74, MAX_INSTS);
            assert_eq!(report.perf, plain.perf, "inorder: sampling changed timing");
            assert_eq!(report.mem, plain.mem, "inorder: sampling changed memory stats");
        },
    );
}

#[test]
fn interval_one_is_the_stress_case() {
    // interval == 1 forces an emit opportunity at every cycle boundary;
    // the series must still telescope exactly.
    let gen = CaseGen {
        progs: ProgGen { max_ops: 8 },
    };
    check_with(
        &Config::seeded_cases(0x1111, 20),
        "interval_one_is_the_stress_case",
        &gen,
        |case| {
            let (prog, _expect) = case.spec.emit();
            let cfg = CoreConfig::xt910();
            let (report, series) = run_ooo_sampled(&prog, &cfg, cfg.mem, MAX_INSTS, 1);
            series
                .conserves(&report.perf, &report.mem, 0)
                .expect("interval-1 conservation");
        },
    );
}
