//! The standing conformance suite: random programs must agree with the
//! host oracle on the emulator and satisfy the timing-model invariants;
//! an injected oracle fault must be caught and shrunk.
//!
//! Fixed suite seed: `xt_check::SUITE_SEED`. Replay a failure with
//! `XT_HARNESS_SEED=<seed> cargo test -p xt-check`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use xt_check::oracle::Fault;
use xt_check::progen::ProgGen;
use xt_check::{check_program, SUITE_SEED};
use xt_harness::prop::{check_with, Config};

fn cfg() -> Config {
    Config::seeded_cases(SUITE_SEED, 64)
}

#[test]
fn random_programs_conform_and_satisfy_invariants() {
    check_with(&cfg(), "random_programs_conform", &ProgGen::default(), |spec| {
        if let Err(e) = check_program(spec, Fault::None) {
            panic!("{e}");
        }
    });
}

#[test]
fn injected_divu_fault_is_caught_and_shrunk() {
    // Break the oracle's divide-by-zero semantics: the conformance
    // property must fail, and the harness must hand back a *shrunk*,
    // seed-replayable counterexample.
    let err = catch_unwind(AssertUnwindSafe(|| {
        check_with(&cfg(), "faulty_divu_oracle", &ProgGen::default(), |spec| {
            if let Err(e) = check_program(spec, Fault::DivuZeroGivesZero) {
                panic!("{e}");
            }
        });
    }))
    .expect_err("a broken oracle must be detected within the suite budget");
    let msg = panic_payload_text(&err);
    assert!(
        msg.contains("minimal input"),
        "failure is shrunk to a minimal program: {msg}"
    );
    assert!(
        msg.contains("XT_HARNESS_SEED"),
        "failure prints the replay seed: {msg}"
    );
    assert!(
        msg.contains("divergence"),
        "artifact names the emulator/oracle divergence: {msg}"
    );
}

#[test]
fn injected_shift_fault_is_caught() {
    // Second fault class: unmasked shift amounts (the classic host-Rust
    // semantics mistake the differential suite also guards against).
    let err = catch_unwind(AssertUnwindSafe(|| {
        check_with(&cfg(), "faulty_shift_oracle", &ProgGen::default(), |spec| {
            if let Err(e) = check_program(spec, Fault::UnmaskedShift) {
                panic!("{e}");
            }
        });
    }))
    .expect_err("unmasked-shift oracle must be detected");
    let msg = panic_payload_text(&err);
    assert!(msg.contains("minimal input"), "shrunk: {msg}");
}

fn panic_payload_text(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
