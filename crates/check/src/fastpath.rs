//! Fast-path differential phase: decoded-block engine vs. per-step
//! decode on constrained random programs with code-patching stores.
//!
//! The host oracle in [`crate::oracle`] cannot evaluate self-modifying
//! code, so this phase uses the seed interpreter itself as the
//! reference: each generated [`FastSpec`] — a random [`ProgSpec`]
//! workload followed by a loop that stores a freshly encoded
//! instruction word over its own body — runs once with the block cache
//! on and once with it off, and the complete architectural outcome
//! (registers, PC, instret, CSRs, console, exit code, nonzero memory)
//! must match bit for bit. Failures shrink through `xt-harness`
//! (shorter workloads, fewer patch iterations, no `fence.i`) and
//! replay from the printed `XT_HARNESS_SEED`.

use crate::disasm_program;
use crate::progen::{ProgGen, ProgSpec, NSLOTS};
use xt_asm::{Asm, Program};
use xt_emu::Emulator;
use xt_harness::{Gen, Rng};
use xt_isa::reg::Gpr;
use xt_isa::{Inst, Op};

/// Dynamic instruction budget per program.
const MAX_INSTS: u64 = 1_000_000;

/// A fast-path differential case: a generated workload plus a
/// self-modifying epilogue loop.
///
/// The epilogue runs `iters` times; each iteration executes a patchable
/// `li t3, orig_imm` site, accumulates it, and stores the encoding of
/// `addi t3, x0, patch_imm` over that very site — so iteration 1 sees
/// `orig_imm` and every later iteration must see `patch_imm`, even
/// though the block executing the store is the block being invalidated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FastSpec {
    /// The base workload (exercises block building over random control
    /// flow before any patching happens).
    pub spec: ProgSpec,
    /// Self-modifying epilogue iterations (≥ 1).
    pub iters: u8,
    /// Immediate at the patch site as assembled.
    pub orig_imm: i16,
    /// Immediate stored over the site at run time.
    pub patch_imm: i16,
    /// Follow each patching store with `fence.i`.
    pub fence_i: bool,
}

impl FastSpec {
    /// Assembles the case. Registers: the workload owns the
    /// [`crate::progen::REG_MAP`] pool plus `s0`/`s1`; the epilogue uses
    /// only `t1`-`t5`, so the two compose without interference.
    pub fn emit(&self) -> Program {
        let mut a = Asm::new();
        let scratch = a.data_zeros("scratch", NSLOTS * 8);
        a.la(Gpr::S0, scratch);
        self.spec.emit_ops(&mut a);

        // self-modifying epilogue
        a.li(Gpr::T4, self.iters as i64);
        let top = a.here();
        let site = a.pc();
        a.li(Gpr::T3, self.orig_imm as i64); // 4-byte addi; patched below
        a.add(Gpr::T5, Gpr::T5, Gpr::T3);
        a.li(Gpr::T1, site as i64);
        let word = xt_isa::encode::encode(
            &Inst::new(Op::Addi).rd(Gpr::T3.index()).rs1(0).imm(self.patch_imm as i64),
        )
        .expect("patch word encodes");
        a.li(Gpr::T2, word as i64);
        a.sw(Gpr::T2, Gpr::T1, 0);
        if self.fence_i {
            a.fence_i();
        }
        a.addi(Gpr::T4, Gpr::T4, -1);
        a.bnez(Gpr::T4, top);
        a.mv(Gpr::A0, Gpr::T5);
        a.halt();
        a.finish().expect("generated fast-path spec assembles")
    }
}

/// Generator for [`FastSpec`]s.
#[derive(Clone, Debug, Default)]
pub struct FastGen {
    prog: ProgGen,
}

impl Gen for FastGen {
    type Value = FastSpec;

    fn generate(&self, rng: &mut Rng) -> FastSpec {
        FastSpec {
            spec: self.prog.generate(rng),
            iters: rng.gen_range_u64(1, 7) as u8,
            orig_imm: rng.gen_range(0, 2048) as i16,
            patch_imm: rng.gen_range(0, 2048) as i16,
            fence_i: rng.gen_bool(0.5),
        }
    }

    fn shrink(&self, value: &FastSpec) -> Vec<FastSpec> {
        let mut out = Vec::new();
        // member-wise workload shrinking: the biggest simplification
        for cand in self.prog.shrink(&value.spec) {
            out.push(FastSpec {
                spec: cand,
                ..value.clone()
            });
        }
        if value.iters > 1 {
            out.push(FastSpec {
                iters: 1,
                ..value.clone()
            });
        }
        if value.fence_i {
            out.push(FastSpec {
                fence_i: false,
                ..value.clone()
            });
        }
        for (orig, patch) in [(0, value.patch_imm), (value.orig_imm, 0)] {
            if (orig, patch) != (value.orig_imm, value.patch_imm) {
                out.push(FastSpec {
                    orig_imm: orig,
                    patch_imm: patch,
                    ..value.clone()
                });
            }
        }
        out
    }
}

fn run_one(prog: &Program, fastpath: bool) -> Result<Emulator, String> {
    let mut emu = Emulator::new();
    emu.set_fastpath(fastpath);
    emu.load(prog);
    emu.run(MAX_INSTS)
        .map_err(|e| format!("emulator error (fastpath={fastpath}): {e:?}"))?;
    Ok(emu)
}

/// Runs `spec` with the block cache on and off and compares the final
/// architectural state field by field. On divergence returns a replay
/// artifact with the differing fields and the disassembly.
pub fn check_fastpath(spec: &FastSpec) -> Result<(), String> {
    let prog = spec.emit();
    let fast = run_one(&prog, true)?;
    let slow = run_one(&prog, false)?;

    let mut diffs = Vec::new();
    if fast.halted != slow.halted {
        diffs.push(format!(
            "  exit code: fast {:?} != slow {:?}",
            fast.halted, slow.halted
        ));
    }
    if fast.cpu.pc != slow.cpu.pc {
        diffs.push(format!("  pc: fast {:#x} != slow {:#x}", fast.cpu.pc, slow.cpu.pc));
    }
    if fast.cpu.instret != slow.cpu.instret {
        diffs.push(format!(
            "  instret: fast {} != slow {}",
            fast.cpu.instret, slow.cpu.instret
        ));
    }
    for i in 0..32 {
        if fast.cpu.x[i] != slow.cpu.x[i] {
            diffs.push(format!(
                "  x{i}: fast {:#x} != slow {:#x}",
                fast.cpu.x[i], slow.cpu.x[i]
            ));
        }
    }
    if fast.cpu.csrs != slow.cpu.csrs {
        diffs.push("  CSR files differ".to_string());
    }
    if fast.console != slow.console {
        diffs.push("  console output differs".to_string());
    }
    if fast.mem.snapshot_nonzero() != slow.mem.snapshot_nonzero() {
        diffs.push("  guest memory differs".to_string());
    }
    if diffs.is_empty() {
        return Ok(());
    }
    Err(format!(
        "fast path diverges from per-step decode on {spec:?}:\n{}\nprogram:\n{}",
        diffs.join("\n"),
        disasm_program(&prog)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_harness::prop::{check_with, Config};

    /// Standing differential smoke: the same phase CI runs, at reduced
    /// case count.
    #[test]
    fn fastpath_differential_holds() {
        let cfg = Config::seeded_cases(crate::SUITE_SEED ^ 0xFA57, 24);
        check_with(&cfg, "fastpath_differential", &FastGen::default(), |spec| {
            if let Err(e) = check_fastpath(spec) {
                panic!("{e}");
            }
        });
    }

    /// The epilogue really self-modifies: iteration 1 sees `orig_imm`,
    /// later iterations the patched immediate.
    #[test]
    fn epilogue_patch_is_architectural() {
        let spec = FastSpec {
            spec: ProgSpec { ops: Vec::new() },
            iters: 5,
            orig_imm: 3,
            patch_imm: 200,
            fence_i: true,
        };
        let prog = spec.emit();
        let emu = run_one(&prog, true).unwrap();
        assert_eq!(emu.halted, Some(3 + 4 * 200));
        let emu = run_one(&prog, false).unwrap();
        assert_eq!(emu.halted, Some(3 + 4 * 200));
    }
}
