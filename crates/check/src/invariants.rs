//! Structural invariants of the timing models.
//!
//! Every generated program's committed trace is replayed through both
//! the out-of-order and the in-order core, checking properties that
//! must hold for *any* program if the bookkeeping is sound:
//!
//! 1. retirement follows program order (the OoO retire cycle is
//!    monotone across the committed trace),
//! 2. stall-cycle conservation — the per-cause attributed stall cycles
//!    (ROB/IQ/LSU-queue/cache-miss/flush) can never sum past total
//!    cycles,
//! 3. `IPC ≤ issue width` (and the tighter retire-width bound),
//! 4. on dependency-free straight-line code the in-order baseline is
//!    never faster than the out-of-order core,
//! 5. telemetry conservation — an [`xt_perf::Sampler`] riding along the
//!    OoO replay must produce interval deltas that sum exactly to the
//!    final counters, with every interval's top-down buckets summing
//!    (signed) to its cycle delta,
//! 6. memory-observability conservation — the OoO replay runs with the
//!    [`xt_mem::MemTracer`] attached; afterwards the replayed event
//!    counts must reconcile exactly with every [`xt_mem::MemStats`]
//!    counter, the four attributed miss classes must sum to the L1D
//!    miss total per core, each stream's late prefetches must not
//!    exceed its useful ones, and the snoop books must balance
//!    (the matrix sums to `snoops_sent`, sent + suppressed =
//!    candidates).

use crate::progen::ProgSpec;
use xt_core::{CoreConfig, InOrderCore, OooCore};
use xt_emu::{Emulator, TraceSource};
use xt_mem::{MemStats, MemSystem};
use xt_perf::Sampler;

/// Dynamic instruction budget per checked program (specs are tiny).
const MAX_INSTS: u64 = 1_000_000;

/// Sampling interval for the telemetry-conservation check: short, so
/// even tiny generated programs cross several boundaries.
const SAMPLE_INTERVAL: u64 = 64;

/// Per-stage timing summary for the replay artifact.
#[derive(Clone, Debug)]
pub struct TimingSummary {
    /// Out-of-order cycles.
    pub ooo_cycles: u64,
    /// In-order cycles.
    pub inorder_cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Attributed ROB-full stall cycles (OoO).
    pub rob_stall_cycles: u64,
    /// Attributed IQ-full stall cycles (OoO).
    pub iq_stall_cycles: u64,
}

impl TimingSummary {
    /// Human-readable block for failure artifacts.
    pub fn render(&self) -> String {
        format!(
            "  insts: {}\n  ooo: {} cycles (IPC {:.3}, rob-stall {}, iq-stall {})\n  inorder: {} cycles (IPC {:.3})",
            self.instructions,
            self.ooo_cycles,
            self.instructions as f64 / self.ooo_cycles.max(1) as f64,
            self.rob_stall_cycles,
            self.iq_stall_cycles,
            self.inorder_cycles,
            self.instructions as f64 / self.inorder_cycles.max(1) as f64,
        )
    }
}

/// Checks the memory-observability conservation laws on a final
/// [`MemStats`]: per-core miss-class conservation, per-slot scorecard
/// sanity (`late <= useful`), and the snoop books
/// (`snoop_matrix` sums to `snoops_sent`,
/// `snoops_sent + snoops_suppressed == probe_candidates`). Shared by
/// the single-core invariant replay and the cluster stage.
pub fn check_memory_observability(mem: &MemStats) -> Result<(), String> {
    for (c, &(_, misses)) in mem.l1d.iter().enumerate() {
        let classes = mem.miss_class_sum(c);
        if classes != misses {
            return Err(format!(
                "miss-class conservation violated on core {c}: \
                 compulsory {} + capacity {} + conflict {} + coherence {} = {classes}, \
                 but L1D misses = {misses}",
                mem.miss_compulsory[c],
                mem.miss_capacity[c],
                mem.miss_conflict[c],
                mem.miss_coherence[c],
            ));
        }
    }
    for (c, per_slot) in mem.pf_scorecard.iter().enumerate() {
        for (s, score) in per_slot.iter().enumerate() {
            if score.late > score.useful {
                return Err(format!(
                    "prefetch scorecard core {c} slot {s}: late {} > useful {}",
                    score.late, score.useful
                ));
            }
        }
    }
    let matrix_sum: u64 = mem.snoop_matrix.iter().sum();
    if matrix_sum != mem.snoops_sent {
        return Err(format!(
            "snoop matrix sums to {matrix_sum}, but snoops_sent = {}",
            mem.snoops_sent
        ));
    }
    if mem.snoops_sent + mem.snoops_suppressed != mem.probe_candidates {
        return Err(format!(
            "snoop books unbalanced: sent {} + suppressed {} != candidates {}",
            mem.snoops_sent, mem.snoops_suppressed, mem.probe_candidates
        ));
    }
    Ok(())
}

/// Replays `spec` through both timing models and checks the structural
/// invariants. Returns the timing summary on success and a description
/// of the first violation on failure.
pub fn check_invariants(spec: &ProgSpec) -> Result<TimingSummary, String> {
    let cfg = CoreConfig::xt910();
    let (prog, _) = spec.emit();

    // ---- OoO model, stepped incrementally for the ordering check ----
    let mut emu = Emulator::new();
    emu.load(&prog);
    let mut trace = TraceSource::new(emu, MAX_INSTS);
    let mut mem = MemSystem::new(cfg.mem);
    mem.start_tracing();
    let mut core = OooCore::new(cfg.clone(), 0);
    let mut sampler = Sampler::new(0, SAMPLE_INTERVAL);
    let mut last_retire = 0u64;
    let mut insts = 0u64;
    for d in trace.by_ref() {
        core.step(&d, &mut mem);
        if sampler.due(core.cycles()) {
            sampler.observe(core.cycles(), core.perf(), &mem.stats());
        }
        let r = core.last_retire_cycle();
        if r < last_retire {
            return Err(format!(
                "retirement violates program order: inst {insts} (pc {:#x}) \
                 retired at cycle {r}, an older instruction at {last_retire}",
                d.pc
            ));
        }
        last_retire = r;
        insts += 1;
    }
    let report = core.finish_report(&mem, trace.exit_code);
    let cycles = report.perf.cycles;
    let perf = &report.perf;

    let series = sampler.finish(cycles, perf, &report.mem);
    if let Err(e) = series.conserves(perf, &report.mem, 0) {
        return Err(format!(
            "telemetry conservation violated (interval {SAMPLE_INTERVAL}): {e}"
        ));
    }

    check_memory_observability(&report.mem)?;
    let tracer = mem.stop_tracing().expect("tracing was started");
    tracer
        .reconcile(&report.mem)
        .map_err(|e| format!("memory event stream does not reconcile with counters: {e}"))?;

    if perf.attributed_stall_cycles() > cycles {
        return Err(format!(
            "stall conservation violated: attributed {} > {} cycles\n{}",
            perf.attributed_stall_cycles(),
            cycles,
            xt_core::perf::StallCause::ALL
                .iter()
                .map(|&c| format!("    {}: {}", c.name(), perf.stall(c)))
                .collect::<Vec<_>>()
                .join("\n"),
        ));
    }
    // `+ 1`: cycle counting is zero-based, a 1-cycle program reports 0..=1.
    if insts > (cycles + 1) * cfg.issue_width {
        return Err(format!(
            "IPC exceeds issue width: {insts} insts in {cycles} cycles (width {})",
            cfg.issue_width
        ));
    }
    if insts > (cycles + 1) * cfg.retire_width {
        return Err(format!(
            "IPC exceeds retire width: {insts} insts in {cycles} cycles (width {})",
            cfg.retire_width
        ));
    }

    // ---- in-order baseline ----
    let mut emu = Emulator::new();
    emu.load(&prog);
    let trace = TraceSource::new(emu, MAX_INSTS);
    let mut mem = MemSystem::new(cfg.mem);
    let mut inorder = InOrderCore::new(cfg.clone(), 0);
    let report = inorder.run_to_end(trace, &mut mem);
    let inorder_cycles = report.perf.cycles;
    // the classifier is always-on, so the conservation laws must hold
    // on the in-order core's hierarchy too
    check_memory_observability(&report.mem)
        .map_err(|e| format!("in-order baseline: {e}"))?;

    // On dependency-free straight-line code the OoO core can extract all
    // ILP, so it must not be slower. A small slack absorbs modeling
    // differences in startup/drain cycles between the two pipelines.
    if spec.is_dependency_free() && cycles > inorder_cycles + 4 {
        return Err(format!(
            "out-of-order slower than in-order on dependency-free code: \
             {cycles} vs {inorder_cycles} cycles"
        ));
    }

    Ok(TimingSummary {
        ooo_cycles: cycles,
        inorder_cycles,
        instructions: insts,
        rob_stall_cycles: perf.rob_stall_cycles(),
        iq_stall_cycles: perf.iq_stall_cycles(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progen::{AluOp, ProgSpec, SpecOp};

    #[test]
    fn invariants_hold_on_simple_programs() {
        let spec = ProgSpec {
            ops: vec![
                SpecOp::Li { rd: 0, imm: 100 },
                SpecOp::Loop {
                    count: 8,
                    body: vec![
                        SpecOp::Alu { op: AluOp::Add, rd: 1, rs1: 1, rs2: 0 },
                        SpecOp::Store { rs: 1, slot: 0 },
                        SpecOp::Load { rd: 2, slot: 0 },
                    ],
                },
            ],
        };
        let summary = check_invariants(&spec).expect("invariants hold");
        assert!(summary.instructions > 0);
        assert!(summary.ooo_cycles > 0);
        assert!(summary.render().contains("insts"));
    }

    #[test]
    fn dependency_free_code_favors_ooo() {
        let spec = ProgSpec {
            ops: (0..6)
                .map(|i| SpecOp::Alu {
                    op: AluOp::Xor,
                    rd: i,
                    rs1: (i + 1) % 8,
                    rs2: (i + 2) % 8,
                })
                .collect(),
        };
        assert!(spec.is_dependency_free());
        check_invariants(&spec).expect("dependency-free program passes");
    }
}
