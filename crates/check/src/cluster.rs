//! Cluster-engine invariants under constrained random multi-core
//! workloads.
//!
//! A [`ClusterSpec`] is a small set of generated single-core programs
//! (one per core, each placed in a disjoint text/data region) plus an
//! epoch length. [`check_cluster_invariants`] runs the spec through the
//! epoch-barriered engine and enforces structural laws that must hold
//! for *any* program mix:
//!
//! 1. **Determinism** — 1-thread and 2-thread runs produce identical
//!    perf counters, memory statistics, and exit codes. The 2-thread
//!    leg additionally runs with the memory tracer attached, so this
//!    law also proves tracing changes nothing
//!    (`tracing_does_not_change_timing`).
//! 2. **Makespan bound** — sharing a hierarchy can only slow a core
//!    down, so the cluster makespan (plus bounded slack for the handful
//!    of unavoidably shared lines: the root page-table line and the
//!    halt mailbox) is at least the slowest core's standalone runtime.
//! 3. **Memory-observability conservation** — miss classes sum to the
//!    L1D miss total per core, each scorecard slot keeps
//!    `late <= useful`, and the snoop books balance (the matrix sums
//!    to `snoops_sent`, `snoops_sent + snoops_suppressed ==
//!    probe_candidates`); see
//!    [`crate::invariants::check_memory_observability`].
//! 4. **Completion** — every generated program halts with an exit code.
//! 5. **Event reconciliation** — the traced leg's replayed event counts
//!    reconcile exactly with every memory counter
//!    ([`xt_mem::MemTracer::reconcile`]).
//!
//! Failures shrink through `xt-harness` (fewer cores, shorter
//! programs, smaller epochs) and replay from a printed seed.

use crate::progen::{ProgGen, ProgSpec};
use xt_asm::Program;
use xt_core::CoreConfig;
use xt_harness::{Gen, Rng};
use xt_mem::MemConfig;
use xt_soc::{ClusterReport, ClusterSim};

/// Dynamic instruction budget per cluster run.
const MAX_INSTS: u64 = 1_000_000;

/// Per-core placement stride: images 16 MiB apart keep every generated
/// working set (a few hundred bytes) in a private region.
const TEXT_BASE: u64 = 0x8000_0000;
const DATA_BASE: u64 = 0x8800_0000;
const CORE_STRIDE: u64 = 0x0100_0000;

/// A generated multi-core workload: one program per core plus the
/// engine's epoch length.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterSpec {
    /// One program spec per core (1, 2, or 4 — the configurations the
    /// memory system accepts).
    pub cores: Vec<ProgSpec>,
    /// Epoch length in simulated cycles.
    pub epoch: u64,
}

impl ClusterSpec {
    fn emit(&self) -> Vec<Program> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let (prog, _) = spec.emit_at(
                    TEXT_BASE + i as u64 * CORE_STRIDE,
                    DATA_BASE + i as u64 * CORE_STRIDE,
                );
                prog
            })
            .collect()
    }
}

/// Generator for [`ClusterSpec`]s.
#[derive(Clone, Debug, Default)]
pub struct ClusterGen {
    prog: ProgGen,
}

impl Gen for ClusterGen {
    type Value = ClusterSpec;

    fn generate(&self, rng: &mut Rng) -> ClusterSpec {
        let n = *rng.choose(&[2usize, 4]);
        let cores = (0..n).map(|_| self.prog.generate(rng)).collect();
        let epoch = rng.gen_range_u64(1, 8193);
        ClusterSpec { cores, epoch }
    }

    fn shrink(&self, value: &ClusterSpec) -> Vec<ClusterSpec> {
        let mut out = Vec::new();
        // fewer cores first (4 -> 2 -> 1): the biggest simplification
        if value.cores.len() > 1 {
            let half = value.cores.len() / 2;
            out.push(ClusterSpec {
                cores: value.cores[..half].to_vec(),
                epoch: value.epoch,
            });
            out.push(ClusterSpec {
                cores: value.cores[half..].to_vec(),
                epoch: value.epoch,
            });
        }
        // shorter epochs
        if value.epoch > 1 {
            for e in [1, value.epoch / 2] {
                out.push(ClusterSpec {
                    cores: value.cores.clone(),
                    epoch: e,
                });
            }
        }
        // member-wise program shrinking
        for i in 0..value.cores.len() {
            for cand in self.prog.shrink(&value.cores[i]) {
                let mut cores = value.cores.clone();
                cores[i] = cand;
                out.push(ClusterSpec {
                    cores,
                    epoch: value.epoch,
                });
            }
        }
        out
    }
}

fn mem_cfg(cores: usize) -> MemConfig {
    MemConfig {
        cores,
        ..MemConfig::default()
    }
}

fn run(progs: &[Program], epoch: u64, threads: usize, traced: bool) -> ClusterReport {
    let mut sim = ClusterSim::new(progs, &CoreConfig::xt910(), mem_cfg(progs.len()), MAX_INSTS)
        .with_epoch(epoch);
    if traced {
        sim = sim.with_mem_tracing();
    }
    sim.run_threads(threads)
}

/// Checks the cluster invariants for one generated spec. The `Err`
/// carries a human-readable description of the violated law.
pub fn check_cluster_invariants(spec: &ClusterSpec) -> Result<(), String> {
    let progs = spec.emit();
    let r1 = run(&progs, spec.epoch, 1, false);

    // 1. determinism across host thread counts; the traced leg must
    // produce the same counters, so this also proves observability is
    // strictly read-only
    let r2 = run(&progs, spec.epoch, 2, true);
    if r1.cores != r2.cores || r1.mem != r2.mem || r1.exit_codes != r2.exit_codes {
        return Err(format!(
            "thread-count nondeterminism (or tracing changed results): \
             untraced 1-thread and traced 2-thread runs diverge \
             (epoch {}, {} cores)",
            spec.epoch,
            progs.len()
        ));
    }

    // 5. the traced leg's event stream reconciles with the counters
    let tracer = r2.mem_events.as_ref().ok_or("traced run returned no event stream")?;
    tracer
        .reconcile(&r2.mem)
        .map_err(|e| format!("cluster event stream does not reconcile with counters: {e}"))?;

    // 4. every program halts
    for (i, code) in r1.exit_codes.iter().enumerate() {
        if code.is_none() {
            return Err(format!("core {i} did not halt"));
        }
    }

    // 2. makespan bound: contention only slows cores down. The root
    // page-table line and the halt mailbox are shared by construction,
    // so allow a few DRAM round trips of slack for cross-core
    // interference on exactly those lines.
    let slack = 4 * mem_cfg(progs.len()).dram_latency;
    let standalone_max = progs
        .iter()
        .map(|p| {
            let solo = ClusterSim::new(
                std::slice::from_ref(p),
                &CoreConfig::xt910(),
                mem_cfg(1),
                MAX_INSTS,
            )
            .run_threads(1);
            solo.makespan()
        })
        .max()
        .unwrap_or(0);
    if r1.makespan() + slack < standalone_max {
        return Err(format!(
            "makespan {} + slack {} below slowest standalone core {} — \
             the cluster simulated a core faster than it runs alone",
            r1.makespan(),
            slack,
            standalone_max
        ));
    }

    // 3. memory-observability conservation on the master hierarchy
    crate::invariants::check_memory_observability(&r1.mem)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_harness::{check_with, Config};

    #[test]
    fn generated_clusters_satisfy_invariants() {
        let cfg = Config::seeded_cases(crate::SUITE_SEED ^ 0xC105_7E12, 24);
        check_with(&cfg, "cluster_invariants", &ClusterGen::default(), |spec| {
            if let Err(e) = check_cluster_invariants(spec) {
                panic!("{e}");
            }
        });
    }

    #[test]
    fn shrinking_reduces_core_count_and_epoch() {
        let gen = ClusterGen::default();
        let mut rng = Rng::new(7);
        let spec = gen.generate(&mut rng);
        let shrunk = gen.shrink(&spec);
        assert!(!shrunk.is_empty());
        assert!(
            shrunk.iter().any(|s| s.cores.len() < spec.cores.len()),
            "offers fewer-core candidates"
        );
        if spec.epoch > 1 {
            assert!(shrunk.iter().any(|s| s.epoch < spec.epoch));
        }
    }
}
