//! Compact host-side oracle: evaluates a [`ProgSpec`] directly over an
//! architectural register/memory state using host Rust arithmetic with
//! explicit RISC-V edge semantics (shift-amount masking, division by
//! zero, word-op sign extension).
//!
//! The oracle supports deliberate *fault injection* for self-testing
//! the checker: a [`Fault`] re-introduces a plausible semantics bug so
//! the conformance property must catch and shrink it.

use crate::progen::{AluOp, ProgSpec, SpecOp, NREGS, NSLOTS};

/// Final architectural state the oracle predicts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineState {
    /// Virtual register values (`REG_MAP` order).
    pub regs: [u64; NREGS],
    /// Scratch memory slots.
    pub mem: [u64; NSLOTS],
}

impl Default for MachineState {
    fn default() -> Self {
        MachineState {
            regs: [0; NREGS],
            mem: [0; NSLOTS],
        }
    }
}

/// Deliberate oracle bugs for checker self-tests. Each replicates a
/// mistake that naive host-arithmetic emulation actually makes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Correct RISC-V semantics.
    None,
    /// `divu/remu` by zero returns 0 instead of all-ones / the dividend.
    DivuZeroGivesZero,
    /// Shifts do not mask the shift amount: `x << 64` yields 0 instead
    /// of `x << (64 & 63) = x`.
    UnmaskedShift,
}

/// Evaluates `spec` from the all-zero initial state.
pub fn eval(spec: &ProgSpec, fault: Fault) -> MachineState {
    let mut st = MachineState::default();
    for op in &spec.ops {
        match op {
            SpecOp::Loop { count, body } => {
                for _ in 0..*count {
                    for b in body {
                        eval_one(&mut st, b, fault);
                    }
                }
            }
            other => eval_one(&mut st, other, fault),
        }
    }
    st
}

fn eval_one(st: &mut MachineState, op: &SpecOp, fault: Fault) {
    match op {
        SpecOp::Li { rd, imm } => st.regs[*rd as usize] = *imm as u64,
        SpecOp::Alu { op, rd, rs1, rs2 } => {
            let a = st.regs[*rs1 as usize];
            let b = st.regs[*rs2 as usize];
            st.regs[*rd as usize] = alu(*op, a, b, fault);
        }
        SpecOp::Load { rd, slot } => st.regs[*rd as usize] = st.mem[*slot as usize],
        SpecOp::Store { rs, slot } => st.mem[*slot as usize] = st.regs[*rs as usize],
        SpecOp::Loop { .. } => unreachable!("nested loops are not generated"),
    }
}

/// RV64IM ALU semantics on u64 bit patterns.
fn alu(op: AluOp, a: u64, b: u64, fault: Fault) -> u64 {
    let (sa, sb) = (a as i64, b as i64);
    // shift amounts: RV64 masks rs2 to 6 bits (5 for *w ops)
    let (sh64, sh32) = if fault == Fault::UnmaskedShift {
        // buggy mode: shifting by >= width produces 0 (or the sign fill)
        (b.min(64), b.min(63))
    } else {
        (b & 63, b & 31)
    };
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Sll => a.checked_shl(sh64 as u32).unwrap_or(0),
        AluOp::Srl => a.checked_shr(sh64 as u32).unwrap_or(0),
        AluOp::Sra => sa.checked_shr(sh64 as u32).unwrap_or(sa >> 63) as u64,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((sa as i128) * (sb as i128)) >> 64) as u64,
        AluOp::Div => {
            if sb == 0 {
                u64::MAX
            } else if sa == i64::MIN && sb == -1 {
                i64::MIN as u64
            } else {
                (sa / sb) as u64
            }
        }
        AluOp::Divu => match a.checked_div(b) {
            Some(v) => v,
            None if fault == Fault::DivuZeroGivesZero => 0,
            None => u64::MAX,
        },
        AluOp::Rem => {
            if sb == 0 {
                a
            } else if sa == i64::MIN && sb == -1 {
                0
            } else {
                (sa % sb) as u64
            }
        }
        AluOp::Remu => match a.checked_rem(b) {
            Some(v) => v,
            None if fault == Fault::DivuZeroGivesZero => 0,
            None => a,
        },
        AluOp::Addw => sext32(a.wrapping_add(b)),
        AluOp::Subw => sext32(a.wrapping_sub(b)),
        AluOp::Mulw => sext32(a.wrapping_mul(b)),
        AluOp::Sllw => sext32(((a as u32).checked_shl(sh32 as u32).unwrap_or(0)) as u64),
        AluOp::Srlw => sext32(((a as u32).checked_shr(sh32 as u32).unwrap_or(0)) as u64),
        AluOp::Sraw => {
            let v = (a as i32).checked_shr(sh32 as u32).unwrap_or((a as i32) >> 31);
            v as i64 as u64
        }
        AluOp::Divuw => {
            let (a32, b32) = (a as u32, b as u32);
            match a32.checked_div(b32) {
                Some(v) => v as i32 as i64 as u64,
                None if fault == Fault::DivuZeroGivesZero => 0,
                None => u32::MAX as i32 as i64 as u64,
            }
        }
        AluOp::Remuw => {
            let (a32, b32) = (a as u32, b as u32);
            match a32.checked_rem(b32) {
                Some(v) => v as i32 as i64 as u64,
                None if fault == Fault::DivuZeroGivesZero => 0,
                None => a32 as i32 as i64 as u64,
            }
        }
    }
}

fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progen::{AluOp, ProgSpec, SpecOp};

    fn one_op(op: AluOp, a: u64, b: u64) -> u64 {
        alu(op, a, b, Fault::None)
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(one_op(AluOp::Sll, 1, 64), 1, "64 & 63 == 0");
        assert_eq!(one_op(AluOp::Srl, 0x8000, 65), 0x4000, "65 & 63 == 1");
        assert_eq!(one_op(AluOp::Sllw, 1, 32), sext32(1), "32 & 31 == 0");
    }

    #[test]
    fn division_edges() {
        assert_eq!(one_op(AluOp::Div, 42, 0), u64::MAX);
        assert_eq!(one_op(AluOp::Divu, 42, 0), u64::MAX);
        assert_eq!(one_op(AluOp::Rem, 42, 0), 42);
        assert_eq!(one_op(AluOp::Remu, 42, 0), 42);
        assert_eq!(
            one_op(AluOp::Div, i64::MIN as u64, -1i64 as u64),
            i64::MIN as u64,
            "overflow case keeps the dividend"
        );
        assert_eq!(one_op(AluOp::Rem, i64::MIN as u64, -1i64 as u64), 0);
    }

    #[test]
    fn loops_and_memory_roundtrip() {
        // r0 = 3; loop 4 { r1 = r1 + r0; mem[2] = r1 }; r2 = mem[2]
        let spec = ProgSpec {
            ops: vec![
                SpecOp::Li { rd: 0, imm: 3 },
                SpecOp::Loop {
                    count: 4,
                    body: vec![
                        SpecOp::Alu { op: AluOp::Add, rd: 1, rs1: 1, rs2: 0 },
                        SpecOp::Store { rs: 1, slot: 2 },
                    ],
                },
                SpecOp::Load { rd: 2, slot: 2 },
            ],
        };
        let st = eval(&spec, Fault::None);
        assert_eq!(st.regs[1], 12);
        assert_eq!(st.mem[2], 12);
        assert_eq!(st.regs[2], 12);
    }

    #[test]
    fn faults_change_observable_behavior() {
        assert_eq!(alu(AluOp::Divu, 7, 0, Fault::DivuZeroGivesZero), 0);
        assert_ne!(
            alu(AluOp::Sll, 1, 64, Fault::UnmaskedShift),
            alu(AluOp::Sll, 1, 64, Fault::None),
            "the injected shift bug must be observable"
        );
    }
}
