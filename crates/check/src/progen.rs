//! Constrained random-program generation.
//!
//! Programs are generated as abstract [`ProgSpec`]s — straight-line ALU
//! work, bounded counted loops, and loads/stores into a small scratch
//! region — rather than raw machine code, so the host oracle in
//! [`crate::oracle`] can evaluate the *same* spec without re-implementing
//! a decoder. By construction every spec is self-contained and trap-free:
//! registers come from a fixed pool, memory accesses hit aligned slots
//! inside the scratch region, and loops always terminate.
//!
//! [`ProgGen`] implements `xt_harness::gen::Gen`, so failing programs
//! shrink through the standard engine: drop instructions, unroll or
//! trim loops, and pull immediates toward zero.

use xt_asm::{Asm, Program};
use xt_harness::gen::{weighted, Gen};
use xt_harness::rng::Rng;
use xt_isa::reg::Gpr;

/// Number of virtual registers a program may use.
pub const NREGS: usize = 8;

/// Number of 8-byte scratch memory slots.
pub const NSLOTS: usize = 16;

/// Virtual register `i` lives in `REG_MAP[i]`. The pool deliberately
/// avoids `a0` (the halt/exit register) and `s0`/`s1` (scratch base and
/// loop counter).
pub const REG_MAP: [Gpr; NREGS] = [
    Gpr::A1,
    Gpr::A2,
    Gpr::A3,
    Gpr::A4,
    Gpr::A5,
    Gpr::A6,
    Gpr::A7,
    Gpr::T0,
];

/// ALU operations a generated program may contain. Mirrors the subset
/// of RV64IM the differential suite covers, including the shift-amount
/// masking and division edge semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// 64-bit add.
    Add,
    /// 64-bit subtract.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Set-less-than, unsigned.
    Sltu,
    /// Logical shift left (amount masked to 6 bits).
    Sll,
    /// Logical shift right (amount masked to 6 bits).
    Srl,
    /// Arithmetic shift right (amount masked to 6 bits).
    Sra,
    /// 64-bit multiply, low half.
    Mul,
    /// Signed×signed multiply, high half.
    Mulh,
    /// Signed divide (`MIN/-1` overflow and `/0` per RV64M).
    Div,
    /// Unsigned divide (`/0` yields all-ones per RV64M).
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
    /// 32-bit add, sign-extended result (`addw`).
    Addw,
    /// 32-bit subtract, sign-extended result (`subw`).
    Subw,
    /// 32-bit multiply, sign-extended result (`mulw`).
    Mulw,
    /// 32-bit shift left (amount masked to 5 bits).
    Sllw,
    /// 32-bit logical shift right (amount masked to 5 bits).
    Srlw,
    /// 32-bit arithmetic shift right (amount masked to 5 bits).
    Sraw,
    /// 32-bit unsigned divide, sign-extended result (`divuw`).
    Divuw,
    /// 32-bit unsigned remainder, sign-extended result (`remuw`).
    Remuw,
}

/// All ALU operations (for uniform selection; `Add` first so shrinking
/// converges on the simplest op).
pub const ALL_ALU: [AluOp; 23] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sltu,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
    AluOp::Addw,
    AluOp::Subw,
    AluOp::Mulw,
    AluOp::Sllw,
    AluOp::Srlw,
    AluOp::Sraw,
    AluOp::Divuw,
    AluOp::Remuw,
];

/// One abstract operation. Register operands are virtual indices in
/// `0..NREGS`; memory slots index the scratch region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecOp {
    /// `rd = imm`
    Li {
        /// Destination virtual register.
        rd: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = op(rs1, rs2)`
    Alu {
        /// The ALU operation.
        op: AluOp,
        /// Destination virtual register.
        rd: u8,
        /// First source virtual register.
        rs1: u8,
        /// Second source virtual register.
        rs2: u8,
    },
    /// `rd = scratch[slot]`
    Load {
        /// Destination virtual register.
        rd: u8,
        /// Scratch-memory slot index.
        slot: u8,
    },
    /// `scratch[slot] = rs`
    Store {
        /// Source virtual register.
        rs: u8,
        /// Scratch-memory slot index.
        slot: u8,
    },
    /// Repeat `body` exactly `count` times (no nesting).
    Loop {
        /// Iteration count.
        count: u8,
        /// Operations repeated each iteration (never contains `Loop`).
        body: Vec<SpecOp>,
    },
}

/// An abstract program: a sequence of [`SpecOp`]s executed over zeroed
/// registers and scratch memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgSpec {
    /// The operations, in program order.
    pub ops: Vec<SpecOp>,
}

impl ProgSpec {
    /// Total static operation count (loop bodies counted once).
    pub fn len(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                SpecOp::Loop { body, .. } => 1 + body.len(),
                _ => 1,
            })
            .sum()
    }

    /// True when the spec holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True when no operation reads a register written earlier and the
    /// program is straight-line (no loops, no memory traffic). On such
    /// programs the out-of-order core can extract all the parallelism,
    /// so its cycle count must not exceed the in-order baseline's.
    pub fn is_dependency_free(&self) -> bool {
        let mut written = [false; NREGS];
        for op in &self.ops {
            match op {
                SpecOp::Li { rd, .. } => written[*rd as usize] = true,
                SpecOp::Alu { rd, rs1, rs2, .. } => {
                    if written[*rs1 as usize] || written[*rs2 as usize] {
                        return false;
                    }
                    written[*rd as usize] = true;
                }
                SpecOp::Load { .. } | SpecOp::Store { .. } | SpecOp::Loop { .. } => return false,
            }
        }
        true
    }

    /// Assembles the spec at the default text/data bases. Returns the
    /// program and the scratch region's base address.
    pub fn emit(&self) -> (Program, u64) {
        self.emit_at(0x8000_0000, 0x8100_0000)
    }

    /// Assembles the spec at explicit text and data bases — the cluster
    /// invariant checks place each core's image in a disjoint region so
    /// their private working sets do not interfere.
    pub fn emit_at(&self, text_base: u64, data_base: u64) -> (Program, u64) {
        let mut a = Asm::new()
            .with_text_base(text_base)
            .with_data_base(data_base);
        let scratch = a.data_zeros("scratch", NSLOTS * 8);
        a.la(Gpr::S0, scratch);
        self.emit_ops(&mut a);
        a.halt();
        (a.finish().expect("generated spec assembles"), scratch)
    }

    /// Emits just the spec's operations into an in-progress assembly
    /// (scratch base already in `s0`). The fast-path differential phase
    /// ([`crate::fastpath`]) uses this to splice a generated workload in
    /// front of its self-modifying epilogue.
    pub fn emit_ops(&self, a: &mut Asm) {
        for op in &self.ops {
            match op {
                SpecOp::Loop { count, body } => {
                    a.li(Gpr::S1, *count as i64);
                    let top = a.here();
                    for b in body {
                        emit_one(a, b);
                    }
                    a.addi(Gpr::S1, Gpr::S1, -1);
                    a.bnez(Gpr::S1, top);
                }
                other => emit_one(a, other),
            }
        }
    }
}

fn emit_one(a: &mut Asm, op: &SpecOp) {
    match op {
        SpecOp::Li { rd, imm } => {
            a.li(REG_MAP[*rd as usize], *imm);
        }
        SpecOp::Alu { op, rd, rs1, rs2 } => {
            let (d, s1, s2) = (
                REG_MAP[*rd as usize],
                REG_MAP[*rs1 as usize],
                REG_MAP[*rs2 as usize],
            );
            match op {
                AluOp::Add => a.add(d, s1, s2),
                AluOp::Sub => a.sub(d, s1, s2),
                AluOp::And => a.and_(d, s1, s2),
                AluOp::Or => a.or_(d, s1, s2),
                AluOp::Xor => a.xor_(d, s1, s2),
                AluOp::Sltu => a.sltu(d, s1, s2),
                AluOp::Sll => a.sll(d, s1, s2),
                AluOp::Srl => a.srl(d, s1, s2),
                AluOp::Sra => a.sra(d, s1, s2),
                AluOp::Mul => a.mul(d, s1, s2),
                AluOp::Mulh => a.mulh(d, s1, s2),
                AluOp::Div => a.div(d, s1, s2),
                AluOp::Divu => a.divu(d, s1, s2),
                AluOp::Rem => a.rem(d, s1, s2),
                AluOp::Remu => a.remu(d, s1, s2),
                AluOp::Addw => a.addw(d, s1, s2),
                AluOp::Subw => a.subw(d, s1, s2),
                AluOp::Mulw => a.mulw(d, s1, s2),
                AluOp::Sllw => a.sllw(d, s1, s2),
                AluOp::Srlw => a.srlw(d, s1, s2),
                AluOp::Sraw => a.sraw(d, s1, s2),
                AluOp::Divuw => a.divuw(d, s1, s2),
                AluOp::Remuw => a.remuw(d, s1, s2),
            };
        }
        SpecOp::Load { rd, slot } => {
            a.ld(REG_MAP[*rd as usize], Gpr::S0, *slot as i64 * 8);
        }
        SpecOp::Store { rs, slot } => {
            a.sd(REG_MAP[*rs as usize], Gpr::S0, *slot as i64 * 8);
        }
        SpecOp::Loop { .. } => unreachable!("loops are emitted at the top level"),
    }
}

/// Operation-kind tags for the weighted instruction mix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Alu,
    Li,
    Load,
    Store,
    Loop,
}

/// ALU-heavy mix, like real integer code; `Alu` first so kind shrinking
/// trends toward plain arithmetic.
static KIND_WEIGHTS: &[(u32, Kind)] = &[
    (10, Kind::Alu),
    (4, Kind::Li),
    (3, Kind::Load),
    (3, Kind::Store),
    (2, Kind::Loop),
];

/// Inside loop bodies: no nested loops.
static BODY_KIND_WEIGHTS: &[(u32, Kind)] = &[
    (10, Kind::Alu),
    (3, Kind::Li),
    (3, Kind::Load),
    (3, Kind::Store),
];

/// Generator for [`ProgSpec`]s.
#[derive(Clone, Debug)]
pub struct ProgGen {
    /// Maximum number of top-level operations.
    pub max_ops: usize,
}

impl Default for ProgGen {
    fn default() -> Self {
        ProgGen { max_ops: 24 }
    }
}

/// Maximum loop iteration count (bounded so programs stay short).
const MAX_LOOP_COUNT: u8 = 8;
/// Maximum operations inside one loop body.
const MAX_BODY_OPS: u64 = 6;

impl ProgGen {
    fn gen_simple(&self, rng: &mut Rng, kind: Kind) -> SpecOp {
        let reg = |rng: &mut Rng| rng.below(NREGS as u64) as u8;
        let slot = |rng: &mut Rng| rng.below(NSLOTS as u64) as u8;
        match kind {
            Kind::Alu => SpecOp::Alu {
                op: *rng.choose(&ALL_ALU),
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            },
            Kind::Li => SpecOp::Li {
                rd: reg(rng),
                // full-width immediates: boundary patterns matter more
                // than small ints for shift/div/word-op bugs
                imm: rng.next_u64() as i64,
            },
            Kind::Load => SpecOp::Load {
                rd: reg(rng),
                slot: slot(rng),
            },
            Kind::Store => SpecOp::Store {
                rs: reg(rng),
                slot: slot(rng),
            },
            Kind::Loop => unreachable!("loops handled by the caller"),
        }
    }
}

impl Gen for ProgGen {
    type Value = ProgSpec;

    fn generate(&self, rng: &mut Rng) -> ProgSpec {
        let kind_gen = weighted(KIND_WEIGHTS);
        let body_kind_gen = weighted(BODY_KIND_WEIGHTS);
        let len = rng.gen_range_u64(1, self.max_ops as u64 + 1) as usize;
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let kind = kind_gen.generate(rng);
            if kind == Kind::Loop {
                let count = rng.gen_range_u64(1, MAX_LOOP_COUNT as u64 + 1) as u8;
                let body_len = rng.gen_range_u64(1, MAX_BODY_OPS + 1);
                let body = (0..body_len)
                    .map(|_| {
                        let k = body_kind_gen.generate(rng);
                        self.gen_simple(rng, k)
                    })
                    .collect();
                ops.push(SpecOp::Loop { count, body });
            } else {
                ops.push(self.gen_simple(rng, kind));
            }
        }
        ProgSpec { ops }
    }

    fn shrink(&self, value: &ProgSpec) -> Vec<ProgSpec> {
        let ops = &value.ops;
        let n = ops.len();
        let mut out = Vec::new();
        // 1. structural: halve, then drop single ops (keep ≥ 1 op)
        if n > 1 {
            let half = (n / 2).max(1);
            out.push(ProgSpec {
                ops: ops[..half].to_vec(),
            });
            out.push(ProgSpec {
                ops: ops[n - half..].to_vec(),
            });
            for i in 0..n {
                let mut v = ops.clone();
                v.remove(i);
                out.push(ProgSpec { ops: v });
            }
        }
        // 2. op-wise simplification in place
        for i in 0..n {
            for cand in shrink_op(&ops[i]) {
                let mut v = ops.clone();
                v[i] = cand;
                out.push(ProgSpec { ops: v });
            }
        }
        out
    }
}

/// Candidate simplifications of one op, most aggressive first.
fn shrink_op(op: &SpecOp) -> Vec<SpecOp> {
    match op {
        SpecOp::Li { rd, imm } => {
            let mut out = Vec::new();
            for cand in [0, imm / 2, imm - imm.signum()] {
                if cand != *imm && !out.iter().any(|o| matches!(o, SpecOp::Li { imm, .. } if *imm == cand)) {
                    out.push(SpecOp::Li { rd: *rd, imm: cand });
                }
            }
            out
        }
        SpecOp::Alu { op, rd, rs1, rs2 } if *op != AluOp::Add => vec![SpecOp::Alu {
            op: AluOp::Add,
            rd: *rd,
            rs1: *rs1,
            rs2: *rs2,
        }],
        SpecOp::Loop { count, body } => {
            let mut out = Vec::new();
            // unroll once: replaces control flow with its body
            if body.len() == 1 {
                out.push(body[0].clone());
            }
            if *count > 1 {
                out.push(SpecOp::Loop {
                    count: 1,
                    body: body.clone(),
                });
            }
            // trim the body
            if body.len() > 1 {
                for i in 0..body.len() {
                    let mut b = body.clone();
                    b.remove(i);
                    out.push(SpecOp::Loop {
                        count: *count,
                        body: b,
                    });
                }
            }
            // simplify body ops in place
            for i in 0..body.len() {
                for cand in shrink_op(&body[i]) {
                    let mut b = body.clone();
                    b[i] = cand;
                    out.push(SpecOp::Loop {
                        count: *count,
                        body: b,
                    });
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let g = ProgGen::default();
        let a = g.generate(&mut Rng::new(7));
        let b = g.generate(&mut Rng::new(7));
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.ops.len() <= g.max_ops);
    }

    #[test]
    fn loops_never_nest() {
        let g = ProgGen::default();
        let mut rng = Rng::new(3);
        for _ in 0..200 {
            let spec = g.generate(&mut rng);
            for op in &spec.ops {
                if let SpecOp::Loop { count, body } = op {
                    assert!((1..=MAX_LOOP_COUNT).contains(count));
                    assert!(!body.is_empty());
                    assert!(!body.iter().any(|b| matches!(b, SpecOp::Loop { .. })));
                }
            }
        }
    }

    #[test]
    fn every_generated_spec_assembles() {
        let g = ProgGen::default();
        let mut rng = Rng::new(9);
        for _ in 0..100 {
            let spec = g.generate(&mut rng);
            let (prog, scratch) = spec.emit();
            assert!(!prog.text.is_empty());
            assert!(scratch >= xt_asm::DEFAULT_DATA_BASE);
        }
    }

    #[test]
    fn shrinking_terminates_at_fixpoint() {
        let g = ProgGen::default();
        let mut spec = g.generate(&mut Rng::new(11));
        let mut steps = 0;
        while let Some(next) = g.shrink(&spec).into_iter().next() {
            assert!(next.len() <= spec.len(), "shrink never grows the spec");
            spec = next;
            steps += 1;
            assert!(steps < 10_000, "greedy shrink terminates");
        }
        assert_eq!(spec.ops.len(), 1, "fully shrunk program is one op");
    }

    #[test]
    fn dependency_free_detection() {
        let free = ProgSpec {
            ops: vec![
                SpecOp::Alu { op: AluOp::Add, rd: 0, rs1: 1, rs2: 2 },
                SpecOp::Alu { op: AluOp::Xor, rd: 3, rs1: 4, rs2: 5 },
            ],
        };
        assert!(free.is_dependency_free());
        let dep = ProgSpec {
            ops: vec![
                SpecOp::Li { rd: 1, imm: 5 },
                SpecOp::Alu { op: AluOp::Add, rd: 0, rs1: 1, rs2: 2 },
            ],
        };
        assert!(!dep.is_dependency_free(), "reads a written register");
        let looped = ProgSpec {
            ops: vec![SpecOp::Loop { count: 2, body: vec![SpecOp::Li { rd: 0, imm: 1 }] }],
        };
        assert!(!looped.is_dependency_free(), "loops are never dependency-free");
    }
}
