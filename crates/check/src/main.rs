//! `xt-check` binary — the conformance smoke runner for CI.
//!
//! ```sh
//! xt-check [--cases N] [--seed S] [--self-test]
//! ```
//!
//! Generates `N` random programs from seed `S` (both overridable via
//! `XT_HARNESS_CASES` / `XT_HARNESS_SEED`), checking each for
//! emulator/oracle conformance and timing-model invariants. With
//! `--self-test`, additionally injects a deliberate oracle fault and
//! verifies the checker catches it with a shrunk, seed-replayable
//! counterexample. Exits non-zero on any failure.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use xt_check::cluster::{check_cluster_invariants, ClusterGen};
use xt_check::fastpath::{check_fastpath, FastGen};
use xt_check::interrupts::{check_interrupts, IrqGen};
use xt_check::oracle::Fault;
use xt_check::progen::ProgGen;
use xt_check::snapshot::{check_snapshot_identity, SnapGen};
use xt_check::vector::{check_vector, VecGen};
use xt_check::{check_program, SUITE_SEED};
use xt_harness::prop::{check_with, Config};

fn parse_args() -> Result<(u32, u64, bool), String> {
    let mut cases = 64u32;
    let mut seed = SUITE_SEED;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                let v = args.next().ok_or("--cases needs a value")?;
                cases = v.parse().map_err(|_| format!("bad --cases {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|_| format!("bad --seed {v:?}"))?
                } else {
                    v.parse().map_err(|_| format!("bad --seed {v:?}"))?
                };
            }
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!("usage: xt-check [--cases N] [--seed S] [--self-test]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((cases, seed, self_test))
}

fn main() -> ExitCode {
    let (cases, seed, self_test) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xt-check: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Failures are reported through the caught panic payload; the
    // default hook's backtrace would only add noise to CI logs.
    std::panic::set_hook(Box::new(|_| {}));

    let cfg = Config::seeded_cases(seed, cases);
    let gen = ProgGen::default();

    println!(
        "xt-check: {} programs, seed {:#x} (replay any failure with XT_HARNESS_SEED)",
        cfg.cases, cfg.seed
    );
    let checked = std::cell::Cell::new(0u32);
    let result = catch_unwind(AssertUnwindSafe(|| {
        check_with(&cfg, "xt_check_suite", &gen, |spec| {
            if let Err(e) = check_program(spec, Fault::None) {
                panic!("{e}");
            }
            checked.set(checked.get() + 1);
        });
    }));
    match result {
        Ok(()) => println!(
            "xt-check: OK — {} programs, zero divergences, zero invariant violations",
            checked.get()
        ),
        Err(payload) => {
            eprintln!("{}", panic_text(&payload));
            return ExitCode::FAILURE;
        }
    }

    // Cluster invariants: fewer cases (each spins up 3-5 whole-cluster
    // simulations) but the same shrink-and-replay discipline.
    let cluster_cases = (cases / 4).max(4);
    let cluster_cfg = Config::seeded_cases(seed ^ 0xC105_7E12, cluster_cases);
    println!(
        "xt-check: {} cluster workloads, seed {:#x}",
        cluster_cfg.cases, cluster_cfg.seed
    );
    let cluster_checked = std::cell::Cell::new(0u32);
    let cluster_result = catch_unwind(AssertUnwindSafe(|| {
        check_with(
            &cluster_cfg,
            "xt_check_cluster",
            &ClusterGen::default(),
            |spec| {
                if let Err(e) = check_cluster_invariants(spec) {
                    panic!("{e}");
                }
                cluster_checked.set(cluster_checked.get() + 1);
            },
        );
    }));
    match cluster_result {
        Ok(()) => println!(
            "xt-check: OK — {} cluster workloads, determinism + makespan + \
             snoop conservation hold",
            cluster_checked.get()
        ),
        Err(payload) => {
            eprintln!("{}", panic_text(&payload));
            return ExitCode::FAILURE;
        }
    }

    // Fast-path differential: decoded-block engine vs. per-step decode
    // on self-modifying programs (the host oracle cannot model SMC, so
    // the slow interpreter is the reference here).
    let fp_cfg = Config::seeded_cases(seed ^ 0xFA57_0B10, cases);
    println!(
        "xt-check: {} fast-path differential programs, seed {:#x}",
        fp_cfg.cases, fp_cfg.seed
    );
    let fp_checked = std::cell::Cell::new(0u32);
    let fp_result = catch_unwind(AssertUnwindSafe(|| {
        check_with(&fp_cfg, "xt_check_fastpath", &FastGen::default(), |spec| {
            if let Err(e) = check_fastpath(spec) {
                panic!("{e}");
            }
            fp_checked.set(fp_checked.get() + 1);
        });
    }));
    match fp_result {
        Ok(()) => println!(
            "xt-check: OK — {} self-modifying programs, block cache \
             architecturally invisible",
            fp_checked.get()
        ),
        Err(payload) => {
            eprintln!("{}", panic_text(&payload));
            return ExitCode::FAILURE;
        }
    }

    // Interrupt differential: the same fast/slow comparison under a
    // re-arming CLINT timer on the real device bus — asynchronous
    // delivery must be architecturally invisible to the block cache.
    let irq_cfg = Config::seeded_cases(seed ^ 0x1247_0B10, cases);
    println!(
        "xt-check: {} interrupt-delivery programs, seed {:#x}",
        irq_cfg.cases, irq_cfg.seed
    );
    let irq_checked = std::cell::Cell::new(0u32);
    let irq_result = catch_unwind(AssertUnwindSafe(|| {
        check_with(&irq_cfg, "xt_check_interrupts", &IrqGen::default(), |spec| {
            if let Err(e) = check_interrupts(spec) {
                panic!("{e}");
            }
            irq_checked.set(irq_checked.get() + 1);
        });
    }));
    match irq_result {
        Ok(()) => println!(
            "xt-check: OK — {} timer-preempted programs, fast and slow \
             engines retire identical streams",
            irq_checked.get()
        ),
        Err(payload) => {
            eprintln!("{}", panic_text(&payload));
            return ExitCode::FAILURE;
        }
    }

    // Vector differential: random kernels through the full compile
    // grid (scalar vs. auto-vectorized, base vs. tuned), both execution
    // engines, and the OoO model's vector top-down invariants.
    let vec_cases = (cases / 2).max(8);
    let vec_cfg = Config::seeded_cases(seed ^ 0x7EC7_0B10, vec_cases);
    println!(
        "xt-check: {} vector kernels, seed {:#x}",
        vec_cfg.cases, vec_cfg.seed
    );
    let vec_checked = std::cell::Cell::new(0u32);
    let vec_result = catch_unwind(AssertUnwindSafe(|| {
        check_with(&vec_cfg, "xt_check_vector", &VecGen, |spec| {
            if let Err(e) = check_vector(spec) {
                panic!("{e}");
            }
            vec_checked.set(vec_checked.get() + 1);
        });
    }));
    match vec_result {
        Ok(()) => println!(
            "xt-check: OK — {} vector kernels, scalar/vector/fast/slow/OoO \
             agree and vector top-down conserves",
            vec_checked.get()
        ),
        Err(payload) => {
            eprintln!("{}", panic_text(&payload));
            return ExitCode::FAILURE;
        }
    }

    // Snapshot/resume identity: cut a run at a random point, restore
    // the frame into a fresh instance, and require bit-identical
    // continuation (counters, memory stats, exit codes) plus
    // byte-stable re-saves.
    let snap_cases = (cases / 4).max(4);
    let snap_cfg = Config::seeded_cases(seed ^ 0x5A4B_0B10, snap_cases);
    println!(
        "xt-check: {} snapshot/resume workloads, seed {:#x}",
        snap_cfg.cases, snap_cfg.seed
    );
    let snap_checked = std::cell::Cell::new(0u32);
    let snap_result = catch_unwind(AssertUnwindSafe(|| {
        check_with(&snap_cfg, "xt_check_snapshot", &SnapGen::default(), |spec| {
            if let Err(e) = check_snapshot_identity(spec) {
                panic!("{e}");
            }
            snap_checked.set(snap_checked.get() + 1);
        });
    }));
    match snap_result {
        Ok(()) => println!(
            "xt-check: OK — {} snapshotted runs resume bit-identically",
            snap_checked.get()
        ),
        Err(payload) => {
            eprintln!("{}", panic_text(&payload));
            return ExitCode::FAILURE;
        }
    }

    if self_test {
        // The checker must catch a deliberately broken oracle and hand
        // back a shrunk, replayable counterexample.
        let fault_cfg = Config::seeded_cases(seed, cases);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check_with(&fault_cfg, "xt_check_self_test", &gen, |spec| {
                if let Err(e) = check_program(spec, Fault::DivuZeroGivesZero) {
                    panic!("{e}");
                }
            });
        }));
        match caught {
            Ok(()) => {
                eprintln!(
                    "xt-check: SELF-TEST FAILED — injected oracle fault went undetected"
                );
                return ExitCode::FAILURE;
            }
            Err(payload) => {
                let msg = panic_text(&payload);
                if msg.contains("minimal input") && msg.contains("XT_HARNESS_SEED") {
                    println!(
                        "xt-check: self-test OK — injected fault caught with a shrunk, \
                         seed-replayable counterexample"
                    );
                } else {
                    eprintln!("xt-check: SELF-TEST FAILED — no shrunk counterexample:\n{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn panic_text(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
