//! `xt-check` — cross-model conformance and invariant checking.
//!
//! The V&V layer of the simulator: constrained random programs
//! ([`progen`]) are executed by the functional emulator and compared
//! against a compact host-side oracle ([`oracle`]), then replayed
//! through both timing models under structural invariants
//! ([`invariants`]); generated multi-core workloads additionally run
//! through the epoch-barriered cluster engine under determinism,
//! makespan, and snoop-conservation laws ([`cluster`]); and random
//! workloads preempted by a re-arming CLINT timer must retire
//! identically with the decoded-block engine on and off
//! ([`interrupts`]); and random vector kernels must produce identical
//! results across the `rv64gc|rv64gcv × base|tuned` compile grid, both
//! execution engines, and the OoO timing model, whose six-bucket
//! top-down decomposition (including the vector bucket) must conserve
//! ([`vector`]); and a run snapshotted at a random cut point must
//! resume bit-identically from the frame in a fresh instance
//! ([`snapshot`]). Failures shrink through the `xt-harness` engine
//! and carry a replay artifact: the failing seed, the disassembled
//! program, and a per-stage timing summary.
//!
//! ## Replay workflow
//!
//! The fixed suite seed is [`SUITE_SEED`]. Any failure printed by the
//! harness can be reproduced with
//! `XT_HARNESS_SEED=<seed> cargo test -p xt-check` (or the `xt-check`
//! binary with `--seed`).

pub mod cluster;
pub mod fastpath;
pub mod interrupts;
pub mod invariants;
pub mod oracle;
pub mod progen;
pub mod snapshot;
pub mod vector;

use oracle::Fault;
use progen::{ProgSpec, NREGS, NSLOTS, REG_MAP};
use xt_asm::Program;
use xt_emu::Emulator;

/// Fixed seed for the standing conformance suite (CI and tests).
pub const SUITE_SEED: u64 = 0xC8EC_2020_0910_0001;

/// Dynamic instruction budget per program.
const MAX_INSTS: u64 = 1_000_000;

/// Disassembles a program's text section (one instruction per line,
/// with addresses) for failure artifacts.
pub fn disasm_program(prog: &Program) -> String {
    let mut out = String::new();
    for (i, word) in prog.text.chunks_exact(4).enumerate() {
        let w = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
        let pc = prog.text_base + 4 * i as u64;
        match xt_isa::decode(w) {
            Ok(inst) => out.push_str(&format!("  {pc:#x}: {}\n", xt_isa::disasm::disasm(&inst))),
            Err(_) => out.push_str(&format!("  {pc:#x}: .word {w:#010x}\n")),
        }
    }
    out
}

/// Runs `spec` on the emulator and compares the final architectural
/// state against the oracle evaluated with `fault` (use
/// [`Fault::None`] for real checking; other faults self-test the
/// checker). On divergence returns a replay artifact describing the
/// mismatch alongside the disassembly.
pub fn check_conformance(spec: &ProgSpec, fault: Fault) -> Result<(), String> {
    let (prog, scratch) = spec.emit();
    let mut emu = Emulator::new();
    emu.load(&prog);
    emu.run(MAX_INSTS)
        .map_err(|e| format!("emulator error on generated program: {e:?}"))?;
    let expect = oracle::eval(spec, fault);

    let mut diffs = Vec::new();
    for (i, gpr) in REG_MAP.iter().enumerate().take(NREGS) {
        let got = emu.cpu.rx(gpr.index());
        if got != expect.regs[i] {
            diffs.push(format!(
                "  reg r{i} ({gpr}): emu {got:#x} != oracle {:#x}",
                expect.regs[i]
            ));
        }
    }
    for slot in 0..NSLOTS {
        let got = emu.mem.read_u64(scratch + 8 * slot as u64);
        if got != expect.mem[slot] {
            diffs.push(format!(
                "  mem[{slot}]: emu {got:#x} != oracle {:#x}",
                expect.mem[slot]
            ));
        }
    }
    if diffs.is_empty() {
        return Ok(());
    }
    Err(format!(
        "emulator/oracle divergence:\n{}\nprogram:\n{}",
        diffs.join("\n"),
        disasm_program(&prog)
    ))
}

/// Full check for one program: conformance against the oracle, then
/// timing-model invariants. The `Err` carries the replay artifact.
pub fn check_program(spec: &ProgSpec, fault: Fault) -> Result<(), String> {
    check_conformance(spec, fault)?;
    match invariants::check_invariants(spec) {
        Ok(_) => Ok(()),
        Err(e) => {
            let (prog, _) = spec.emit();
            Err(format!(
                "timing invariant violated: {e}\nprogram:\n{}",
                disasm_program(&prog)
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progen::{AluOp, SpecOp};

    #[test]
    fn handwritten_spec_conforms() {
        let spec = ProgSpec {
            ops: vec![
                SpecOp::Li { rd: 0, imm: -7 },
                SpecOp::Li { rd: 1, imm: 64 },
                SpecOp::Alu { op: AluOp::Sll, rd: 2, rs1: 0, rs2: 1 }, // shamt masks to 0
                SpecOp::Alu { op: AluOp::Divu, rd: 3, rs1: 0, rs2: 4 }, // div by zero
                SpecOp::Store { rs: 2, slot: 3 },
                SpecOp::Load { rd: 5, slot: 3 },
            ],
        };
        check_program(&spec, Fault::None).expect("spec conforms");
    }

    #[test]
    fn injected_fault_reports_divergence_with_artifact() {
        // divu-by-zero: real emulator yields all-ones, the faulty oracle 0
        let spec = ProgSpec {
            ops: vec![
                SpecOp::Li { rd: 0, imm: 7 },
                SpecOp::Alu { op: AluOp::Divu, rd: 1, rs1: 0, rs2: 2 },
            ],
        };
        let err = check_conformance(&spec, Fault::DivuZeroGivesZero)
            .expect_err("fault must be observable");
        assert!(err.contains("divergence"), "describes the mismatch: {err}");
        assert!(err.contains("divu"), "artifact disassembles the program: {err}");
    }

    #[test]
    fn disasm_artifact_covers_whole_program() {
        let spec = ProgSpec {
            ops: vec![SpecOp::Li { rd: 0, imm: 1 }],
        };
        let (prog, _) = spec.emit();
        let txt = disasm_program(&prog);
        assert!(txt.contains("halt") || txt.contains("ecall") || !txt.is_empty());
        assert_eq!(txt.lines().count(), prog.text.len() / 4);
    }
}
