//! Interrupt-delivery differential phase: random workloads preempted by
//! a re-arming CLINT timer, run through the real `xt-soc` device bus
//! with the decoded-block engine on and off.
//!
//! Asynchronous delivery is the hardest thing for the fast path to get
//! right: the poll must fire before *every* instruction, including in
//! the middle of a cached block, and `mtime` must advance exactly with
//! `instret`. Each generated [`IrqSpec`] — a random [`ProgSpec`]
//! workload under a random quantum, first-compare offset, and vectoring
//! mode — must retire the identical instruction stream and final state
//! both ways, and the two runs' device buses must agree (same `mtime`,
//! same interrupt count, no denied accesses). Failures shrink through
//! `xt-harness` (shorter workloads, direct vectoring, longer quanta)
//! and replay from the printed `XT_HARNESS_SEED`.

use crate::disasm_program;
use crate::progen::{ProgGen, ProgSpec, NSLOTS};
use xt_asm::{Asm, Program};
use xt_emu::Emulator;
use xt_harness::{Gen, Rng};
use xt_isa::csr;
use xt_isa::reg::Gpr;
use xt_soc::{attach_bus, bus_of};

/// Dynamic instruction budget per program.
const MAX_INSTS: u64 = 1_000_000;

/// One interrupt-delivery case: a generated workload preempted by a
/// timer handler that re-arms itself every `stride` ticks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IrqSpec {
    /// The preempted workload (registers per [`crate::progen::REG_MAP`]
    /// plus `s0`/`s1`; the handler owns `s3`-`s5`, boot/epilogue
    /// `t1`/`t2`).
    pub spec: ProgSpec,
    /// Re-arm stride in ticks (small strides walk the preemption point
    /// across every instruction of the workload's loops).
    pub stride: u16,
    /// First compare value (ticks after reset).
    pub cmp0: u16,
    /// Vectored (`mtvec` mode 1) or direct delivery.
    pub vectored: bool,
    /// End the program with an armed WFI instead of falling straight to
    /// the exit (exercises the wake-into-handler path).
    pub wfi_epilogue: bool,
}

impl IrqSpec {
    /// Assembles the case against the standard CLINT window.
    pub fn emit(&self) -> Program {
        use xt_emu::platform::{clint_map, CLINT_BASE};
        let mtime = CLINT_BASE + clint_map::MTIME;
        let mtimecmp = CLINT_BASE + clint_map::MTIMECMP_BASE;

        let mut a = Asm::new();
        let scratch = a.data_zeros("scratch", NSLOTS * 8);
        let boot = a.new_label();
        a.jump(boot);

        // handler: count in s3, re-arm `stride` ticks ahead, return.
        // In vectored mode this sits behind a 12-slot jump table; slot
        // 7 (MTI) is the only slot an interrupt may ever hit, and
        // synchronous traps cannot happen in generated workloads.
        let handler = a.new_label();
        let vec_base = a.pc();
        if self.vectored {
            for _ in 0..12 {
                a.jump(handler);
            }
        }
        // The handler may preempt the boot/epilogue mid-`la` (between
        // the lui and the addi), so it must not touch t1/t2 — it owns
        // s3 (count) and s4/s5 (scratch) exclusively.
        a.bind(handler).unwrap();
        a.addi(Gpr::S3, Gpr::S3, 1);
        a.la(Gpr::S4, mtime);
        a.ld(Gpr::S5, Gpr::S4, 0);
        a.addi(Gpr::S5, Gpr::S5, self.stride.max(1) as i64);
        a.la(Gpr::S4, mtimecmp);
        a.sd(Gpr::S5, Gpr::S4, 0);
        a.mret();

        a.bind(boot).unwrap();
        let mode = if self.vectored {
            csr::mtvec::MODE_VECTORED
        } else {
            0
        };
        a.li(Gpr::T1, (vec_base | mode) as i64);
        a.csrw(csr::MTVEC, Gpr::T1);
        a.li(Gpr::T1, 1 << csr::irq::MTI);
        a.csrw(csr::MIE, Gpr::T1);
        a.li(Gpr::T1, csr::mstatus::MIE as i64);
        a.csrs(csr::MSTATUS, Gpr::T1);
        a.la(Gpr::T1, mtimecmp);
        a.li(Gpr::T2, self.cmp0.max(1) as i64);
        a.sd(Gpr::T2, Gpr::T1, 0);

        a.la(Gpr::S0, scratch);
        self.spec.emit_ops(&mut a);
        if self.wfi_epilogue {
            // arm a short one-shot and wait for it
            a.la(Gpr::T1, mtime);
            a.ld(Gpr::T2, Gpr::T1, 0);
            a.addi(Gpr::T2, Gpr::T2, 50);
            a.la(Gpr::T1, mtimecmp);
            a.sd(Gpr::T2, Gpr::T1, 0);
            a.wfi();
        }
        a.mv(Gpr::A0, Gpr::S3);
        a.halt();
        a.finish().expect("generated irq spec assembles")
    }
}

/// Generator for [`IrqSpec`]s.
#[derive(Clone, Debug, Default)]
pub struct IrqGen {
    prog: ProgGen,
}

impl Gen for IrqGen {
    type Value = IrqSpec;

    fn generate(&self, rng: &mut Rng) -> IrqSpec {
        IrqSpec {
            spec: self.prog.generate(rng),
            stride: rng.gen_range(16, 200) as u16,
            cmp0: rng.gen_range(1, 50) as u16,
            vectored: rng.gen_bool(0.5),
            wfi_epilogue: rng.gen_bool(0.4),
        }
    }

    fn shrink(&self, value: &IrqSpec) -> Vec<IrqSpec> {
        let mut out = Vec::new();
        for cand in self.prog.shrink(&value.spec) {
            out.push(IrqSpec {
                spec: cand,
                ..value.clone()
            });
        }
        if value.vectored {
            out.push(IrqSpec {
                vectored: false,
                ..value.clone()
            });
        }
        if value.wfi_epilogue {
            out.push(IrqSpec {
                wfi_epilogue: false,
                ..value.clone()
            });
        }
        if value.stride < 600 {
            out.push(IrqSpec {
                stride: 600,
                ..value.clone()
            });
        }
        out
    }
}

fn run_one(prog: &Program, fastpath: bool) -> Result<Emulator, String> {
    let mut emu = Emulator::new();
    emu.set_fastpath(fastpath);
    emu.load(prog);
    attach_bus(&mut emu, 1);
    emu.run(MAX_INSTS)
        .map_err(|e| format!("emulator error (fastpath={fastpath}): {e:?}"))?;
    Ok(emu)
}

/// Runs `spec` with the block cache on and off and compares the final
/// architectural *and device* state. On divergence returns a replay
/// artifact with the differing fields and the disassembly.
pub fn check_interrupts(spec: &IrqSpec) -> Result<(), String> {
    let prog = spec.emit();
    let fast = run_one(&prog, true)?;
    let slow = run_one(&prog, false)?;

    let mut diffs = Vec::new();
    if fast.halted != slow.halted {
        diffs.push(format!(
            "  exit code (interrupt count): fast {:?} != slow {:?}",
            fast.halted, slow.halted
        ));
    }
    if fast.cpu.instret != slow.cpu.instret {
        diffs.push(format!(
            "  instret: fast {} != slow {}",
            fast.cpu.instret, slow.cpu.instret
        ));
    }
    for i in 0..32 {
        if fast.cpu.x[i] != slow.cpu.x[i] {
            diffs.push(format!(
                "  x{i}: fast {:#x} != slow {:#x}",
                fast.cpu.x[i], slow.cpu.x[i]
            ));
        }
    }
    if fast.cpu.csrs != slow.cpu.csrs {
        diffs.push("  CSR files differ".to_string());
    }
    if fast.mem.snapshot_nonzero() != slow.mem.snapshot_nonzero() {
        diffs.push("  guest memory differs".to_string());
    }
    let (fb, sb) = (bus_of(&fast).unwrap(), bus_of(&slow).unwrap());
    if fb.clint.mtime() != sb.clint.mtime() {
        diffs.push(format!(
            "  mtime: fast {} != slow {}",
            fb.clint.mtime(),
            sb.clint.mtime()
        ));
    }
    if !fb.denied.is_empty() || !sb.denied.is_empty() {
        diffs.push(format!(
            "  denied device accesses: fast {:?} slow {:?}",
            fb.denied, sb.denied
        ));
    }
    if diffs.is_empty() {
        return Ok(());
    }
    Err(format!(
        "interrupt delivery diverges between engines on {spec:?}:\n{}\nprogram:\n{}",
        diffs.join("\n"),
        disasm_program(&prog)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_harness::prop::{check_with, Config};

    #[test]
    fn standing_irq_suite_holds() {
        let cfg = Config::seeded_cases(crate::SUITE_SEED ^ 0x1297_0001, 24);
        check_with(&cfg, "standing_irq_suite_holds", &IrqGen::default(), |s| {
            if let Err(e) = check_interrupts(s) {
                panic!("{e}");
            }
        });
    }

    #[test]
    fn interrupts_actually_fire_in_generated_cases() {
        // the phase is vacuous if no generated case ever takes an
        // interrupt: over a fixed sample, most must
        let cfg = Config::seeded_cases(0x1297_0002, 16);
        let fired = std::cell::Cell::new(0u32);
        check_with(
            &cfg,
            "interrupts_actually_fire_in_generated_cases",
            &IrqGen::default(),
            |s| {
                let prog = s.emit();
                let emu = run_one(&prog, true).unwrap();
                if emu.halted.unwrap_or(0) > 0 {
                    fired.set(fired.get() + 1);
                }
            },
        );
        assert!(fired.get() >= 8, "only {} cases interrupted", fired.get());
    }
}
