//! Snapshot/resume identity under constrained random workloads.
//!
//! A [`SnapSpec`] is a generated workload (one program per core, as in
//! the [`cluster`](crate::cluster) phase) plus a *cut point* selector.
//! [`check_snapshot_identity`] runs the workload twice:
//!
//! 1. **Reference** — straight through, no snapshot.
//! 2. **Resumed** — run to the cut point, [`save`], [`restore`] the
//!    frame into a *fresh* instance built from the same program and
//!    configuration, and continue to the end there.
//!
//! and enforces the resume-identity laws that must hold for *any*
//! workload and cut point:
//!
//! 1. **Continuation identity** — the resumed run retires the same
//!    instructions and reports bit-identical perf counters, memory
//!    statistics, and exit codes as the reference.
//! 2. **Round-trip stability** — `save ∘ restore ∘ save` is
//!    byte-identical, so a snapshot can be re-saved losslessly.
//! 3. **Thread independence** (multi-core) — a frame saved from a
//!    1-thread stepping run resumes identically under 2 host threads,
//!    extending the cluster determinism law across the snapshot
//!    boundary.
//!
//! Single-core specs exercise the instruction-granular
//! [`OooSession`] path; multi-core specs exercise the epoch-granular
//! [`ClusterSim`] path. Failures shrink through `xt-harness` (fewer
//! cores, earlier cuts, shorter programs) and replay from a printed
//! seed.
//!
//! [`save`]: OooSession::save
//! [`restore`]: OooSession::restore

use crate::progen::{ProgGen, ProgSpec};
use xt_asm::Program;
use xt_core::{CoreConfig, OooSession};
use xt_harness::{Gen, Rng};
use xt_mem::MemConfig;
use xt_soc::ClusterSim;

/// Dynamic instruction budget per run.
const MAX_INSTS: u64 = 1_000_000;

/// Per-core placement stride (matches the cluster phase): 16 MiB apart
/// keeps every generated working set in a private region.
const TEXT_BASE: u64 = 0x8000_0000;
const DATA_BASE: u64 = 0x8800_0000;
const CORE_STRIDE: u64 = 0x0100_0000;

/// A generated snapshot scenario: a workload plus a cut-point selector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapSpec {
    /// One program spec per core (1, 2, or 4).
    pub cores: Vec<ProgSpec>,
    /// Epoch length in simulated cycles (multi-core only).
    pub epoch: u64,
    /// Raw cut-point selector; mapped onto the run length modulo the
    /// retired-instruction count (single-core) or a small epoch budget
    /// (multi-core), so every value is a valid mid-run cut.
    pub cut: u64,
}

impl SnapSpec {
    fn emit(&self) -> Vec<Program> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let (prog, _) = spec.emit_at(
                    TEXT_BASE + i as u64 * CORE_STRIDE,
                    DATA_BASE + i as u64 * CORE_STRIDE,
                );
                prog
            })
            .collect()
    }
}

/// Generator for [`SnapSpec`]s.
#[derive(Clone, Debug, Default)]
pub struct SnapGen {
    prog: ProgGen,
}

impl Gen for SnapGen {
    type Value = SnapSpec;

    fn generate(&self, rng: &mut Rng) -> SnapSpec {
        let n = *rng.choose(&[1usize, 1, 2, 4]);
        let cores = (0..n).map(|_| self.prog.generate(rng)).collect();
        let epoch = rng.gen_range_u64(1, 8193);
        let cut = rng.gen_range_u64(0, u64::MAX);
        SnapSpec { cores, epoch, cut }
    }

    fn shrink(&self, value: &SnapSpec) -> Vec<SnapSpec> {
        let mut out = Vec::new();
        // fewer cores first: the biggest simplification
        if value.cores.len() > 1 {
            let half = value.cores.len() / 2;
            out.push(SnapSpec {
                cores: value.cores[..half].to_vec(),
                ..value.clone()
            });
            out.push(SnapSpec {
                cores: value.cores[half..].to_vec(),
                ..value.clone()
            });
        }
        // earlier cuts and shorter epochs
        if value.cut > 0 {
            for c in [0, value.cut / 2] {
                out.push(SnapSpec {
                    cut: c,
                    ..value.clone()
                });
            }
        }
        if value.epoch > 1 {
            out.push(SnapSpec {
                epoch: value.epoch / 2,
                ..value.clone()
            });
        }
        // member-wise program shrinking
        for i in 0..value.cores.len() {
            for cand in self.prog.shrink(&value.cores[i]) {
                let mut cores = value.cores.clone();
                cores[i] = cand;
                out.push(SnapSpec {
                    cores,
                    ..value.clone()
                });
            }
        }
        out
    }
}

fn mem_cfg(cores: usize) -> MemConfig {
    MemConfig {
        cores,
        ..MemConfig::default()
    }
}

/// Single-core path: instruction-granular cut through [`OooSession`].
fn check_session(prog: &Program, cut: u64) -> Result<(), String> {
    let cfg = CoreConfig::xt910();
    let mut whole = OooSession::new_ooo(prog, &cfg, MAX_INSTS);
    let reference = whole.run_to_end();
    let retired = whole.retired().max(1);
    let point = cut % retired;

    let mut first = OooSession::new_ooo(prog, &cfg, MAX_INSTS);
    first.run_insts(point);
    let snap = first.save();

    let mut resumed = OooSession::new_ooo(prog, &cfg, MAX_INSTS);
    resumed
        .restore(&snap)
        .map_err(|e| format!("restore at inst {point}/{retired} failed: {e}"))?;

    // round-trip stability before continuing
    let resaved = resumed.save();
    if resaved != snap {
        return Err(format!(
            "save∘restore∘save not byte-identical at inst {point}/{retired}: \
             {} vs {} bytes",
            resaved.len(),
            snap.len()
        ));
    }

    let report = resumed.run_to_end();
    if report.perf != reference.perf {
        return Err(format!(
            "resumed perf counters diverge (cut at inst {point}/{retired}):\n\
             reference: {:?}\nresumed:   {:?}",
            reference.perf, report.perf
        ));
    }
    if report.mem != reference.mem {
        return Err(format!(
            "resumed memory stats diverge (cut at inst {point}/{retired})"
        ));
    }
    if report.exit_code != reference.exit_code {
        return Err(format!(
            "resumed exit code {:?} != reference {:?} (cut at inst {point})",
            report.exit_code, reference.exit_code
        ));
    }
    Ok(())
}

/// Multi-core path: epoch-granular cut through [`ClusterSim`].
fn check_cluster(progs: &[Program], epoch: u64, cut: u64) -> Result<(), String> {
    let cfg = CoreConfig::xt910();
    let build = || ClusterSim::new(progs, &cfg, mem_cfg(progs.len()), MAX_INSTS).with_epoch(epoch);

    let reference = build().run_threads(1);

    // Step a bounded number of epochs, then cut. A finished run is a
    // valid (end-state) cut too.
    let mut first = build();
    let budget = cut % 8 + 1;
    first.step_epochs(budget, 1);
    let at_epoch = first.epochs();
    let snap = first.save();

    let mut resumed = build();
    resumed
        .restore(&snap)
        .map_err(|e| format!("cluster restore at epoch {at_epoch} failed: {e}"))?;

    let resaved = resumed.save();
    if resaved != snap {
        return Err(format!(
            "cluster save∘restore∘save not byte-identical at epoch {at_epoch}: \
             {} vs {} bytes",
            resaved.len(),
            snap.len()
        ));
    }

    // Continue the resumed instance under 2 host threads: the thread
    // determinism law must extend across the snapshot boundary.
    while !resumed.step_epochs(1, 2) {}
    let report = resumed.into_report();

    if report.cores != reference.cores
        || report.mem != reference.mem
        || report.exit_codes != reference.exit_codes
    {
        return Err(format!(
            "resumed cluster run diverges from reference \
             (cut at epoch {at_epoch}, epoch length {epoch}, {} cores)",
            progs.len()
        ));
    }
    Ok(())
}

/// Checks the snapshot/resume identity laws for one generated spec.
/// The `Err` carries a human-readable description of the violated law.
pub fn check_snapshot_identity(spec: &SnapSpec) -> Result<(), String> {
    let progs = spec.emit();
    if progs.len() == 1 {
        check_session(&progs[0], spec.cut)
    } else {
        check_cluster(&progs, spec.epoch, spec.cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_harness::{check_with, Config};

    #[test]
    fn generated_snapshots_resume_identically() {
        let cfg = Config::seeded_cases(crate::SUITE_SEED ^ 0x5A4B_0B10, 16);
        check_with(&cfg, "snapshot_identity", &SnapGen::default(), |spec| {
            if let Err(e) = check_snapshot_identity(spec) {
                panic!("{e}");
            }
        });
    }

    #[test]
    fn shrinking_reduces_cores_and_cut() {
        let gen = SnapGen::default();
        let mut rng = Rng::new(11);
        // draw until we get a multi-core spec so core shrinking applies
        let spec = loop {
            let s = gen.generate(&mut rng);
            if s.cores.len() > 1 {
                break s;
            }
        };
        let shrunk = gen.shrink(&spec);
        assert!(!shrunk.is_empty());
        assert!(shrunk.iter().any(|s| s.cores.len() < spec.cores.len()));
        if spec.cut > 0 {
            assert!(shrunk.iter().any(|s| s.cut < spec.cut));
        }
    }
}
