//! Vector phase: auto-vectorizer differential + vector top-down
//! invariants on random kernels.
//!
//! Each generated [`VecSpec`] is a small elementwise/reduction kernel
//! over random 64-bit data, built once from the compiler IR and
//! compiled four ways — `rv64gc|rv64gcv × base|tuned`, with the vector
//! cells at the spec's LMUL. The checks:
//!
//! 1. **model vs. host** — every cell's emulator run must produce the
//!    host-computed expected value (the vectorizer may never change a
//!    kernel's result),
//! 2. **fast vs. slow** — the `rv64gcv` program must retire the same
//!    result with the decoded-block engine on and off (vector ops take
//!    the same architectural path through both engines),
//! 3. **coverage** — `rv64gcv` cells must actually contain `vsetvli`
//!    strip-mine loops and `rv64gc` cells must not (a silent vectorizer
//!    rejection would quietly turn this phase into scalar-only noise),
//! 4. **vector top-down invariants** — on the XT-910 OoO model the
//!    vectorized kernel's stall counters must conserve and the
//!    six-bucket top-down decomposition (including the `vector` bucket)
//!    must sum (signed) to total cycles, with the `vector` bucket equal
//!    to the `VecBusy` counter it is defined from.
//!
//! Failures shrink (fewer elements, LMUL→1, simpler kernel kind) and
//! replay from the printed `XT_HARNESS_SEED`.

use xt_compiler::{CompileOpts, FuncBuilder, MemWidth, Rval};
use xt_core::{run_ooo, CoreConfig, StallCause, NUM_STALL_CAUSES};
use xt_emu::Emulator;
use xt_harness::{Gen, Rng};
use xt_perf::TopDown;

/// Dynamic instruction budget per generated kernel.
const MAX_INSTS: u64 = 1_000_000;

/// Kernel shapes the generator draws from, ordered simplest-first so
/// shrinking walks toward `Sum`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VecKind {
    /// `acc += x[i]` — single-input reduction.
    Sum,
    /// `d[i] = x[i]` — pure copy.
    Copy,
    /// `d[i] = x[i] op y[i]` — elementwise binary op.
    Map,
    /// `d[i] = x[i] * s + y[i]` — scalar broadcast (`vmul.vx`).
    ScaleAdd,
    /// `acc += x[i] * y[i]` — multiply-accumulate reduction.
    Dot,
}

/// Elementwise operators for [`VecKind::Map`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// One generated vector kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VecSpec {
    /// Kernel shape.
    pub kind: VecKind,
    /// Operator when `kind == Map`.
    pub op: MapOp,
    /// Element count (odd values exercise the strip-mine tail).
    pub n: u16,
    /// LMUL for the vector cells (1, 2 or 4).
    pub lmul: u8,
    /// Data-generation seed.
    pub seed: u64,
    /// Broadcast scalar for `ScaleAdd`.
    pub scalar: u32,
}

impl VecSpec {
    fn data(&self) -> (Vec<u64>, Vec<u64>) {
        let mut rng = Rng::new(self.seed | 1);
        let n = self.n as usize;
        let x = (0..n).map(|_| rng.below(1 << 40)).collect();
        let y = (0..n).map(|_| rng.below(1 << 40)).collect();
        (x, y)
    }

    /// Host oracle: the value the guest must halt with.
    pub fn expected(&self) -> u64 {
        let (x, y) = self.data();
        let fold = |it: Box<dyn Iterator<Item = u64>>| {
            it.fold(0u64, |a, v| a.wrapping_add(v))
        };
        match self.kind {
            VecKind::Sum => fold(Box::new(x.into_iter())),
            VecKind::Copy => fold(Box::new(x.into_iter())),
            VecKind::Map => {
                let op = self.op;
                fold(Box::new(x.into_iter().zip(y).map(move |(a, b)| match op {
                    MapOp::Add => a.wrapping_add(b),
                    MapOp::Sub => a.wrapping_sub(b),
                    MapOp::Mul => a.wrapping_mul(b),
                    MapOp::And => a & b,
                    MapOp::Or => a | b,
                    MapOp::Xor => a ^ b,
                })))
            }
            VecKind::ScaleAdd => {
                let s = self.scalar as u64;
                fold(Box::new(
                    x.into_iter()
                        .zip(y)
                        .map(move |(a, b)| a.wrapping_mul(s).wrapping_add(b)),
                ))
            }
            VecKind::Dot => fold(Box::new(
                x.into_iter().zip(y).map(|(a, b)| a.wrapping_mul(b)),
            )),
        }
    }

    /// Builds the kernel as compiler IR: the compute loop (and, for
    /// non-reduction kinds, a summing checksum loop over the output).
    pub fn build(&self) -> FuncBuilder {
        let (x, y) = self.data();
        let n = self.n as i64;
        let mut f = FuncBuilder::new("veccheck");
        let xs = f.symbol_u64("x", &x);
        let ys = f.symbol_u64("y", &y);
        let ds = f.symbol_zeros("d", (self.n as usize) * 8);
        let bx = f.addr_of(&xs);
        let by = f.addr_of(&ys);
        let bd = f.addr_of(&ds);
        let scal = f.vreg();
        f.li(scal, self.scalar as i64);

        let open = |f: &mut FuncBuilder, i| {
            let head = f.new_block();
            let body = f.new_block();
            let exit = f.new_block();
            f.li(i, 0);
            f.jmp(head);
            f.switch_to(head);
            f.br_lt(Rval::Reg(i), Rval::Imm(n), body, exit);
            f.switch_to(body);
            (head, exit)
        };
        let close = |f: &mut FuncBuilder, i, head, exit| {
            f.add(i, Rval::Reg(i), Rval::Imm(1));
            f.jmp(head);
            f.switch_to(exit);
        };

        let acc = f.vreg();
        f.li(acc, 0);
        let reduced = matches!(self.kind, VecKind::Sum | VecKind::Dot);
        let i = f.vreg();
        let (head, exit) = open(&mut f, i);
        match self.kind {
            VecKind::Sum => {
                let v = f.load_indexed_u64(bx, i);
                f.add(acc, Rval::Reg(acc), Rval::Reg(v));
            }
            VecKind::Copy => {
                let v = f.load_indexed_u64(bx, i);
                f.store_indexed(Rval::Reg(v), bd, i, MemWidth::B8);
            }
            VecKind::Map => {
                let a = f.load_indexed_u64(bx, i);
                let b = f.load_indexed_u64(by, i);
                let r = f.vreg();
                match self.op {
                    MapOp::Add => f.add(r, Rval::Reg(a), Rval::Reg(b)),
                    MapOp::Sub => f.sub(r, Rval::Reg(a), Rval::Reg(b)),
                    MapOp::Mul => f.mul(r, Rval::Reg(a), Rval::Reg(b)),
                    MapOp::And => f.and(r, Rval::Reg(a), Rval::Reg(b)),
                    MapOp::Or => f.or(r, Rval::Reg(a), Rval::Reg(b)),
                    MapOp::Xor => f.xor(r, Rval::Reg(a), Rval::Reg(b)),
                }
                f.store_indexed(Rval::Reg(r), bd, i, MemWidth::B8);
            }
            VecKind::ScaleAdd => {
                let a = f.load_indexed_u64(bx, i);
                let b = f.load_indexed_u64(by, i);
                let t = f.vreg();
                f.mul(t, Rval::Reg(a), Rval::Reg(scal));
                let r = f.vreg();
                f.add(r, Rval::Reg(t), Rval::Reg(b));
                f.store_indexed(Rval::Reg(r), bd, i, MemWidth::B8);
            }
            VecKind::Dot => {
                let a = f.load_indexed_u64(bx, i);
                let b = f.load_indexed_u64(by, i);
                f.mul_acc(acc, a, b);
            }
        }
        close(&mut f, i, head, exit);

        if !reduced {
            let j = f.vreg();
            let (head, exit) = open(&mut f, j);
            let v = f.load_indexed_u64(bd, j);
            f.add(acc, Rval::Reg(acc), Rval::Reg(v));
            close(&mut f, j, head, exit);
        }
        f.halt(Rval::Reg(acc));
        f
    }

    /// The four compile cells this spec sweeps.
    pub fn cells(&self) -> [(CompileOpts, &'static str); 4] {
        let vec = |tuned: bool| CompileOpts {
            vector: true,
            vector_lmul: self.lmul,
            ..CompileOpts::ablation(false, tuned)
        };
        [
            (CompileOpts::native(), "rv64gc/base"),
            (CompileOpts::optimized(), "rv64gc/tuned"),
            (vec(false), "rv64gcv/base"),
            (vec(true), "rv64gcv/tuned"),
        ]
    }
}

fn run_emu(prog: &xt_asm::Program, fastpath: bool) -> Result<u64, String> {
    let mut emu = Emulator::new();
    emu.set_fastpath(fastpath);
    emu.load(prog);
    emu.run(MAX_INSTS)
        .map_err(|e| format!("emulator error: {e:?}"))
}

/// Runs all checks for one spec; `Err` carries the replay artifact.
pub fn check_vector(spec: &VecSpec) -> Result<(), String> {
    let want = spec.expected();
    let f = spec.build();
    let mut vec_prog = None;
    for (opts, cell) in spec.cells() {
        let prog = f
            .compile(&opts)
            .map_err(|e| format!("{cell}: compile failed: {e:?}"))?;
        let dis = prog.disassemble();
        if dis.contains("vsetvli") != opts.vector {
            return Err(format!(
                "{cell}: vectorizer coverage mismatch for {spec:?} \
                 (vsetvli present = {}, expected {})\n{dis}",
                dis.contains("vsetvli"),
                opts.vector
            ));
        }
        for fastpath in [false, true] {
            let got = run_emu(&prog, fastpath)?;
            if got != want {
                return Err(format!(
                    "{cell} (fastpath={fastpath}): wrong result for {spec:?}: \
                     got {got:#x}, want {want:#x}\n{dis}"
                ));
            }
        }
        if opts.vector && opts.optimize {
            vec_prog = Some(prog);
        }
    }

    // vector top-down invariants on the tuned rv64gcv cell
    let prog = vec_prog.expect("cells() always contains rv64gcv/tuned");
    let r = run_ooo(&prog, &CoreConfig::xt910(), MAX_INSTS);
    if r.exit_code != Some(want) {
        return Err(format!(
            "OoO model: wrong result for {spec:?}: got {:?}, want {want:#x}",
            r.exit_code
        ));
    }
    if !r.perf.stalls_conserved() {
        return Err(format!(
            "stall conservation violated on {spec:?}: attributed {} > cycles {}",
            r.perf.attributed_stall_cycles(),
            r.perf.cycles
        ));
    }
    let mut stalls = [0u64; NUM_STALL_CAUSES];
    for c in StallCause::ALL {
        stalls[c as usize] = r.perf.stall(c);
    }
    let td = TopDown::from_stalls(r.perf.cycles, &stalls);
    if !td.sums_to(r.perf.cycles) {
        return Err(format!(
            "top-down buckets do not sum to cycles on {spec:?}: {td:?} vs {}",
            r.perf.cycles
        ));
    }
    if td.vector != r.perf.stall(StallCause::VecBusy) {
        return Err(format!(
            "vector bucket {} != VecBusy counter {} on {spec:?}",
            td.vector,
            r.perf.stall(StallCause::VecBusy)
        ));
    }
    Ok(())
}

/// Generator for [`VecSpec`]s.
#[derive(Clone, Debug, Default)]
pub struct VecGen;

impl Gen for VecGen {
    type Value = VecSpec;

    fn generate(&self, rng: &mut Rng) -> VecSpec {
        let kind = match rng.below(5) {
            0 => VecKind::Sum,
            1 => VecKind::Copy,
            2 => VecKind::Map,
            3 => VecKind::ScaleAdd,
            _ => VecKind::Dot,
        };
        let op = match rng.below(6) {
            0 => MapOp::Add,
            1 => MapOp::Sub,
            2 => MapOp::Mul,
            3 => MapOp::And,
            4 => MapOp::Or,
            _ => MapOp::Xor,
        };
        VecSpec {
            kind,
            op,
            n: rng.gen_range_u64(1, 97) as u16,
            lmul: 1 << rng.below(3),
            seed: rng.next_u64(),
            scalar: rng.next_u32(),
        }
    }

    fn shrink(&self, v: &VecSpec) -> Vec<VecSpec> {
        let mut out = Vec::new();
        if v.n > 1 {
            out.push(VecSpec { n: 1, ..v.clone() });
            out.push(VecSpec { n: v.n / 2, ..v.clone() });
        }
        if v.lmul > 1 {
            out.push(VecSpec { lmul: 1, ..v.clone() });
        }
        if v.kind != VecKind::Sum {
            out.push(VecSpec {
                kind: VecKind::Sum,
                ..v.clone()
            });
        }
        if v.kind == VecKind::Map && v.op != MapOp::Add {
            out.push(VecSpec {
                op: MapOp::Add,
                ..v.clone()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handwritten_specs_pass() {
        for kind in [
            VecKind::Sum,
            VecKind::Copy,
            VecKind::Map,
            VecKind::ScaleAdd,
            VecKind::Dot,
        ] {
            let spec = VecSpec {
                kind,
                op: MapOp::Xor,
                n: 21, // odd: exercises the tail chunk
                lmul: 4,
                seed: 0x5eed,
                scalar: 0x9e37_79b9,
            };
            check_vector(&spec).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn single_element_and_lmul1_edge_cases_pass() {
        for (n, lmul) in [(1u16, 1u8), (1, 4), (8, 1), (9, 2)] {
            let spec = VecSpec {
                kind: VecKind::Dot,
                op: MapOp::Add,
                n,
                lmul,
                seed: 7,
                scalar: 3,
            };
            check_vector(&spec).unwrap_or_else(|e| panic!("n={n} lmul={lmul}: {e}"));
        }
    }

    #[test]
    fn fixed_suite_passes() {
        use xt_harness::prop::{check_with, Config};
        let cfg = Config::seeded_cases(crate::SUITE_SEED ^ 0x7EC7_0B10, 12);
        check_with(&cfg, "vector_unit_suite", &VecGen, |spec| {
            if let Err(e) = check_vector(spec) {
                panic!("{e}");
            }
        });
    }
}
