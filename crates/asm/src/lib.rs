//! # xt-asm — assembler / program builder
//!
//! Benchmarks and tests in this workspace construct guest programs
//! programmatically rather than via an external toolchain. [`Asm`] is a
//! builder over [`xt_isa`]'s encoder: it manages a text section with labels
//! and forward references, a data section with named symbols, and the
//! pseudo-instructions (`li`, `la`, `call`, `ret`, ...) a real assembler
//! provides. [`Program`] is the finished, loadable image.
//!
//! # Example
//!
//! ```
//! use xt_asm::Asm;
//! use xt_isa::reg::Gpr;
//!
//! # fn main() -> Result<(), xt_asm::AsmError> {
//! let mut a = Asm::new();
//! let done = a.new_label();
//! a.li(Gpr::A0, 10);
//! a.li(Gpr::A1, 0);
//! let top = a.here();
//! a.add(Gpr::A1, Gpr::A1, Gpr::A0);
//! a.addi(Gpr::A0, Gpr::A0, -1);
//! a.beqz(Gpr::A0, done);
//! a.jump(top);
//! a.bind(done)?;
//! a.halt();
//! let prog = a.finish()?;
//! assert!(prog.text_len() > 0);
//! # Ok(())
//! # }
//! ```

mod builder;
mod program;

pub use builder::{Asm, AsmError, Label};
pub use program::{Program, Symbol, DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, HALT_ADDR};
