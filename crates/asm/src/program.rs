//! The finished, loadable program image produced by [`crate::Asm`].

use std::collections::HashMap;

/// Default base address of the text section.
pub const DEFAULT_TEXT_BASE: u64 = 0x8000_0000;
/// Default base address of the data section.
pub const DEFAULT_DATA_BASE: u64 = 0x8100_0000;
/// Magic MMIO address: a store to this address terminates simulation
/// ("tohost" convention); the stored value is the exit code.
pub const HALT_ADDR: u64 = 0x4000_0000;

/// A named address in the data (or text) section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Absolute address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

/// A fully assembled guest program: text and data images plus symbols.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Base virtual address of the text section.
    pub text_base: u64,
    /// Raw text bytes (little-endian instruction stream).
    pub text: Vec<u8>,
    /// Base virtual address of the data section.
    pub data_base: u64,
    /// Raw data bytes.
    pub data: Vec<u8>,
    /// Named data symbols.
    pub symbols: HashMap<String, Symbol>,
    /// Entry point (defaults to `text_base`).
    pub entry: u64,
}

impl Program {
    /// Length of the text section in bytes.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Looks up a symbol's address.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not exist (programming error in a
    /// workload definition).
    pub fn symbol(&self, name: &str) -> u64 {
        self.symbols
            .get(name)
            .unwrap_or_else(|| panic!("unknown symbol {name:?}"))
            .addr
    }

    /// Iterates over `(address, raw_bytes)` chunks to load into guest
    /// memory: first the text image, then the data image.
    pub fn load_chunks(&self) -> impl Iterator<Item = (u64, &[u8])> {
        [
            (self.text_base, self.text.as_slice()),
            (self.data_base, self.data.as_slice()),
        ]
        .into_iter()
        .filter(|(_, bytes)| !bytes.is_empty())
    }

    /// Disassembles the text section, one line per instruction, for
    /// debugging workload definitions.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let mut pc = 0usize;
        while pc + 2 <= self.text.len() {
            let lo = u16::from_le_bytes([self.text[pc], self.text[pc + 1]]);
            if lo & 3 == 3 {
                if pc + 4 > self.text.len() {
                    break;
                }
                let w = u32::from_le_bytes([
                    self.text[pc],
                    self.text[pc + 1],
                    self.text[pc + 2],
                    self.text[pc + 3],
                ]);
                match xt_isa::decode(w) {
                    Ok(i) => out.push_str(&format!(
                        "{:#010x}: {}\n",
                        self.text_base + pc as u64,
                        i
                    )),
                    Err(_) => out.push_str(&format!(
                        "{:#010x}: .word {:#010x}\n",
                        self.text_base + pc as u64,
                        w
                    )),
                }
                pc += 4;
            } else {
                match xt_isa::decode_compressed(lo) {
                    Ok(i) => out.push_str(&format!(
                        "{:#010x}: {}  # c\n",
                        self.text_base + pc as u64,
                        i
                    )),
                    Err(_) => out.push_str(&format!(
                        "{:#010x}: .half {:#06x}\n",
                        self.text_base + pc as u64,
                        lo
                    )),
                }
                pc += 2;
            }
        }
        out
    }
}
