//! The [`Asm`] program builder.

use crate::program::{Program, Symbol, DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, HALT_ADDR};
use std::collections::HashMap;
use xt_isa::encode::{encode, encode_compressed, EncodeError};
use xt_isa::reg::{Fpr, Gpr, Vr};
use xt_isa::vector::{vtypei, Sew};
use xt_isa::{Inst, Op};

/// A label: a position in the text section, possibly not yet bound.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error raised while building a program.
#[derive(Debug)]
pub enum AsmError {
    /// An instruction's operands did not fit its encoding.
    Encode(EncodeError),
    /// A label was bound twice.
    Rebound(Label),
    /// `finish` found a label that was referenced but never bound.
    Unbound(Label),
    /// A branch target ended up out of encodable range.
    OutOfRange {
        /// Instruction offset of the branch.
        at: usize,
        /// Byte distance that did not fit.
        distance: i64,
    },
    /// A symbol name was defined twice in the data section.
    DuplicateSymbol(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
            AsmError::Rebound(l) => write!(f, "label {l:?} bound twice"),
            AsmError::Unbound(l) => write!(f, "label {l:?} referenced but never bound"),
            AsmError::OutOfRange { at, distance } => {
                write!(f, "branch at text+{at:#x} target out of range ({distance})")
            }
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate data symbol {s:?}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

#[derive(Clone, Copy, Debug)]
struct Fixup {
    at: usize,
    label: Label,
}

/// Incremental program builder. See the [crate-level docs](crate) for an
/// example.
#[derive(Debug)]
pub struct Asm {
    text: Vec<u8>,
    data: Vec<u8>,
    text_base: u64,
    data_base: u64,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
    symbols: HashMap<String, Symbol>,
    compress: bool,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Creates a builder with the default section bases.
    pub fn new() -> Self {
        Asm {
            text: Vec::new(),
            data: Vec::new(),
            text_base: DEFAULT_TEXT_BASE,
            data_base: DEFAULT_DATA_BASE,
            labels: Vec::new(),
            fixups: Vec::new(),
            symbols: HashMap::new(),
            compress: false,
        }
    }

    /// Enables opportunistic RVC compression of eligible instructions.
    pub fn with_compression(mut self) -> Self {
        self.compress = true;
        self
    }

    /// Overrides the data-section base address.
    pub fn with_data_base(mut self, base: u64) -> Self {
        self.data_base = base;
        self
    }

    /// Overrides the text-section base address (e.g., per-core disjoint
    /// images in a cluster).
    pub fn with_text_base(mut self, base: u64) -> Self {
        self.text_base = base;
        self
    }

    /// Current text offset in bytes.
    pub fn offset(&self) -> usize {
        self.text.len()
    }

    /// Current absolute PC.
    pub fn pc(&self) -> u64 {
        self.text_base + self.text.len() as u64
    }

    // ---- labels ----

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::Rebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::Rebound(label));
        }
        *slot = Some(self.text.len());
        Ok(())
    }

    /// Allocates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        self.labels.push(Some(self.text.len()));
        Label(self.labels.len() - 1)
    }

    // ---- raw emission ----

    /// Emits a raw instruction; applies compression when enabled.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        if self.compress {
            if let Some(h) = encode_compressed(&inst) {
                self.text.extend_from_slice(&h.to_le_bytes());
                return self;
            }
        }
        let w = encode(&inst).unwrap_or_else(|e| panic!("asm emit: {e}"));
        self.text.extend_from_slice(&w.to_le_bytes());
        self
    }

    fn push_fixed(&mut self, inst: Inst, label: Label) -> &mut Self {
        let at = self.text.len();
        // Emit with a zero immediate; finish() patches it. Never compressed
        // so the layout stays stable.
        let w = encode(&inst).unwrap_or_else(|e| panic!("asm emit: {e}"));
        self.text.extend_from_slice(&w.to_le_bytes());
        self.fixups.push(Fixup { at, label });
        self
    }

    // ---- integer register-register ----

    fn rrr(&mut self, op: Op, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.push(Inst::new(op).rd(rd.index()).rs1(rs1.index()).rs2(rs2.index()))
    }

    fn rri(&mut self, op: Op, rd: Gpr, rs1: Gpr, imm: i64) -> &mut Self {
        self.push(Inst::new(op).rd(rd.index()).rs1(rs1.index()).imm(imm))
    }
}

macro_rules! rrr_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
                    self.rrr(Op::$op, rd, rs1, rs2)
                }
            )+
        }
    };
}

macro_rules! rri_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Gpr, rs1: Gpr, imm: i64) -> &mut Self {
                    self.rri(Op::$op, rd, rs1, imm)
                }
            )+
        }
    };
}

rrr_helpers! {
    /// `add rd, rs1, rs2`
    add => Add,
    /// `sub rd, rs1, rs2`
    sub => Sub,
    /// `addw rd, rs1, rs2`
    addw => Addw,
    /// `subw rd, rs1, rs2`
    subw => Subw,
    /// `and rd, rs1, rs2`
    and_ => And,
    /// `or rd, rs1, rs2`
    or_ => Or,
    /// `xor rd, rs1, rs2`
    xor_ => Xor,
    /// `sll rd, rs1, rs2`
    sll => Sll,
    /// `srl rd, rs1, rs2`
    srl => Srl,
    /// `sra rd, rs1, rs2`
    sra => Sra,
    /// `sllw rd, rs1, rs2`
    sllw => Sllw,
    /// `srlw rd, rs1, rs2`
    srlw => Srlw,
    /// `sraw rd, rs1, rs2`
    sraw => Sraw,
    /// `slt rd, rs1, rs2`
    slt => Slt,
    /// `sltu rd, rs1, rs2`
    sltu => Sltu,
    /// `mul rd, rs1, rs2`
    mul => Mul,
    /// `mulh rd, rs1, rs2`
    mulh => Mulh,
    /// `mulhu rd, rs1, rs2`
    mulhu => Mulhu,
    /// `mulw rd, rs1, rs2`
    mulw => Mulw,
    /// `div rd, rs1, rs2`
    div => Div,
    /// `divu rd, rs1, rs2`
    divu => Divu,
    /// `rem rd, rs1, rs2`
    rem => Rem,
    /// `remu rd, rs1, rs2`
    remu => Remu,
    /// `divw rd, rs1, rs2`
    divw => Divw,
    /// `remw rd, rs1, rs2`
    remw => Remw,
    /// `divuw rd, rs1, rs2`
    divuw => Divuw,
    /// `remuw rd, rs1, rs2`
    remuw => Remuw,
    /// `x.adduw rd, rs1, rs2` — add with zero-extended 32-bit rs2 (custom).
    xadduw => XAdduw,
}

rri_helpers! {
    /// `addi rd, rs1, imm`
    addi => Addi,
    /// `addiw rd, rs1, imm`
    addiw => Addiw,
    /// `andi rd, rs1, imm`
    andi => Andi,
    /// `ori rd, rs1, imm`
    ori => Ori,
    /// `xori rd, rs1, imm`
    xori => Xori,
    /// `slti rd, rs1, imm`
    slti => Slti,
    /// `sltiu rd, rs1, imm`
    sltiu => Sltiu,
    /// `slli rd, rs1, shamt`
    slli => Slli,
    /// `srli rd, rs1, shamt`
    srli => Srli,
    /// `srai rd, rs1, shamt`
    srai => Srai,
    /// `slliw rd, rs1, shamt`
    slliw => Slliw,
    /// `srliw rd, rs1, shamt`
    srliw => Srliw,
    /// `sraiw rd, rs1, shamt`
    sraiw => Sraiw,
    /// `x.srri rd, rs1, shamt` — rotate right (custom).
    xsrri => XSrri,
    /// `x.tst rd, rs1, bit` — test bit (custom).
    xtst => XTst,
}

macro_rules! load_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Gpr, base: Gpr, off: i64) -> &mut Self {
                    self.push(Inst::new(Op::$op).rd(rd.index()).rs1(base.index()).imm(off))
                }
            )+
        }
    };
}

macro_rules! store_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, src: Gpr, base: Gpr, off: i64) -> &mut Self {
                    self.push(Inst::new(Op::$op).rs1(base.index()).rs2(src.index()).imm(off))
                }
            )+
        }
    };
}

load_helpers! {
    /// `lb rd, off(base)`
    lb => Lb,
    /// `lbu rd, off(base)`
    lbu => Lbu,
    /// `lh rd, off(base)`
    lh => Lh,
    /// `lhu rd, off(base)`
    lhu => Lhu,
    /// `lw rd, off(base)`
    lw => Lw,
    /// `lwu rd, off(base)`
    lwu => Lwu,
    /// `ld rd, off(base)`
    ld => Ld,
}

store_helpers! {
    /// `sb src, off(base)`
    sb => Sb,
    /// `sh src, off(base)`
    sh => Sh,
    /// `sw src, off(base)`
    sw => Sw,
    /// `sd src, off(base)`
    sd => Sd,
}

impl Asm {
    // ---- FP ----

    /// `fld fd, off(base)`
    pub fn fld(&mut self, fd: Fpr, base: Gpr, off: i64) -> &mut Self {
        self.push(Inst::new(Op::Fld).rd(fd.index()).rs1(base.index()).imm(off))
    }

    /// `flw fd, off(base)`
    pub fn flw(&mut self, fd: Fpr, base: Gpr, off: i64) -> &mut Self {
        self.push(Inst::new(Op::Flw).rd(fd.index()).rs1(base.index()).imm(off))
    }

    /// `fsd fs, off(base)`
    pub fn fsd(&mut self, fs: Fpr, base: Gpr, off: i64) -> &mut Self {
        self.push(Inst::new(Op::Fsd).rs1(base.index()).rs2(fs.index()).imm(off))
    }

    /// `fsw fs, off(base)`
    pub fn fsw(&mut self, fs: Fpr, base: Gpr, off: i64) -> &mut Self {
        self.push(Inst::new(Op::Fsw).rs1(base.index()).rs2(fs.index()).imm(off))
    }

    fn frrr(&mut self, op: Op, rd: Fpr, rs1: Fpr, rs2: Fpr) -> &mut Self {
        self.push(Inst::new(op).rd(rd.index()).rs1(rs1.index()).rs2(rs2.index()))
    }

    /// `fadd.d fd, fs1, fs2`
    pub fn fadd_d(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FaddD, fd, a, b)
    }

    /// `fsub.d fd, fs1, fs2`
    pub fn fsub_d(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FsubD, fd, a, b)
    }

    /// `fmul.d fd, fs1, fs2`
    pub fn fmul_d(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FmulD, fd, a, b)
    }

    /// `fdiv.d fd, fs1, fs2`
    pub fn fdiv_d(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FdivD, fd, a, b)
    }

    /// `fmadd.d fd, a, b, c` — `fd = a*b + c`
    pub fn fmadd_d(&mut self, fd: Fpr, a: Fpr, b: Fpr, c: Fpr) -> &mut Self {
        self.push(
            Inst::new(Op::FmaddD)
                .rd(fd.index())
                .rs1(a.index())
                .rs2(b.index())
                .rs3(c.index()),
        )
    }

    /// `fsqrt.d fd, fs`
    pub fn fsqrt_d(&mut self, fd: Fpr, a: Fpr) -> &mut Self {
        self.push(Inst::new(Op::FsqrtD).rd(fd.index()).rs1(a.index()))
    }

    /// `fadd.s fd, fs1, fs2`
    pub fn fadd_s(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FaddS, fd, a, b)
    }

    /// `fmul.s fd, fs1, fs2`
    pub fn fmul_s(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FmulS, fd, a, b)
    }

    /// `fmadd.s fd, a, b, c`
    pub fn fmadd_s(&mut self, fd: Fpr, a: Fpr, b: Fpr, c: Fpr) -> &mut Self {
        self.push(
            Inst::new(Op::FmaddS)
                .rd(fd.index())
                .rs1(a.index())
                .rs2(b.index())
                .rs3(c.index()),
        )
    }

    /// `flt.d rd, fs1, fs2`
    pub fn flt_d(&mut self, rd: Gpr, a: Fpr, b: Fpr) -> &mut Self {
        self.push(Inst::new(Op::FltD).rd(rd.index()).rs1(a.index()).rs2(b.index()))
    }

    /// `fle.d rd, fs1, fs2`
    pub fn fle_d(&mut self, rd: Gpr, a: Fpr, b: Fpr) -> &mut Self {
        self.push(Inst::new(Op::FleD).rd(rd.index()).rs1(a.index()).rs2(b.index()))
    }

    /// `fmv.d fd, fs` (via sign-injection)
    pub fn fmv_d(&mut self, fd: Fpr, fs: Fpr) -> &mut Self {
        self.frrr(Op::FsgnjD, fd, fs, fs)
    }

    /// `fcvt.d.l fd, rs` — signed 64-bit int to double.
    pub fn fcvt_d_l(&mut self, fd: Fpr, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::FcvtDL).rd(fd.index()).rs1(rs.index()))
    }

    /// `fcvt.l.d rd, fs` — double to signed 64-bit int (toward zero).
    pub fn fcvt_l_d(&mut self, rd: Gpr, fs: Fpr) -> &mut Self {
        self.push(Inst::new(Op::FcvtLD).rd(rd.index()).rs1(fs.index()))
    }

    /// `fmin.s fd, fs1, fs2`
    pub fn fmin_s(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FminS, fd, a, b)
    }

    /// `fmax.s fd, fs1, fs2`
    pub fn fmax_s(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FmaxS, fd, a, b)
    }

    /// `fmin.d fd, fs1, fs2`
    pub fn fmin_d(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FminD, fd, a, b)
    }

    /// `fmax.d fd, fs1, fs2`
    pub fn fmax_d(&mut self, fd: Fpr, a: Fpr, b: Fpr) -> &mut Self {
        self.frrr(Op::FmaxD, fd, a, b)
    }

    /// `fmv.w.x fd, rs` — move low 32 raw bits (NaN-boxed).
    pub fn fmv_w_x(&mut self, fd: Fpr, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::FmvWX).rd(fd.index()).rs1(rs.index()))
    }

    /// `fmv.x.w rd, fs` — move low 32 raw bits (sign-extended).
    pub fn fmv_x_w(&mut self, rd: Gpr, fs: Fpr) -> &mut Self {
        self.push(Inst::new(Op::FmvXW).rd(rd.index()).rs1(fs.index()))
    }

    /// `fmv.d.x fd, rs` — move raw bits.
    pub fn fmv_d_x(&mut self, fd: Fpr, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::FmvDX).rd(fd.index()).rs1(rs.index()))
    }

    /// `fmv.x.d rd, fs` — move raw bits.
    pub fn fmv_x_d(&mut self, rd: Gpr, fs: Fpr) -> &mut Self {
        self.push(Inst::new(Op::FmvXD).rd(rd.index()).rs1(fs.index()))
    }

    // ---- control flow ----

    fn branch(&mut self, op: Op, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.push_fixed(Inst::new(op).rs1(rs1.index()).rs2(rs2.index()), target)
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Beq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, target`
    pub fn blt(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Blt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target`
    pub fn bge(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bge, rs1, rs2, target)
    }

    /// `bltu rs1, rs2, target`
    pub fn bltu(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bltu, rs1, rs2, target)
    }

    /// `bgeu rs1, rs2, target`
    pub fn bgeu(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bgeu, rs1, rs2, target)
    }

    /// `beqz rs, target`
    pub fn beqz(&mut self, rs: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Beq, rs, Gpr::ZERO, target)
    }

    /// `bnez rs, target`
    pub fn bnez(&mut self, rs: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bne, rs, Gpr::ZERO, target)
    }

    /// `bltz rs, target`
    pub fn bltz(&mut self, rs: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Blt, rs, Gpr::ZERO, target)
    }

    /// `bgez rs, target`
    pub fn bgez(&mut self, rs: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bge, rs, Gpr::ZERO, target)
    }

    /// `bgtz rs, target`
    pub fn bgtz(&mut self, rs: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Blt, Gpr::ZERO, rs, target)
    }

    /// `blez rs, target`
    pub fn blez(&mut self, rs: Gpr, target: Label) -> &mut Self {
        self.branch(Op::Bge, Gpr::ZERO, rs, target)
    }

    /// Unconditional `j target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.push_fixed(Inst::new(Op::Jal).rd(0), target)
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: Gpr, target: Label) -> &mut Self {
        self.push_fixed(Inst::new(Op::Jal).rd(rd.index()), target)
    }

    /// `call target` — `jal ra, target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(Gpr::RA, target)
    }

    /// `jalr rd, off(rs)`
    pub fn jalr(&mut self, rd: Gpr, rs: Gpr, off: i64) -> &mut Self {
        self.push(Inst::new(Op::Jalr).rd(rd.index()).rs1(rs.index()).imm(off))
    }

    /// `ret` — `jalr zero, 0(ra)`.
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Gpr::ZERO, Gpr::RA, 0)
    }

    // ---- pseudo-instructions ----

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Gpr::ZERO, Gpr::ZERO, 0)
    }

    /// `mv rd, rs`
    pub fn mv(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// `not rd, rs`
    pub fn not_(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.xori(rd, rs, -1)
    }

    /// `neg rd, rs`
    pub fn neg(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.sub(rd, Gpr::ZERO, rs)
    }

    /// `seqz rd, rs`
    pub fn seqz(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.sltiu(rd, rs, 1)
    }

    /// `snez rd, rs`
    pub fn snez(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.sltu(rd, Gpr::ZERO, rs)
    }

    /// Zero-extends the low 32 bits: `slli`+`srli` (base ISA), cf. `x.zextw`.
    pub fn zext_w(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.slli(rd, rs, 32);
        self.srli(rd, rd, 32)
    }

    /// Sign-extends the low 32 bits via `addiw rd, rs, 0`.
    pub fn sext_w(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.addiw(rd, rs, 0)
    }

    /// Loads an arbitrary 64-bit constant using the standard
    /// `lui`/`addiw`/`slli`/`addi` materialization sequence.
    pub fn li(&mut self, rd: Gpr, value: i64) -> &mut Self {
        if (-2048..=2047).contains(&value) {
            return self.addi(rd, Gpr::ZERO, value);
        }
        if value >= i32::MIN as i64 && value <= i32::MAX as i64 {
            let low = ((value << 52) >> 52) as i32 as i64; // sext12
            let high = value.wrapping_sub(low) & 0xffff_f000;
            // `high` as a sign-extended 32-bit lui value.
            let high = (high as i32) as i64;
            self.push(Inst::new(Op::Lui).rd(rd.index()).imm(high));
            if low != 0 {
                self.addiw(rd, rd, low);
            }
            return self;
        }
        // 64-bit: materialize the upper part, shift, add the low 12.
        let low = (value << 52) >> 52;
        let high = value.wrapping_sub(low) >> 12;
        self.li(rd, high);
        self.slli(rd, rd, 12);
        if low != 0 {
            self.addi(rd, rd, low);
        }
        self
    }

    /// Loads an absolute address (e.g., a data symbol) into `rd`.
    pub fn la(&mut self, rd: Gpr, addr: u64) -> &mut Self {
        self.li(rd, addr as i64)
    }

    /// Terminates simulation: stores `a0` (the exit code) to the magic
    /// [`HALT_ADDR`], then self-loops as a safety net. Clobbers `t6`.
    pub fn halt(&mut self) -> &mut Self {
        self.li(Gpr::T6, HALT_ADDR as i64);
        self.sd(Gpr::A0, Gpr::T6, 0);
        let here = self.here();
        self.jump(here)
    }

    // ---- CSR ----

    /// `csrr rd, csr`
    pub fn csrr(&mut self, rd: Gpr, csr: u16) -> &mut Self {
        self.push(Inst::new(Op::Csrrs).rd(rd.index()).rs1(0).imm(csr as i64))
    }

    /// `csrw csr, rs`
    pub fn csrw(&mut self, csr: u16, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::Csrrw).rd(0).rs1(rs.index()).imm(csr as i64))
    }

    /// `csrs csr, rs` (set the bits of `rs` in `csr`)
    pub fn csrs(&mut self, csr: u16, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::Csrrs).rd(0).rs1(rs.index()).imm(csr as i64))
    }

    /// `csrc csr, rs` (clear the bits of `rs` in `csr`)
    pub fn csrc(&mut self, csr: u16, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::Csrrc).rd(0).rs1(rs.index()).imm(csr as i64))
    }

    /// `mret`
    pub fn mret(&mut self) -> &mut Self {
        self.push(Inst::new(Op::Mret))
    }

    /// `sret`
    pub fn sret(&mut self) -> &mut Self {
        self.push(Inst::new(Op::Sret))
    }

    /// `wfi`
    pub fn wfi(&mut self) -> &mut Self {
        self.push(Inst::new(Op::Wfi))
    }

    /// `ecall`
    pub fn ecall(&mut self) -> &mut Self {
        self.push(Inst::new(Op::Ecall))
    }

    /// `fence`
    pub fn fence(&mut self) -> &mut Self {
        self.push(Inst::new(Op::Fence))
    }

    /// `fence.i` — instruction-stream synchronization after
    /// self-modifying code (tests/smc.rs exercises the semantics).
    pub fn fence_i(&mut self) -> &mut Self {
        self.push(Inst::new(Op::FenceI))
    }

    /// `sfence.vma rs1, rs2`
    pub fn sfence_vma(&mut self, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.push(Inst::new(Op::SfenceVma).rs1(rs1.index()).rs2(rs2.index()))
    }

    // ---- atomics ----

    /// `amoadd.d rd, rs2, (rs1)`
    pub fn amoadd_d(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::AmoAddD, rd, addr, src)
    }

    /// `amoswap.w rd, rs2, (rs1)`
    pub fn amoswap_w(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::AmoSwapW, rd, addr, src)
    }

    /// `lr.d rd, (rs1)`
    pub fn lr_d(&mut self, rd: Gpr, addr: Gpr) -> &mut Self {
        self.push(Inst::new(Op::LrD).rd(rd.index()).rs1(addr.index()))
    }

    /// `sc.d rd, rs2, (rs1)`
    pub fn sc_d(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::ScD, rd, addr, src)
    }

    /// `lr.w rd, (rs1)`
    pub fn lr_w(&mut self, rd: Gpr, addr: Gpr) -> &mut Self {
        self.push(Inst::new(Op::LrW).rd(rd.index()).rs1(addr.index()))
    }

    /// `sc.w rd, rs2, (rs1)`
    pub fn sc_w(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::ScW, rd, addr, src)
    }

    /// `amoadd.w rd, rs2, (rs1)`
    pub fn amoadd_w(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::AmoAddW, rd, addr, src)
    }

    /// `amomin.w rd, rs2, (rs1)` — signed 32-bit minimum.
    pub fn amomin_w(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::AmoMinW, rd, addr, src)
    }

    /// `amomaxu.w rd, rs2, (rs1)` — unsigned 32-bit maximum.
    pub fn amomaxu_w(&mut self, rd: Gpr, src: Gpr, addr: Gpr) -> &mut Self {
        self.rrr(Op::AmoMaxuW, rd, addr, src)
    }

    // ---- vector (RVV 0.7.1 subset) ----

    /// `vsetvli rd, rs1, e<SEW>,m<LMUL>`
    pub fn vsetvli(&mut self, rd: Gpr, avl: Gpr, sew: Sew, lmul: u8) -> &mut Self {
        self.push(
            Inst::new(Op::Vsetvli)
                .rd(rd.index())
                .rs1(avl.index())
                .imm(vtypei(sew, lmul)),
        )
    }

    /// `vle.v vd, (rs1)`
    pub fn vle(&mut self, vd: Vr, base: Gpr) -> &mut Self {
        self.push(Inst::new(Op::Vle).rd(vd.index()).rs1(base.index()))
    }

    /// `vse.v vs3, (rs1)`
    pub fn vse(&mut self, vs: Vr, base: Gpr) -> &mut Self {
        self.push(Inst::new(Op::Vse).rs1(base.index()).rs3(vs.index()))
    }

    /// `vlse.v vd, (rs1), rs2` — strided load.
    pub fn vlse(&mut self, vd: Vr, base: Gpr, stride: Gpr) -> &mut Self {
        self.push(
            Inst::new(Op::Vlse)
                .rd(vd.index())
                .rs1(base.index())
                .rs2(stride.index()),
        )
    }

    fn vvv(&mut self, op: Op, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.push(Inst::new(op).rd(vd.index()).rs1(vs2.index()).rs2(vs1.index()))
    }

    fn vvx(&mut self, op: Op, vd: Vr, vs2: Vr, rs1: Gpr) -> &mut Self {
        self.push(Inst::new(op).rd(vd.index()).rs1(vs2.index()).rs2(rs1.index()))
    }

    /// `vadd.vv vd, vs2, vs1`
    pub fn vadd_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VaddVV, vd, vs2, vs1)
    }

    /// `vsub.vv vd, vs2, vs1`
    pub fn vsub_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VsubVV, vd, vs2, vs1)
    }

    /// `vand.vv vd, vs2, vs1`
    pub fn vand_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VandVV, vd, vs2, vs1)
    }

    /// `vor.vv vd, vs2, vs1`
    pub fn vor_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VorVV, vd, vs2, vs1)
    }

    /// `vxor.vv vd, vs2, vs1`
    pub fn vxor_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VxorVV, vd, vs2, vs1)
    }

    /// `vadd.vx vd, vs2, rs1`
    pub fn vadd_vx(&mut self, vd: Vr, vs2: Vr, rs1: Gpr) -> &mut Self {
        self.vvx(Op::VaddVX, vd, vs2, rs1)
    }

    /// `vmul.vx vd, vs2, rs1`
    pub fn vmul_vx(&mut self, vd: Vr, vs2: Vr, rs1: Gpr) -> &mut Self {
        self.vvx(Op::VmulVX, vd, vs2, rs1)
    }

    /// `vmacc.vx vd, rs1, vs2` — `vd += rs1 * vs2`.
    pub fn vmacc_vx(&mut self, vd: Vr, rs1: Gpr, vs2: Vr) -> &mut Self {
        self.push(
            Inst::new(Op::VmaccVX)
                .rd(vd.index())
                .rs1(vs2.index())
                .rs2(rs1.index())
                .rs3(vd.index()),
        )
    }

    /// `vmul.vv vd, vs2, vs1`
    pub fn vmul_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VmulVV, vd, vs2, vs1)
    }

    /// `vmacc.vv vd, vs1, vs2` — `vd += vs1 * vs2`.
    pub fn vmacc_vv(&mut self, vd: Vr, vs1: Vr, vs2: Vr) -> &mut Self {
        self.push(
            Inst::new(Op::VmaccVV)
                .rd(vd.index())
                .rs1(vs2.index())
                .rs2(vs1.index())
                .rs3(vd.index()),
        )
    }

    /// `vwmacc.vv vd, vs1, vs2` — widening MAC (`2*SEW` accumulator).
    pub fn vwmacc_vv(&mut self, vd: Vr, vs1: Vr, vs2: Vr) -> &mut Self {
        self.push(
            Inst::new(Op::VwmaccVV)
                .rd(vd.index())
                .rs1(vs2.index())
                .rs2(vs1.index())
                .rs3(vd.index()),
        )
    }

    /// `vredsum.vs vd, vs2, vs1`
    pub fn vredsum_vs(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VredsumVS, vd, vs2, vs1)
    }

    /// `vmv.v.i vd, imm`
    pub fn vmv_v_i(&mut self, vd: Vr, imm: i64) -> &mut Self {
        self.push(Inst::new(Op::VmvVI).rd(vd.index()).imm(imm))
    }

    /// `vmv.x.s rd, vs2` — extract element 0.
    pub fn vmv_x_s(&mut self, rd: Gpr, vs: Vr) -> &mut Self {
        self.push(Inst::new(Op::VmvXS).rd(rd.index()).rs1(vs.index()))
    }

    /// `vmv.s.x vd, rs1` — write element 0.
    pub fn vmv_s_x(&mut self, vd: Vr, rs1: Gpr) -> &mut Self {
        self.push(Inst::new(Op::VmvSX).rd(vd.index()).rs1(rs1.index()))
    }

    /// `vfmacc.vv vd, vs1, vs2`
    pub fn vfmacc_vv(&mut self, vd: Vr, vs1: Vr, vs2: Vr) -> &mut Self {
        self.push(
            Inst::new(Op::VfmaccVV)
                .rd(vd.index())
                .rs1(vs2.index())
                .rs2(vs1.index())
                .rs3(vd.index()),
        )
    }

    /// `vfadd.vv vd, vs2, vs1`
    pub fn vfadd_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VfaddVV, vd, vs2, vs1)
    }

    /// `vfmul.vv vd, vs2, vs1`
    pub fn vfmul_vv(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VfmulVV, vd, vs2, vs1)
    }

    /// `vfredsum.vs vd, vs2, vs1`
    pub fn vfredsum_vs(&mut self, vd: Vr, vs2: Vr, vs1: Vr) -> &mut Self {
        self.vvv(Op::VfredsumVS, vd, vs2, vs1)
    }

    // ---- XT-910 custom extensions ----

    /// `x.lrw rd, rs1, rs2, shift` — indexed word load (custom, §VIII-A).
    pub fn xlrw(&mut self, rd: Gpr, base: Gpr, idx: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XLrw)
                .rd(rd.index())
                .rs1(base.index())
                .rs2(idx.index())
                .imm(shift as i64),
        )
    }

    /// `x.lrd rd, rs1, rs2, shift` — indexed doubleword load.
    pub fn xlrd(&mut self, rd: Gpr, base: Gpr, idx: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XLrd)
                .rd(rd.index())
                .rs1(base.index())
                .rs2(idx.index())
                .imm(shift as i64),
        )
    }

    /// `x.lrbu rd, rs1, rs2, shift` — indexed unsigned byte load.
    pub fn xlrbu(&mut self, rd: Gpr, base: Gpr, idx: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XLrbu)
                .rd(rd.index())
                .rs1(base.index())
                .rs2(idx.index())
                .imm(shift as i64),
        )
    }

    /// `x.lurd rd, rs1, rs2, shift` — indexed load with zero-extended index.
    pub fn xlurd(&mut self, rd: Gpr, base: Gpr, idx: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XLurd)
                .rd(rd.index())
                .rs1(base.index())
                .rs2(idx.index())
                .imm(shift as i64),
        )
    }

    /// `x.srw src, rs1, rs2, shift` — indexed word store.
    pub fn xsrw(&mut self, src: Gpr, base: Gpr, idx: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XSrw)
                .rs1(base.index())
                .rs2(idx.index())
                .rs3(src.index())
                .imm(shift as i64),
        )
    }

    /// `x.srd src, rs1, rs2, shift` — indexed doubleword store.
    pub fn xsrd(&mut self, src: Gpr, base: Gpr, idx: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XSrd)
                .rs1(base.index())
                .rs2(idx.index())
                .rs3(src.index())
                .imm(shift as i64),
        )
    }

    /// `x.addsl rd, rs1, rs2, shift` — `rd = rs1 + (rs2 << shift)`.
    pub fn xaddsl(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr, shift: u8) -> &mut Self {
        self.push(
            Inst::new(Op::XAddsl)
                .rd(rd.index())
                .rs1(rs1.index())
                .rs2(rs2.index())
                .imm(shift as i64),
        )
    }

    /// `x.zextw rd, rs` — zero-extend low 32 bits (custom single-op form).
    pub fn xzextw(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::XZextw).rd(rd.index()).rs1(rs.index()))
    }

    /// `x.ext rd, rs1, msb, lsb` — signed bit-field extract.
    pub fn xext(&mut self, rd: Gpr, rs: Gpr, msb: u32, lsb: u32) -> &mut Self {
        self.push(
            Inst::new(Op::XExt)
                .rd(rd.index())
                .rs1(rs.index())
                .imm(Inst::pack_ext_bounds(msb, lsb)),
        )
    }

    /// `x.extu rd, rs1, msb, lsb` — unsigned bit-field extract.
    pub fn xextu(&mut self, rd: Gpr, rs: Gpr, msb: u32, lsb: u32) -> &mut Self {
        self.push(
            Inst::new(Op::XExtu)
                .rd(rd.index())
                .rs1(rs.index())
                .imm(Inst::pack_ext_bounds(msb, lsb)),
        )
    }

    /// `x.ff1 rd, rs` — find first set bit from the MSB.
    pub fn xff1(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::XFf1).rd(rd.index()).rs1(rs.index()))
    }

    /// `x.rev rd, rs` — byte reverse.
    pub fn xrev(&mut self, rd: Gpr, rs: Gpr) -> &mut Self {
        self.push(Inst::new(Op::XRev).rd(rd.index()).rs1(rs.index()))
    }

    /// `x.mula rd, rs1, rs2` — `rd += rs1 * rs2`.
    pub fn xmula(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.push(
            Inst::new(Op::XMula)
                .rd(rd.index())
                .rs1(rs1.index())
                .rs2(rs2.index())
                .rs3(rd.index()),
        )
    }

    /// `x.muls rd, rs1, rs2` — `rd -= rs1 * rs2`.
    pub fn xmuls(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.push(
            Inst::new(Op::XMuls)
                .rd(rd.index())
                .rs1(rs1.index())
                .rs2(rs2.index())
                .rs3(rd.index()),
        )
    }

    /// `x.mveqz rd, rs1, rs2` — `rd = rs1 if rs2 == 0`.
    pub fn xmveqz(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.push(
            Inst::new(Op::XMveqz)
                .rd(rd.index())
                .rs1(rs1.index())
                .rs2(rs2.index())
                .rs3(rd.index()),
        )
    }

    /// `x.mvnez rd, rs1, rs2` — `rd = rs1 if rs2 != 0`.
    pub fn xmvnez(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
        self.push(
            Inst::new(Op::XMvnez)
                .rd(rd.index())
                .rs1(rs1.index())
                .rs2(rs2.index())
                .rs3(rd.index()),
        )
    }

    /// `x.tlb.bcast` — hardware TLB-maintenance broadcast (§V-E).
    pub fn xtlb_bcast(&mut self, va: Gpr, asid: Gpr) -> &mut Self {
        self.push(Inst::new(Op::XTlbBroadcast).rs1(va.index()).rs2(asid.index()))
    }

    /// `x.dcache.call` — clean+invalidate the whole D-cache (hint).
    pub fn xdcache_call(&mut self) -> &mut Self {
        self.push(Inst::new(Op::XDcacheCall))
    }

    // ---- data section ----

    fn define(&mut self, name: &str, bytes: Vec<u8>, align: u64) -> u64 {
        let pad = (align - (self.data.len() as u64 % align)) % align;
        self.data.extend(std::iter::repeat_n(0, pad as usize));
        let addr = self.data_base + self.data.len() as u64;
        let size = bytes.len() as u64;
        self.data.extend(bytes);
        if self
            .symbols
            .insert(
                name.to_string(),
                Symbol {
                    name: name.to_string(),
                    addr,
                    size,
                },
            )
            .is_some()
        {
            panic!("duplicate data symbol {name:?}");
        }
        addr
    }

    /// Defines a byte array symbol; returns its absolute address.
    pub fn data_bytes(&mut self, name: &str, bytes: &[u8]) -> u64 {
        self.define(name, bytes.to_vec(), 1)
    }

    /// Defines a `u16` array symbol (2-byte aligned).
    pub fn data_u16(&mut self, name: &str, vals: &[u16]) -> u64 {
        let bytes = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.define(name, bytes, 2)
    }

    /// Defines a `u32` array symbol (4-byte aligned).
    pub fn data_u32(&mut self, name: &str, vals: &[u32]) -> u64 {
        let bytes = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.define(name, bytes, 4)
    }

    /// Defines a `u64` array symbol (8-byte aligned).
    pub fn data_u64(&mut self, name: &str, vals: &[u64]) -> u64 {
        let bytes = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.define(name, bytes, 8)
    }

    /// Defines an `f64` array symbol (8-byte aligned).
    pub fn data_f64(&mut self, name: &str, vals: &[f64]) -> u64 {
        let bytes = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.define(name, bytes, 8)
    }

    /// Defines an `f32` array symbol (4-byte aligned).
    pub fn data_f32(&mut self, name: &str, vals: &[f32]) -> u64 {
        let bytes = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.define(name, bytes, 4)
    }

    /// Reserves `len` zeroed bytes (8-byte aligned).
    pub fn data_zeros(&mut self, name: &str, len: usize) -> u64 {
        self.define(name, vec![0; len], 8)
    }

    // ---- finalization ----

    /// Resolves all fixups and produces the program image.
    ///
    /// # Errors
    ///
    /// Fails if any referenced label is unbound or a branch target is out
    /// of range.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for fix in std::mem::take(&mut self.fixups) {
            let target = self.labels[fix.label.0].ok_or(AsmError::Unbound(fix.label))?;
            let dist = target as i64 - fix.at as i64;
            let raw = u32::from_le_bytes(self.text[fix.at..fix.at + 4].try_into().unwrap());
            let mut inst = xt_isa::decode(raw).expect("previously encoded instruction");
            inst.imm = dist;
            let patched = encode(&inst).map_err(|_| AsmError::OutOfRange {
                at: fix.at,
                distance: dist,
            })?;
            self.text[fix.at..fix.at + 4].copy_from_slice(&patched.to_le_bytes());
        }
        Ok(Program {
            entry: self.text_base,
            text_base: self.text_base,
            text: self.text,
            data_base: self.data_base,
            data: self.data,
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        let fwd = a.new_label();
        a.beqz(Gpr::A0, fwd);
        a.nop();
        a.bind(fwd).unwrap();
        let back = a.here();
        a.jump(back);
        let p = a.finish().unwrap();
        // beqz at 0 jumps +8; jal at 8 jumps 0 (self).
        let w0 = u32::from_le_bytes(p.text[0..4].try_into().unwrap());
        let i0 = xt_isa::decode(w0).unwrap();
        assert_eq!(i0.imm, 8);
        let w2 = u32::from_le_bytes(p.text[8..12].try_into().unwrap());
        let i2 = xt_isa::decode(w2).unwrap();
        assert_eq!(i2.imm, 0);
    }

    #[test]
    fn unbound_label_rejected() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jump(l);
        assert!(matches!(a.finish(), Err(AsmError::Unbound(_))));
    }

    #[test]
    fn rebinding_rejected() {
        let mut a = Asm::new();
        let l = a.here();
        assert!(matches!(a.bind(l), Err(AsmError::Rebound(_))));
    }

    #[test]
    fn li_sequences() {
        for v in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234,
            -0x1234,
            0x7fff_ffff,
            -0x8000_0000,
            0x1_0000_0000,
            0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
        ] {
            let mut a = Asm::new();
            a.li(Gpr::A0, v);
            let p = a.finish().unwrap();
            assert!(!p.text.is_empty(), "li {v} emitted nothing");
        }
    }

    #[test]
    fn data_symbols_aligned() {
        let mut a = Asm::new();
        let b = a.data_bytes("b", &[1, 2, 3]);
        let w = a.data_u64("w", &[42]);
        assert!(b >= crate::DEFAULT_DATA_BASE);
        assert_eq!(w % 8, 0);
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("w"), w);
    }

    #[test]
    #[should_panic(expected = "duplicate data symbol")]
    fn duplicate_symbol_panics() {
        let mut a = Asm::new();
        a.data_u64("x", &[1]);
        a.data_u64("x", &[2]);
    }

    #[test]
    fn compression_shrinks_text() {
        let mut plain = Asm::new();
        plain.addi(Gpr::S0, Gpr::S0, 1).addi(Gpr::S0, Gpr::S0, 1);
        let plain = plain.finish().unwrap();

        let mut comp = Asm::new().with_compression();
        comp.addi(Gpr::S0, Gpr::S0, 1).addi(Gpr::S0, Gpr::S0, 1);
        let comp = comp.finish().unwrap();
        assert!(comp.text_len() < plain.text_len());
    }

    #[test]
    fn disassembly_smoke() {
        let mut a = Asm::new();
        a.li(Gpr::A0, 7).halt();
        let p = a.finish().unwrap();
        let d = p.disassemble();
        assert!(d.contains("addi"), "{d}");
    }
}
