//! Textual disassembly of decoded instructions.

use crate::inst::Inst;
use crate::op::{ExecClass, Op, RegFile};
use crate::reg::{FPR_ABI_NAMES, GPR_ABI_NAMES};
use std::fmt;

fn reg_name(rf: RegFile, idx: u8) -> String {
    match rf {
        RegFile::Int => GPR_ABI_NAMES[idx as usize].to_string(),
        RegFile::Fp => FPR_ABI_NAMES[idx as usize].to_string(),
        RegFile::Vec => format!("v{idx}"),
        RegFile::None => String::new(),
    }
}

/// Formats `inst` in a conventional `mnemonic rd, rs1, rs2/imm` style.
pub fn fmt_inst(inst: &Inst, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let t = inst.op.traits_of();
    let m = inst.op.mnemonic();
    let class = inst.op.exec_class();
    match class {
        ExecClass::Load | ExecClass::VecLoad if !inst.op.is_custom() => {
            if matches!(inst.op, Op::Vlse | Op::Vsse) {
                write!(
                    f,
                    "{m} {}, ({}), {}",
                    reg_name(t.rd, inst.rd),
                    reg_name(t.rs1, inst.rs1),
                    reg_name(t.rs2, inst.rs2)
                )
            } else if class == ExecClass::VecLoad {
                write!(
                    f,
                    "{m} {}, ({})",
                    reg_name(t.rd, inst.rd),
                    reg_name(t.rs1, inst.rs1)
                )
            } else {
                write!(
                    f,
                    "{m} {}, {}({})",
                    reg_name(t.rd, inst.rd),
                    inst.imm,
                    reg_name(t.rs1, inst.rs1)
                )
            }
        }
        ExecClass::Store | ExecClass::VecStore if !inst.op.is_custom() => {
            if class == ExecClass::VecStore {
                write!(
                    f,
                    "{m} {}, ({})",
                    reg_name(RegFile::Vec, inst.rs3),
                    reg_name(t.rs1, inst.rs1)
                )
            } else {
                write!(
                    f,
                    "{m} {}, {}({})",
                    reg_name(t.rs2, inst.rs2),
                    inst.imm,
                    reg_name(t.rs1, inst.rs1)
                )
            }
        }
        ExecClass::Branch => write!(
            f,
            "{m} {}, {}, {}",
            reg_name(t.rs1, inst.rs1),
            reg_name(t.rs2, inst.rs2),
            inst.imm
        ),
        ExecClass::Jump => write!(f, "{m} {}, {}", reg_name(t.rd, inst.rd), inst.imm),
        ExecClass::JumpInd => write!(
            f,
            "{m} {}, {}({})",
            reg_name(t.rd, inst.rd),
            inst.imm,
            reg_name(t.rs1, inst.rs1)
        ),
        ExecClass::Csr => {
            let csr = crate::csr::name(inst.imm as u16)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{:#x}", inst.imm));
            write!(
                f,
                "{m} {}, {csr}, {}",
                reg_name(t.rd, inst.rd),
                reg_name(t.rs1, inst.rs1)
            )
        }
        _ => {
            // Generic: mnemonic then any present operands.
            write!(f, "{m}")?;
            let mut sep = " ";
            if let Some((rf, rd)) = inst.dest() {
                write!(f, "{sep}{}", reg_name(rf, rd))?;
                sep = ", ";
            } else if t.rd != RegFile::None {
                write!(f, "{sep}zero")?;
                sep = ", ";
            }
            for (rf, idx) in [(t.rs1, inst.rs1), (t.rs2, inst.rs2)] {
                if rf != RegFile::None {
                    write!(f, "{sep}{}", reg_name(rf, idx))?;
                    sep = ", ";
                }
            }
            if uses_imm(inst.op) {
                write!(f, "{sep}{}", inst.imm)?;
            }
            Ok(())
        }
    }
}

fn uses_imm(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        Lui | Auipc
            | Addi
            | Slti
            | Sltiu
            | Xori
            | Ori
            | Andi
            | Slli
            | Srli
            | Srai
            | Addiw
            | Slliw
            | Srliw
            | Sraiw
            | Vsetvli
            | VaddVI
            | VmvVI
            | XExt
            | XExtu
            | XTst
            | XSrri
            | XAddsl
            | XLrb
            | XLrbu
            | XLrh
            | XLrhu
            | XLrw
            | XLrwu
            | XLrd
            | XLurw
            | XLurd
            | XSrb
            | XSrh
            | XSrw
            | XSrd
    )
}

/// Disassembles one instruction to a `String`.
pub fn disasm(inst: &Inst) -> String {
    inst.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn formats_common_shapes() {
        assert_eq!(
            Inst::new(Op::Addi).rd(10).rs1(10).imm(1).to_string(),
            "addi a0, a0, 1"
        );
        assert_eq!(
            Inst::new(Op::Ld).rd(10).rs1(2).imm(8).to_string(),
            "ld a0, 8(sp)"
        );
        assert_eq!(
            Inst::new(Op::Sd).rs1(2).rs2(10).imm(-16).to_string(),
            "sd a0, -16(sp)"
        );
        assert_eq!(
            Inst::new(Op::Beq).rs1(5).rs2(6).imm(-8).to_string(),
            "beq t0, t1, -8"
        );
        assert_eq!(
            Inst::new(Op::VaddVV).rd(1).rs1(2).rs2(3).to_string(),
            "vadd.vv v1, v2, v3"
        );
    }

    #[test]
    fn nonempty_for_all_ops() {
        // Debug-representation-never-empty spirit: every op formats.
        let i = Inst::new(Op::XMula).rd(1).rs1(2).rs2(3).rs3(1);
        assert!(!i.to_string().is_empty());
    }
}
