//! RVV 0.7.1 vector-configuration state (`vtype`, SEW, LMUL).
//!
//! The XT-910 implements the 0.7.1 *stable release* of the vector
//! specification (paper §VII). In 0.7.1 the `vtype` CSR holds
//! `vsew[2:0]` (bits 4:2) and `vlmul[1:0]` (bits 1:0); `VLEN = SLEN = 128`
//! on the recommended two-slice configuration.

/// Standard element width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements.
    E32,
    /// 64-bit elements.
    E64,
}

impl Sew {
    /// Element width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
            Sew::E64 => 64,
        }
    }

    /// Element width in bytes.
    pub fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// Encodes into the 0.7.1 `vsew` field (log2(bits) - 3).
    pub fn encode(self) -> u32 {
        match self {
            Sew::E8 => 0,
            Sew::E16 => 1,
            Sew::E32 => 2,
            Sew::E64 => 3,
        }
    }

    /// Decodes from the `vsew` field.
    pub fn decode(v: u32) -> Option<Sew> {
        Some(match v & 0x7 {
            0 => Sew::E8,
            1 => Sew::E16,
            2 => Sew::E32,
            3 => Sew::E64,
            _ => return None,
        })
    }
}

/// Decoded `vtype` register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VType {
    /// Selected element width.
    pub sew: Sew,
    /// Register-group multiplier (1, 2, 4 or 8).
    pub lmul: u8,
    /// Set when an unsupported `vtype` was requested (`vill`).
    pub vill: bool,
}

impl Default for VType {
    fn default() -> Self {
        VType {
            sew: Sew::E8,
            lmul: 1,
            vill: false,
        }
    }
}

impl VType {
    /// Decodes the 0.7.1 `vtype` bit layout (`vlmul` bits 1:0, `vsew` 4:2).
    pub fn from_bits(bits: u64) -> VType {
        let lmul = 1u8 << (bits & 0x3);
        let sew = Sew::decode(((bits >> 2) & 0x7) as u32);
        match sew {
            Some(sew) => VType {
                sew,
                lmul,
                vill: false,
            },
            None => VType {
                sew: Sew::E8,
                lmul: 1,
                vill: true,
            },
        }
    }

    /// Encodes back into `vtype` bits (`vill` sets the sign bit).
    pub fn to_bits(self) -> u64 {
        let lmul_enc = self.lmul.trailing_zeros() as u64;
        let v = (self.sew.encode() as u64) << 2 | lmul_enc;
        if self.vill {
            v | (1 << 63)
        } else {
            v
        }
    }

    /// `VLMAX` for a given `VLEN` in bits: `VLEN / SEW * LMUL`.
    pub fn vlmax(self, vlen_bits: u32) -> u64 {
        (vlen_bits / self.sew.bits()) as u64 * self.lmul as u64
    }

    /// Applies the 0.7.1 `vsetvl{i}` rule: `vl = min(avl, VLMAX)`.
    pub fn compute_vl(self, avl: u64, vlen_bits: u32) -> u64 {
        avl.min(self.vlmax(vlen_bits))
    }
}

/// Builds a `vtypei` immediate for `vsetvli` from SEW and LMUL.
///
/// # Panics
///
/// Panics if `lmul` is not 1, 2, 4 or 8.
pub fn vtypei(sew: Sew, lmul: u8) -> i64 {
    assert!(matches!(lmul, 1 | 2 | 4 | 8), "invalid LMUL");
    ((sew.encode() << 2) | lmul.trailing_zeros()) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtype_roundtrip() {
        for sew in [Sew::E8, Sew::E16, Sew::E32, Sew::E64] {
            for lmul in [1u8, 2, 4, 8] {
                let v = VType {
                    sew,
                    lmul,
                    vill: false,
                };
                assert_eq!(VType::from_bits(v.to_bits()), v);
            }
        }
    }

    #[test]
    fn vlmax_128() {
        let v = VType {
            sew: Sew::E16,
            lmul: 1,
            vill: false,
        };
        // VLEN=128, SEW=16 -> 8 elements per register.
        assert_eq!(v.vlmax(128), 8);
        assert_eq!(v.compute_vl(5, 128), 5);
        assert_eq!(v.compute_vl(100, 128), 8);
    }

    #[test]
    fn vtypei_builder_matches_decoder() {
        let imm = vtypei(Sew::E32, 2);
        let v = VType::from_bits(imm as u64);
        assert_eq!(v.sew, Sew::E32);
        assert_eq!(v.lmul, 2);
        assert!(!v.vill);
    }
}
