//! The decoded-instruction type shared by the assembler, functional
//! emulator and the timing models.

use crate::op::{Op, RegFile};

/// A decoded instruction: an [`Op`] plus its operand values.
///
/// Register fields are raw indices (`0..32`); which file they refer to is
/// given by [`Op::traits_of`]. `imm` carries the (sign-extended) immediate.
/// For the XT-910 bit-field ops (`x.ext`/`x.extu`) the immediate packs
/// `msb << 6 | lsb`; for the indexed memory ops it carries the index shift
/// amount (0..=3); for `vsetvli` it carries the raw `vtypei` bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register index.
    pub rd: u8,
    /// Source register 1 index.
    pub rs1: u8,
    /// Source register 2 index.
    pub rs2: u8,
    /// Source register 3 index (FMA; vector store data register `vs3`).
    pub rs3: u8,
    /// Immediate (sign-extended) or auxiliary field; see type-level docs.
    pub imm: i64,
    /// Encoded length in bytes (2 for a compressed form, else 4).
    pub len: u8,
}

impl Inst {
    /// Creates an instruction with every operand zeroed.
    pub fn new(op: Op) -> Self {
        Inst {
            op,
            rd: 0,
            rs1: 0,
            rs2: 0,
            rs3: 0,
            imm: 0,
            len: 4,
        }
    }

    /// Builder-style destination register.
    pub fn rd(mut self, rd: u8) -> Self {
        self.rd = rd;
        self
    }

    /// Builder-style source register 1.
    pub fn rs1(mut self, rs1: u8) -> Self {
        self.rs1 = rs1;
        self
    }

    /// Builder-style source register 2.
    pub fn rs2(mut self, rs2: u8) -> Self {
        self.rs2 = rs2;
        self
    }

    /// Builder-style source register 3.
    pub fn rs3(mut self, rs3: u8) -> Self {
        self.rs3 = rs3;
        self
    }

    /// Builder-style immediate.
    pub fn imm(mut self, imm: i64) -> Self {
        self.imm = imm;
        self
    }

    /// Builder-style encoded length.
    pub fn with_len(mut self, len: u8) -> Self {
        debug_assert!(len == 2 || len == 4);
        self.len = len;
        self
    }

    /// Whether the instruction writes an integer destination other than `x0`.
    pub fn writes_int_dest(&self) -> bool {
        self.op.traits_of().rd == RegFile::Int && self.rd != 0
    }

    /// Destination register and its file, if any (writes to `x0` excluded).
    pub fn dest(&self) -> Option<(RegFile, u8)> {
        let t = self.op.traits_of();
        match t.rd {
            RegFile::None => None,
            RegFile::Int if self.rd == 0 => None,
            rf => Some((rf, self.rd)),
        }
    }

    /// Source registers with their files, in rs1/rs2/rs3 order.
    ///
    /// Reads of integer `x0` are omitted (hard-wired zero never creates a
    /// dependence).
    pub fn sources(&self) -> impl Iterator<Item = (RegFile, u8)> {
        let t = self.op.traits_of();
        let mk = |rf: RegFile, idx: u8| match rf {
            RegFile::None => None,
            RegFile::Int if idx == 0 => None,
            rf => Some((rf, idx)),
        };
        [mk(t.rs1, self.rs1), mk(t.rs2, self.rs2), mk(t.rs3, self.rs3)]
            .into_iter()
            .flatten()
    }

    /// For `x.ext`/`x.extu`: the `(msb, lsb)` bit-field bounds.
    pub fn ext_bounds(&self) -> (u32, u32) {
        let raw = self.imm as u64;
        (((raw >> 6) & 0x3f) as u32, (raw & 0x3f) as u32)
    }

    /// Packs `(msb, lsb)` bounds into the immediate for `x.ext`/`x.extu`.
    pub fn pack_ext_bounds(msb: u32, lsb: u32) -> i64 {
        debug_assert!(msb < 64 && lsb < 64);
        ((msb << 6) | lsb) as i64
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        crate::disasm::fmt_inst(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_dest() {
        let i = Inst::new(Op::Add).rd(3).rs1(1).rs2(2);
        assert_eq!(i.dest(), Some((RegFile::Int, 3)));
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![(RegFile::Int, 1), (RegFile::Int, 2)]);
    }

    #[test]
    fn zero_register_elided() {
        let i = Inst::new(Op::Add).rd(0).rs1(0).rs2(5);
        assert_eq!(i.dest(), None);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![(RegFile::Int, 5)]);
    }

    #[test]
    fn ext_bounds_roundtrip() {
        let imm = Inst::pack_ext_bounds(31, 8);
        let i = Inst::new(Op::XExtu).rd(1).rs1(2).imm(imm);
        assert_eq!(i.ext_bounds(), (31, 8));
    }

    #[test]
    fn fp_sources_include_x0_index() {
        // f0 is a real register: reads of FP index 0 must not be elided.
        let i = Inst::new(Op::FaddD).rd(1).rs1(0).rs2(0);
        assert_eq!(i.sources().count(), 2);
    }
}
