//! Architectural register names: integer GPRs, floating-point FPRs and
//! vector registers, with their RISC-V ABI aliases.

use std::fmt;

/// An integer general-purpose register, `x0`..`x31`.
///
/// The wrapped index is guaranteed to be `< 32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gpr(u8);

/// A floating-point register, `f0`..`f31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fpr(u8);

/// A vector register, `v0`..`v31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vr(u8);

macro_rules! reg_common {
    ($t:ident, $prefix:literal) => {
        impl $t {
            /// Creates a register from its index.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= 32`.
            pub const fn new(idx: u8) -> Self {
                assert!(idx < 32, "register index out of range");
                Self(idx)
            }

            /// The register's index, `0..32`.
            pub const fn index(self) -> u8 {
                self.0
            }
        }

        impl From<$t> for u8 {
            fn from(r: $t) -> u8 {
                r.0
            }
        }
    };
}

reg_common!(Gpr, "x");
reg_common!(Fpr, "f");
reg_common!(Vr, "v");

/// ABI names for the integer registers (`zero`, `ra`, `sp`, ...).
pub const GPR_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// ABI names for the floating-point registers (`ft0`, `fa0`, ...).
pub const FPR_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(GPR_ABI_NAMES[self.0 as usize])
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(FPR_ABI_NAMES[self.0 as usize])
    }
}

impl fmt::Display for Vr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl Gpr {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Gpr = Gpr(0);
    /// Return address `x1`.
    pub const RA: Gpr = Gpr(1);
    /// Stack pointer `x2`.
    pub const SP: Gpr = Gpr(2);
    /// Global pointer `x3`.
    pub const GP: Gpr = Gpr(3);
    /// Thread pointer `x4`.
    pub const TP: Gpr = Gpr(4);
    /// Temporary `t0` (`x5`).
    pub const T0: Gpr = Gpr(5);
    /// Temporary `t1` (`x6`).
    pub const T1: Gpr = Gpr(6);
    /// Temporary `t2` (`x7`).
    pub const T2: Gpr = Gpr(7);
    /// Saved/frame pointer `s0`/`fp` (`x8`).
    pub const S0: Gpr = Gpr(8);
    /// Saved register `s1` (`x9`).
    pub const S1: Gpr = Gpr(9);
    /// Argument/return register `a0` (`x10`).
    pub const A0: Gpr = Gpr(10);
    /// Argument/return register `a1` (`x11`).
    pub const A1: Gpr = Gpr(11);
    /// Argument register `a2` (`x12`).
    pub const A2: Gpr = Gpr(12);
    /// Argument register `a3` (`x13`).
    pub const A3: Gpr = Gpr(13);
    /// Argument register `a4` (`x14`).
    pub const A4: Gpr = Gpr(14);
    /// Argument register `a5` (`x15`).
    pub const A5: Gpr = Gpr(15);
    /// Argument register `a6` (`x16`).
    pub const A6: Gpr = Gpr(16);
    /// Argument register `a7` (`x17`).
    pub const A7: Gpr = Gpr(17);
    /// Saved register `s2` (`x18`).
    pub const S2: Gpr = Gpr(18);
    /// Saved register `s3` (`x19`).
    pub const S3: Gpr = Gpr(19);
    /// Saved register `s4` (`x20`).
    pub const S4: Gpr = Gpr(20);
    /// Saved register `s5` (`x21`).
    pub const S5: Gpr = Gpr(21);
    /// Saved register `s6` (`x22`).
    pub const S6: Gpr = Gpr(22);
    /// Saved register `s7` (`x23`).
    pub const S7: Gpr = Gpr(23);
    /// Saved register `s8` (`x24`).
    pub const S8: Gpr = Gpr(24);
    /// Saved register `s9` (`x25`).
    pub const S9: Gpr = Gpr(25);
    /// Saved register `s10` (`x26`).
    pub const S10: Gpr = Gpr(26);
    /// Saved register `s11` (`x27`).
    pub const S11: Gpr = Gpr(27);
    /// Temporary `t3` (`x28`).
    pub const T3: Gpr = Gpr(28);
    /// Temporary `t4` (`x29`).
    pub const T4: Gpr = Gpr(29);
    /// Temporary `t5` (`x30`).
    pub const T5: Gpr = Gpr(30);
    /// Temporary `t6` (`x31`).
    pub const T6: Gpr = Gpr(31);

    /// Whether writes to this register are discarded (`x0`).
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_display() {
        assert_eq!(Gpr::new(0).to_string(), "zero");
        assert_eq!(Gpr::new(2).to_string(), "sp");
        assert_eq!(Gpr::A0.to_string(), "a0");
        assert_eq!(Fpr::new(10).to_string(), "fa0");
        assert_eq!(Vr::new(7).to_string(), "v7");
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Gpr::new(32);
    }

    #[test]
    fn zero_detection() {
        assert!(Gpr::ZERO.is_zero());
        assert!(!Gpr::RA.is_zero());
    }
}
