//! Binary instruction encoding.
//!
//! Standard RV64IMAFDC instructions use the RISC-V spec's bit layouts. The
//! vector subset follows the broad OP-V layout of RVV 0.7.1 (funct6 |
//! vm | vs2 | vs1 | funct3 | vd | 0x57) with a documented funct6 table; the
//! XT-910 custom extensions live in the custom-0 opcode (0x0B). The decoder
//! in [`mod@crate::decode`] is the exact inverse — round-trips are
//! property-tested.

// Binary literals group bits by instruction field (funct5_funct2), not
// by uniform digit count.
#![allow(clippy::unusual_byte_groupings)]

use crate::inst::Inst;
use crate::op::Op;

/// Error returned when an instruction's operands do not fit its encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// The offending instruction.
    pub inst: Inst,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot encode {:?}: {}", self.inst.op, self.reason)
    }
}

impl std::error::Error for EncodeError {}

fn r(f7: u32, rs2: u32, rs1: u32, f3: u32, rd: u32, opc: u32) -> u32 {
    (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc
}

fn i(imm: i64, rs1: u32, f3: u32, rd: u32, opc: u32) -> Result<u32, &'static str> {
    if !(-2048..=2047).contains(&imm) {
        return Err("I-immediate out of range");
    }
    Ok((((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opc)
}

fn s(imm: i64, rs2: u32, rs1: u32, f3: u32, opc: u32) -> Result<u32, &'static str> {
    if !(-2048..=2047).contains(&imm) {
        return Err("S-immediate out of range");
    }
    let imm = imm as u32;
    Ok(((imm >> 5 & 0x7f) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((imm & 0x1f) << 7) | opc)
}

fn b(imm: i64, rs2: u32, rs1: u32, f3: u32) -> Result<u32, &'static str> {
    if !(-4096..=4094).contains(&imm) || imm & 1 != 0 {
        return Err("B-immediate out of range or odd");
    }
    let imm = imm as u32;
    Ok(((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (f3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | 0x63)
}

fn u(imm: i64, rd: u32, opc: u32) -> Result<u32, &'static str> {
    // `imm` is the final (shifted) value: a sign-extended multiple of 4096.
    if imm & 0xfff != 0 {
        return Err("U-immediate must be 4 KiB aligned");
    }
    let hi = imm >> 12;
    if !(-(1 << 19)..(1 << 19)).contains(&hi) {
        return Err("U-immediate out of range");
    }
    Ok((((hi as u32) & 0xfffff) << 12) | (rd << 7) | opc)
}

fn j(imm: i64, rd: u32) -> Result<u32, &'static str> {
    if !(-(1 << 20)..(1 << 20)).contains(&imm) || imm & 1 != 0 {
        return Err("J-immediate out of range or odd");
    }
    let imm = imm as u32;
    Ok(((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | (rd << 7)
        | 0x6f)
}

/// OP-V funct6 assignments (vm bit is always 1 = unmasked in this subset).
/// funct3: 0=VV(int) 3=VI 4=VX 1=FVV 5=FVF 2=MVV(mul/red/perm) 6=MVX 7=cfg.
pub(crate) fn vec_funct6(op: Op) -> Option<(u32, u32)> {
    use Op::*;
    // (funct6, funct3)
    Some(match op {
        VaddVV => (0b000000, 0),
        VsubVV => (0b000010, 0),
        VandVV => (0b001001, 0),
        VorVV => (0b001010, 0),
        VxorVV => (0b001011, 0),
        VsllVV => (0b100101, 0),
        VsrlVV => (0b101000, 0),
        VsraVV => (0b101001, 0),
        VminuVV => (0b000100, 0),
        VminVV => (0b000101, 0),
        VmaxuVV => (0b000110, 0),
        VmaxVV => (0b000111, 0),
        VmvVV => (0b010111, 0),
        VaddVX => (0b000000, 4),
        VsubVX => (0b000010, 4),
        VrsubVX => (0b000011, 4),
        VandVX => (0b001001, 4),
        VorVX => (0b001010, 4),
        VxorVX => (0b001011, 4),
        VsllVX => (0b100101, 4),
        VsrlVX => (0b101000, 4),
        VsraVX => (0b101001, 4),
        VmvVX => (0b010111, 4),
        Vslidedown => (0b001111, 4),
        Vslideup => (0b001110, 4),
        VaddVI => (0b000000, 3),
        VmvVI => (0b010111, 3),
        VmulVV => (0b100101, 2),
        VmulhVV => (0b100111, 2),
        VmaccVV => (0b101101, 2),
        VnmsacVV => (0b101111, 2),
        VdivuVV => (0b100000, 2),
        VdivVV => (0b100001, 2),
        VremVV => (0b100011, 2),
        VwmuluVV => (0b111000, 2),
        VwmulVV => (0b111011, 2),
        VwmaccuVV => (0b111100, 2),
        VwmaccVV => (0b111101, 2),
        VredsumVS => (0b000000, 2),
        VredmaxVS => (0b000111, 2),
        VmvXS => (0b010000, 2),
        VmulVX => (0b100101, 6),
        VmaccVX => (0b101101, 6),
        VmvSX => (0b010000, 6),
        VfaddVV => (0b000000, 1),
        VfsubVV => (0b000010, 1),
        VfmulVV => (0b100100, 1),
        VfdivVV => (0b100000, 1),
        VfmaccVV => (0b101100, 1),
        VfnmsacVV => (0b101110, 1),
        VfminVV => (0b000100, 1),
        VfmaxVV => (0b000110, 1),
        VfredsumVS => (0b000011, 1),
        VfsqrtV => (0b100011, 1),
        VfaddVF => (0b000000, 5),
        VfmulVF => (0b100100, 5),
        VfmaccVF => (0b101100, 5),
        _ => return None,
    })
}

/// Custom-0 (0x0B) funct assignments for the XT-910 extensions.
/// funct3 groups: 0=indexed-load 1=indexed-store 2=alu(bitmanip reg)
/// 3=bitfield/imm 4=mac 5=cacheop 6=condmove.
pub(crate) fn custom_funct(op: Op) -> Option<(u32, u32)> {
    use Op::*;
    // (funct7 base — low 2 bits reserved for the index shift, funct3)
    Some(match op {
        XLrb => (0b00000_00, 0),
        XLrbu => (0b00001_00, 0),
        XLrh => (0b00010_00, 0),
        XLrhu => (0b00011_00, 0),
        XLrw => (0b00100_00, 0),
        XLrwu => (0b00101_00, 0),
        XLrd => (0b00110_00, 0),
        XLurw => (0b00111_00, 0),
        XLurd => (0b01000_00, 0),
        XSrb => (0b00000_00, 1),
        XSrh => (0b00010_00, 1),
        XSrw => (0b00100_00, 1),
        XSrd => (0b00110_00, 1),
        XAddsl => (0b01001_00, 2),
        XAdduw => (0b01010_00, 2),
        XZextw => (0b01011_00, 2),
        XFf0 => (0b01100_00, 2),
        XFf1 => (0b01101_00, 2),
        XRev => (0b01110_00, 2),
        XMveqz => (0b00000_00, 6),
        XMvnez => (0b00001_00, 6),
        XMula => (0b00000_00, 4),
        XMuls => (0b00001_00, 4),
        XMulaw => (0b00010_00, 4),
        XMulsw => (0b00011_00, 4),
        XMulah => (0b00100_00, 4),
        XMulsh => (0b00101_00, 4),
        XDcacheCall => (0b00000_00, 5),
        XDcacheCva => (0b00001_00, 5),
        XIcacheIall => (0b00010_00, 5),
        XTlbBroadcast => (0b00011_00, 5),
        XSync => (0b00100_00, 5),
        _ => return None,
    })
}

/// Encodes `inst` into its 32-bit binary form.
///
/// # Errors
///
/// Returns [`EncodeError`] if an immediate is out of range for the format.
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    use Op::*;
    let rd = inst.rd as u32;
    let rs1 = inst.rs1 as u32;
    let rs2 = inst.rs2 as u32;
    let rs3 = inst.rs3 as u32;
    let imm = inst.imm;
    let err = |reason| EncodeError { inst: *inst, reason };
    let word: Result<u32, &'static str> = match inst.op {
        Lui => u(imm, rd, 0x37),
        Auipc => u(imm, rd, 0x17),
        Jal => j(imm, rd),
        Jalr => i(imm, rs1, 0, rd, 0x67),
        Beq => b(imm, rs2, rs1, 0),
        Bne => b(imm, rs2, rs1, 1),
        Blt => b(imm, rs2, rs1, 4),
        Bge => b(imm, rs2, rs1, 5),
        Bltu => b(imm, rs2, rs1, 6),
        Bgeu => b(imm, rs2, rs1, 7),
        Lb => i(imm, rs1, 0, rd, 0x03),
        Lh => i(imm, rs1, 1, rd, 0x03),
        Lw => i(imm, rs1, 2, rd, 0x03),
        Ld => i(imm, rs1, 3, rd, 0x03),
        Lbu => i(imm, rs1, 4, rd, 0x03),
        Lhu => i(imm, rs1, 5, rd, 0x03),
        Lwu => i(imm, rs1, 6, rd, 0x03),
        Sb => s(imm, rs2, rs1, 0, 0x23),
        Sh => s(imm, rs2, rs1, 1, 0x23),
        Sw => s(imm, rs2, rs1, 2, 0x23),
        Sd => s(imm, rs2, rs1, 3, 0x23),
        Addi => i(imm, rs1, 0, rd, 0x13),
        Slti => i(imm, rs1, 2, rd, 0x13),
        Sltiu => i(imm, rs1, 3, rd, 0x13),
        Xori => i(imm, rs1, 4, rd, 0x13),
        Ori => i(imm, rs1, 6, rd, 0x13),
        Andi => i(imm, rs1, 7, rd, 0x13),
        Slli => {
            if !(0..64).contains(&imm) {
                Err("shift amount out of range")
            } else {
                Ok(r(0, 0, rs1, 1, rd, 0x13) | ((imm as u32) << 20))
            }
        }
        Srli => {
            if !(0..64).contains(&imm) {
                Err("shift amount out of range")
            } else {
                Ok(r(0, 0, rs1, 5, rd, 0x13) | ((imm as u32) << 20))
            }
        }
        Srai => {
            if !(0..64).contains(&imm) {
                Err("shift amount out of range")
            } else {
                Ok(r(0b0100000, 0, rs1, 5, rd, 0x13) | ((imm as u32) << 20))
            }
        }
        Add => Ok(r(0, rs2, rs1, 0, rd, 0x33)),
        Sub => Ok(r(0b0100000, rs2, rs1, 0, rd, 0x33)),
        Sll => Ok(r(0, rs2, rs1, 1, rd, 0x33)),
        Slt => Ok(r(0, rs2, rs1, 2, rd, 0x33)),
        Sltu => Ok(r(0, rs2, rs1, 3, rd, 0x33)),
        Xor => Ok(r(0, rs2, rs1, 4, rd, 0x33)),
        Srl => Ok(r(0, rs2, rs1, 5, rd, 0x33)),
        Sra => Ok(r(0b0100000, rs2, rs1, 5, rd, 0x33)),
        Or => Ok(r(0, rs2, rs1, 6, rd, 0x33)),
        And => Ok(r(0, rs2, rs1, 7, rd, 0x33)),
        Fence => i(0, 0, 0, 0, 0x0f),
        FenceI => i(0, 0, 1, 0, 0x0f),
        Ecall => Ok(0x00000073),
        Ebreak => Ok(0x00100073),
        Addiw => i(imm, rs1, 0, rd, 0x1b),
        Slliw => {
            if !(0..32).contains(&imm) {
                Err("shift amount out of range")
            } else {
                Ok(r(0, 0, rs1, 1, rd, 0x1b) | ((imm as u32) << 20))
            }
        }
        Srliw => {
            if !(0..32).contains(&imm) {
                Err("shift amount out of range")
            } else {
                Ok(r(0, 0, rs1, 5, rd, 0x1b) | ((imm as u32) << 20))
            }
        }
        Sraiw => {
            if !(0..32).contains(&imm) {
                Err("shift amount out of range")
            } else {
                Ok(r(0b0100000, 0, rs1, 5, rd, 0x1b) | ((imm as u32) << 20))
            }
        }
        Addw => Ok(r(0, rs2, rs1, 0, rd, 0x3b)),
        Subw => Ok(r(0b0100000, rs2, rs1, 0, rd, 0x3b)),
        Sllw => Ok(r(0, rs2, rs1, 1, rd, 0x3b)),
        Srlw => Ok(r(0, rs2, rs1, 5, rd, 0x3b)),
        Sraw => Ok(r(0b0100000, rs2, rs1, 5, rd, 0x3b)),
        Mul => Ok(r(1, rs2, rs1, 0, rd, 0x33)),
        Mulh => Ok(r(1, rs2, rs1, 1, rd, 0x33)),
        Mulhsu => Ok(r(1, rs2, rs1, 2, rd, 0x33)),
        Mulhu => Ok(r(1, rs2, rs1, 3, rd, 0x33)),
        Div => Ok(r(1, rs2, rs1, 4, rd, 0x33)),
        Divu => Ok(r(1, rs2, rs1, 5, rd, 0x33)),
        Rem => Ok(r(1, rs2, rs1, 6, rd, 0x33)),
        Remu => Ok(r(1, rs2, rs1, 7, rd, 0x33)),
        Mulw => Ok(r(1, rs2, rs1, 0, rd, 0x3b)),
        Divw => Ok(r(1, rs2, rs1, 4, rd, 0x3b)),
        Divuw => Ok(r(1, rs2, rs1, 5, rd, 0x3b)),
        Remw => Ok(r(1, rs2, rs1, 6, rd, 0x3b)),
        Remuw => Ok(r(1, rs2, rs1, 7, rd, 0x3b)),
        LrW => Ok(r(0, 0, rs1, 2, rd, 0x2f) | (0b00010 << 27)),
        LrD => Ok(r(0, 0, rs1, 3, rd, 0x2f) | (0b00010 << 27)),
        ScW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b00011 << 27)),
        ScD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b00011 << 27)),
        AmoSwapW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b00001 << 27)),
        AmoAddW => Ok(r(0, rs2, rs1, 2, rd, 0x2f)),
        AmoXorW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b00100 << 27)),
        AmoAndW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b01100 << 27)),
        AmoOrW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b01000 << 27)),
        AmoMinW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b10000 << 27)),
        AmoMaxW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b10100 << 27)),
        AmoMinuW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b11000 << 27)),
        AmoMaxuW => Ok(r(0, rs2, rs1, 2, rd, 0x2f) | (0b11100 << 27)),
        AmoSwapD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b00001 << 27)),
        AmoAddD => Ok(r(0, rs2, rs1, 3, rd, 0x2f)),
        AmoXorD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b00100 << 27)),
        AmoAndD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b01100 << 27)),
        AmoOrD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b01000 << 27)),
        AmoMinD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b10000 << 27)),
        AmoMaxD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b10100 << 27)),
        AmoMinuD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b11000 << 27)),
        AmoMaxuD => Ok(r(0, rs2, rs1, 3, rd, 0x2f) | (0b11100 << 27)),
        Flw => i(imm, rs1, 2, rd, 0x07),
        Fld => i(imm, rs1, 3, rd, 0x07),
        Fsw => s(imm, rs2, rs1, 2, 0x27),
        Fsd => s(imm, rs2, rs1, 3, 0x27),
        FmaddS => Ok((rs3 << 27) | r(0, rs2, rs1, 0, rd, 0x43)),
        FmsubS => Ok((rs3 << 27) | r(0, rs2, rs1, 0, rd, 0x47)),
        FnmsubS => Ok((rs3 << 27) | r(0, rs2, rs1, 0, rd, 0x4b)),
        FnmaddS => Ok((rs3 << 27) | r(0, rs2, rs1, 0, rd, 0x4f)),
        FmaddD => Ok((rs3 << 27) | (1 << 25) | r(0, rs2, rs1, 0, rd, 0x43)),
        FmsubD => Ok((rs3 << 27) | (1 << 25) | r(0, rs2, rs1, 0, rd, 0x47)),
        FnmsubD => Ok((rs3 << 27) | (1 << 25) | r(0, rs2, rs1, 0, rd, 0x4b)),
        FnmaddD => Ok((rs3 << 27) | (1 << 25) | r(0, rs2, rs1, 0, rd, 0x4f)),
        FaddS => Ok(r(0b0000000, rs2, rs1, 7, rd, 0x53)),
        FsubS => Ok(r(0b0000100, rs2, rs1, 7, rd, 0x53)),
        FmulS => Ok(r(0b0001000, rs2, rs1, 7, rd, 0x53)),
        FdivS => Ok(r(0b0001100, rs2, rs1, 7, rd, 0x53)),
        FsqrtS => Ok(r(0b0101100, 0, rs1, 7, rd, 0x53)),
        FsgnjS => Ok(r(0b0010000, rs2, rs1, 0, rd, 0x53)),
        FsgnjnS => Ok(r(0b0010000, rs2, rs1, 1, rd, 0x53)),
        FsgnjxS => Ok(r(0b0010000, rs2, rs1, 2, rd, 0x53)),
        FminS => Ok(r(0b0010100, rs2, rs1, 0, rd, 0x53)),
        FmaxS => Ok(r(0b0010100, rs2, rs1, 1, rd, 0x53)),
        FcvtWS => Ok(r(0b1100000, 0, rs1, 7, rd, 0x53)),
        FcvtWuS => Ok(r(0b1100000, 1, rs1, 7, rd, 0x53)),
        FcvtLS => Ok(r(0b1100000, 2, rs1, 7, rd, 0x53)),
        FcvtLuS => Ok(r(0b1100000, 3, rs1, 7, rd, 0x53)),
        FmvXW => Ok(r(0b1110000, 0, rs1, 0, rd, 0x53)),
        FeqS => Ok(r(0b1010000, rs2, rs1, 2, rd, 0x53)),
        FltS => Ok(r(0b1010000, rs2, rs1, 1, rd, 0x53)),
        FleS => Ok(r(0b1010000, rs2, rs1, 0, rd, 0x53)),
        FclassS => Ok(r(0b1110000, 0, rs1, 1, rd, 0x53)),
        FcvtSW => Ok(r(0b1101000, 0, rs1, 7, rd, 0x53)),
        FcvtSWu => Ok(r(0b1101000, 1, rs1, 7, rd, 0x53)),
        FcvtSL => Ok(r(0b1101000, 2, rs1, 7, rd, 0x53)),
        FcvtSLu => Ok(r(0b1101000, 3, rs1, 7, rd, 0x53)),
        FmvWX => Ok(r(0b1111000, 0, rs1, 0, rd, 0x53)),
        FaddD => Ok(r(0b0000001, rs2, rs1, 7, rd, 0x53)),
        FsubD => Ok(r(0b0000101, rs2, rs1, 7, rd, 0x53)),
        FmulD => Ok(r(0b0001001, rs2, rs1, 7, rd, 0x53)),
        FdivD => Ok(r(0b0001101, rs2, rs1, 7, rd, 0x53)),
        FsqrtD => Ok(r(0b0101101, 0, rs1, 7, rd, 0x53)),
        FsgnjD => Ok(r(0b0010001, rs2, rs1, 0, rd, 0x53)),
        FsgnjnD => Ok(r(0b0010001, rs2, rs1, 1, rd, 0x53)),
        FsgnjxD => Ok(r(0b0010001, rs2, rs1, 2, rd, 0x53)),
        FminD => Ok(r(0b0010101, rs2, rs1, 0, rd, 0x53)),
        FmaxD => Ok(r(0b0010101, rs2, rs1, 1, rd, 0x53)),
        FcvtSD => Ok(r(0b0100000, 1, rs1, 7, rd, 0x53)),
        FcvtDS => Ok(r(0b0100001, 0, rs1, 7, rd, 0x53)),
        FeqD => Ok(r(0b1010001, rs2, rs1, 2, rd, 0x53)),
        FltD => Ok(r(0b1010001, rs2, rs1, 1, rd, 0x53)),
        FleD => Ok(r(0b1010001, rs2, rs1, 0, rd, 0x53)),
        FclassD => Ok(r(0b1110001, 0, rs1, 1, rd, 0x53)),
        FcvtWD => Ok(r(0b1100001, 0, rs1, 7, rd, 0x53)),
        FcvtWuD => Ok(r(0b1100001, 1, rs1, 7, rd, 0x53)),
        FcvtLD => Ok(r(0b1100001, 2, rs1, 7, rd, 0x53)),
        FcvtLuD => Ok(r(0b1100001, 3, rs1, 7, rd, 0x53)),
        FcvtDW => Ok(r(0b1101001, 0, rs1, 7, rd, 0x53)),
        FcvtDWu => Ok(r(0b1101001, 1, rs1, 7, rd, 0x53)),
        FcvtDL => Ok(r(0b1101001, 2, rs1, 7, rd, 0x53)),
        FcvtDLu => Ok(r(0b1101001, 3, rs1, 7, rd, 0x53)),
        FmvXD => Ok(r(0b1110001, 0, rs1, 0, rd, 0x53)),
        FmvDX => Ok(r(0b1111001, 0, rs1, 0, rd, 0x53)),
        Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => {
            if !(0..4096).contains(&imm) {
                Err("CSR address out of range")
            } else {
                let f3 = match inst.op {
                    Csrrw => 1,
                    Csrrs => 2,
                    Csrrc => 3,
                    Csrrwi => 5,
                    Csrrsi => 6,
                    _ => 7,
                };
                Ok(((imm as u32) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | 0x73)
            }
        }
        Mret => Ok(0x30200073),
        Sret => Ok(0x10200073),
        Wfi => Ok(0x10500073),
        SfenceVma => Ok(r(0b0001001, rs2, rs1, 0, 0, 0x73)),
        Vsetvli => {
            if !(0..2048).contains(&imm) {
                Err("vtypei out of range")
            } else {
                Ok(((imm as u32) << 20) | (rs1 << 15) | (7 << 12) | (rd << 7) | 0x57)
            }
        }
        Vsetvl => Ok(r(0b1000000, rs2, rs1, 7, rd, 0x57)),
        // Vector loads: LOAD-FP opcode, funct3=0b111, mop in bits 27:26.
        Vle => Ok(r(0b0000001, 0, rs1, 7, rd, 0x07)),
        Vlse => Ok(r(0b0000001 | (0b10 << 1), rs2, rs1, 7, rd, 0x07)),
        Vlxe => Ok(r(0b0000001 | (0b11 << 1), rs3, rs1, 7, rd, 0x07)),
        Vse => Ok(r(0b0000001, 0, rs1, 7, rs3, 0x27)),
        Vsse => Ok(r(0b0000001 | (0b10 << 1), rs2, rs1, 7, rs3, 0x27)),
        Vsxe => Ok(r(0b0000001 | (0b11 << 1), rs2, rs1, 7, rs3, 0x27)),
        VaddVI | VmvVI => {
            let (f6, f3) = vec_funct6(inst.op).unwrap();
            if !(-16..16).contains(&imm) {
                Err("vector immediate out of range")
            } else {
                Ok((f6 << 26) | (1 << 25) | (rs1 << 20) | (((imm as u32) & 0x1f) << 15) | (f3 << 12) | (rd << 7) | 0x57)
            }
        }
        op if vec_funct6(op).is_some() => {
            let (f6, f3) = vec_funct6(op).unwrap();
            // rs1 field = vs2 (bits 24:20); rs2 field = vs1/rs1 (bits 19:15).
            Ok((f6 << 26) | (1 << 25) | (rs1 << 20) | (rs2 << 15) | (f3 << 12) | (rd << 7) | 0x57)
        }
        op if custom_funct(op).is_some() => {
            let (f7, f3) = custom_funct(op).unwrap();
            match f3 {
                0 => {
                    // indexed load: shift amount in funct7 low 2 bits
                    if !(0..4).contains(&imm) {
                        Err("index shift out of range")
                    } else {
                        Ok(r(f7 | imm as u32, rs2, rs1, 0, rd, 0x0b))
                    }
                }
                1 => {
                    // indexed store: data register rs3 goes in the rd slot
                    if !(0..4).contains(&imm) {
                        Err("index shift out of range")
                    } else {
                        Ok(r(f7 | imm as u32, rs2, rs1, 1, rs3, 0x0b))
                    }
                }
                2 => {
                    if op == XAddsl {
                        if !(0..4).contains(&imm) {
                            Err("shift out of range")
                        } else {
                            Ok(r(f7 | imm as u32, rs2, rs1, 2, rd, 0x0b))
                        }
                    } else {
                        Ok(r(f7, rs2, rs1, 2, rd, 0x0b))
                    }
                }
                4 | 6 => Ok(r(f7, rs2, rs1, f3, rd, 0x0b)),
                5 => Ok(r(f7, rs2, rs1, 5, rd, 0x0b)),
                _ => Err("bad custom group"),
            }
        }
        // Custom-1 (0x2B): immediate-form extensions, funct3 selects the op.
        XExt | XExtu => {
            // imm12 = msb<<6 | lsb, in bits 31:20.
            let f3 = if inst.op == Op::XExt { 0 } else { 1 };
            if !(0..4096).contains(&imm) {
                Err("bit-field bounds out of range")
            } else {
                Ok(((imm as u32) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | 0x2b)
            }
        }
        XTst | XSrri => {
            if !(0..64).contains(&imm) {
                Err("shift amount out of range")
            } else {
                let f3 = if inst.op == Op::XTst { 2 } else { 3 };
                Ok((((imm as u32) & 0x3f) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | 0x2b)
            }
        }
        _ => Err("unencodable operation"),
    };
    word.map_err(err)
}

/// Attempts to compress `inst` into a 16-bit RVC encoding.
///
/// Returns `None` when no compressed form exists for the operands. The
/// subset covers the forms the XT-910's fetch-width evaluation cares about:
/// `c.addi`, `c.li`, `c.mv`, `c.add`, `c.j`, `c.jr`, `c.beqz/bnez`,
/// `c.lw/ld/sw/sd`, `c.slli`, and the register-pair ALU ops.
pub fn encode_compressed(inst: &Inst) -> Option<u16> {
    use Op::*;
    let rd = inst.rd as u16;
    let rs1 = inst.rs1 as u16;
    let rs2 = inst.rs2 as u16;
    let imm = inst.imm;
    let cr = |r: u16| -> Option<u16> { (8..16).contains(&r).then(|| r - 8) };
    match inst.op {
        Addi if rd == rs1 && rd != 0 && (-32..32).contains(&imm) => {
            // c.addi
            let i = imm as u16;
            Some(0x0001 | ((i >> 5 & 1) << 12) | (rd << 7) | ((i & 0x1f) << 2))
        }
        Addi if rs1 == 0 && rd != 0 && (-32..32).contains(&imm) => {
            // c.li
            let i = imm as u16;
            Some(0x4001 | ((i >> 5 & 1) << 12) | (rd << 7) | ((i & 0x1f) << 2))
        }
        Addiw if rd == rs1 && rd != 0 && (-32..32).contains(&imm) => {
            // c.addiw
            let i = imm as u16;
            Some(0x2001 | ((i >> 5 & 1) << 12) | (rd << 7) | ((i & 0x1f) << 2))
        }
        Add if rd == rs1 && rd != 0 && rs2 != 0 => Some(0x9002 | (rd << 7) | (rs2 << 2)),
        Add if rs1 == 0 && rd != 0 && rs2 != 0 => Some(0x8002 | (rd << 7) | (rs2 << 2)), // c.mv
        Slli if rd == rs1 && rd != 0 && (1..64).contains(&imm) => {
            let i = imm as u16;
            Some(0x0002 | ((i >> 5 & 1) << 12) | (rd << 7) | ((i & 0x1f) << 2))
        }
        Jalr if rd == 0 && imm == 0 && rs1 != 0 => Some(0x8002 | (rs1 << 7)), // c.jr
        Jalr if rd == 1 && imm == 0 && rs1 != 0 => Some(0x9002 | (rs1 << 7)), // c.jalr
        Jal if rd == 0 && (-2048..2048).contains(&imm) && imm & 1 == 0 => {
            // c.j
            let i = imm as u16;
            Some(
                0xA001
                    | ((i >> 11 & 1) << 12)
                    | ((i >> 4 & 1) << 11)
                    | ((i >> 8 & 3) << 9)
                    | ((i >> 10 & 1) << 8)
                    | ((i >> 6 & 1) << 7)
                    | ((i >> 7 & 1) << 6)
                    | ((i >> 1 & 7) << 3)
                    | ((i >> 5 & 1) << 2),
            )
        }
        Beq | Bne if rs2 == 0 && (-256..256).contains(&imm) && imm & 1 == 0 => {
            let r1 = cr(rs1)?;
            let i = imm as u16;
            let base = if inst.op == Beq { 0xC001 } else { 0xE001 };
            Some(
                base | ((i >> 8 & 1) << 12)
                    | ((i >> 3 & 3) << 10)
                    | (r1 << 7)
                    | ((i >> 6 & 3) << 5)
                    | ((i >> 1 & 3) << 3)
                    | ((i >> 5 & 1) << 2),
            )
        }
        Lw if (0..128).contains(&imm) && imm & 3 == 0 => {
            let (rdp, r1p) = (cr(rd)?, cr(rs1)?);
            let i = imm as u16;
            Some(0x4000 | ((i >> 3 & 7) << 10) | (r1p << 7) | ((i >> 2 & 1) << 6) | ((i >> 6 & 1) << 5) | (rdp << 2))
        }
        Ld if (0..256).contains(&imm) && imm & 7 == 0 => {
            let (rdp, r1p) = (cr(rd)?, cr(rs1)?);
            let i = imm as u16;
            Some(0x6000 | ((i >> 3 & 7) << 10) | (r1p << 7) | ((i >> 6 & 3) << 5) | (rdp << 2))
        }
        Sw if (0..128).contains(&imm) && imm & 3 == 0 => {
            let (r2p, r1p) = (cr(rs2)?, cr(rs1)?);
            let i = imm as u16;
            Some(0xC000 | ((i >> 3 & 7) << 10) | (r1p << 7) | ((i >> 2 & 1) << 6) | ((i >> 6 & 1) << 5) | (r2p << 2))
        }
        Sd if (0..256).contains(&imm) && imm & 7 == 0 => {
            let (r2p, r1p) = (cr(rs2)?, cr(rs1)?);
            let i = imm as u16;
            Some(0xE000 | ((i >> 3 & 7) << 10) | (r1p << 7) | ((i >> 6 & 3) << 5) | (r2p << 2))
        }
        Sub | Xor | Or | And | Subw | Addw if rd == rs1 => {
            let (rdp, r2p) = (cr(rd)?, cr(rs2)?);
            let (hi, f2) = match inst.op {
                Sub => (0x8C01u16, 0),
                Xor => (0x8C01, 1),
                Or => (0x8C01, 2),
                And => (0x8C01, 3),
                Subw => (0x9C01, 0),
                _ => (0x9C01, 1), // Addw
            };
            Some(hi | (rdp << 7) | (f2 << 5) | (r2p << 2))
        }
        Andi if rd == rs1 && (-32..32).contains(&imm) => {
            let rdp = cr(rd)?;
            let i = imm as u16;
            Some(0x8801 | ((i >> 5 & 1) << 12) | (rdp << 7) | ((i & 0x1f) << 2))
        }
        Srli | Srai if rd == rs1 && (1..64).contains(&imm) => {
            let rdp = cr(rd)?;
            let i = imm as u16;
            let f2 = if inst.op == Srli { 0u16 } else { 1 };
            Some(0x8001 | ((i >> 5 & 1) << 12) | (f2 << 10) | (rdp << 7) | ((i & 0x1f) << 2))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addi_known_encoding() {
        let i = Inst::new(Op::Addi).rd(5).rs1(6).imm(42);
        assert_eq!(encode(&i).unwrap(), 0x02A30293);
    }

    #[test]
    fn lui_alignment_checked() {
        let bad = Inst::new(Op::Lui).rd(1).imm(0x123);
        assert!(encode(&bad).is_err());
        let good = Inst::new(Op::Lui).rd(1).imm(0x12000);
        assert!(encode(&good).is_ok());
    }

    #[test]
    fn branch_range_checked() {
        let far = Inst::new(Op::Beq).rs1(1).rs2(2).imm(1 << 14);
        assert!(encode(&far).is_err());
        let odd = Inst::new(Op::Beq).rs1(1).rs2(2).imm(3);
        assert!(encode(&odd).is_err());
    }

    #[test]
    fn compressed_addi() {
        // c.addi x8, 4
        let i = Inst::new(Op::Addi).rd(8).rs1(8).imm(4);
        let c = encode_compressed(&i).unwrap();
        assert_eq!(c & 3, 1, "quadrant 1");
    }

    #[test]
    fn compressed_rejects_wide_imm() {
        let i = Inst::new(Op::Addi).rd(8).rs1(8).imm(400);
        assert!(encode_compressed(&i).is_none());
    }
}
