//! Control and status register (CSR) addresses used by the simulator.
//!
//! The XT-910 implements the standard machine/supervisor/user CSR file
//! (paper Fig. 1) plus the vector CSRs of RVV 0.7.1. Only the CSRs the
//! workspace actually exercises are listed; the emulator stores the rest in
//! a generic map.

/// User floating-point flags.
pub const FFLAGS: u16 = 0x001;
/// FP dynamic rounding mode.
pub const FRM: u16 = 0x002;
/// Combined fcsr.
pub const FCSR: u16 = 0x003;

/// Cycle counter (read-only shadow).
pub const CYCLE: u16 = 0xC00;
/// Time counter.
pub const TIME: u16 = 0xC01;
/// Retired-instruction counter.
pub const INSTRET: u16 = 0xC02;

/// Vector start index (RVV 0.7.1).
pub const VSTART: u16 = 0x008;
/// Vector length.
pub const VL: u16 = 0xC20;
/// Vector type (vsew/vlmul).
pub const VTYPE: u16 = 0xC21;

/// Supervisor status.
pub const SSTATUS: u16 = 0x100;
/// Supervisor trap vector.
pub const STVEC: u16 = 0x105;
/// Supervisor scratch.
pub const SSCRATCH: u16 = 0x140;
/// Supervisor exception PC.
pub const SEPC: u16 = 0x141;
/// Supervisor trap cause.
pub const SCAUSE: u16 = 0x142;
/// Supervisor trap value.
pub const STVAL: u16 = 0x143;
/// Supervisor address translation and protection (SV39 root + 16-bit ASID).
pub const SATP: u16 = 0x180;

/// Machine status.
pub const MSTATUS: u16 = 0x300;
/// Machine ISA register.
pub const MISA: u16 = 0x301;
/// Machine interrupt enable.
pub const MIE: u16 = 0x304;
/// Machine trap vector.
pub const MTVEC: u16 = 0x305;
/// Machine scratch.
pub const MSCRATCH: u16 = 0x340;
/// Machine exception PC.
pub const MEPC: u16 = 0x341;
/// Machine trap cause.
pub const MCAUSE: u16 = 0x342;
/// Machine trap value.
pub const MTVAL: u16 = 0x343;
/// Machine interrupt pending.
pub const MIP: u16 = 0x344;
/// Machine hart id.
pub const MHARTID: u16 = 0xF14;

/// Fields of `mstatus` (and the `sstatus` shadow bits) used by the trap
/// machinery (privileged spec §3.1.6).
pub mod mstatus {
    /// Supervisor interrupt enable.
    pub const SIE: u64 = 1 << 1;
    /// Machine interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Supervisor previous interrupt enable.
    pub const SPIE: u64 = 1 << 5;
    /// Machine previous interrupt enable.
    pub const MPIE: u64 = 1 << 7;
    /// Supervisor previous privilege (one bit: U or S).
    pub const SPP: u64 = 1 << 8;
    /// Machine previous privilege field shift (two bits at 12:11).
    pub const MPP_SHIFT: u32 = 11;
    /// Machine previous privilege field mask.
    pub const MPP_MASK: u64 = 3 << MPP_SHIFT;
}

/// Interrupt numbers as they appear in `mip`/`mie` bit positions and in
/// `mcause` (with [`mcause::INTERRUPT`] set).
pub mod irq {
    /// Machine software interrupt (CLINT `msip`).
    pub const MSI: u64 = 3;
    /// Machine timer interrupt (CLINT `mtime >= mtimecmp`).
    pub const MTI: u64 = 7;
    /// Machine external interrupt (PLIC).
    pub const MEI: u64 = 11;
}

/// Fields of `mcause`.
pub mod mcause {
    /// Set when the trap is an asynchronous interrupt.
    pub const INTERRUPT: u64 = 1 << 63;
}

/// Fields of `mtvec` (privileged spec §3.1.7).
pub mod mtvec {
    /// Mode bits mask (1:0).
    pub const MODE_MASK: u64 = 3;
    /// Direct mode: all traps jump to `base`.
    pub const MODE_DIRECT: u64 = 0;
    /// Vectored mode: interrupts jump to `base + 4*cause`.
    pub const MODE_VECTORED: u64 = 1;

    /// Extracts the (4-byte aligned) vector base.
    pub fn base(v: u64) -> u64 {
        v & !MODE_MASK
    }

    /// Extracts the mode field.
    pub fn mode(v: u64) -> u64 {
        v & MODE_MASK
    }
}

/// Fields of `satp` for SV39 with the XT-910's widened 16-bit ASID (§V-E).
pub mod satp {
    /// Translation mode: bare (no translation).
    pub const MODE_BARE: u64 = 0;
    /// Translation mode: SV39.
    pub const MODE_SV39: u64 = 8;

    /// Extracts the mode field (bits 63:60).
    pub fn mode(v: u64) -> u64 {
        v >> 60
    }

    /// Extracts the ASID. The standard allots 16 bits (bits 59:44); the
    /// XT-910 implements all 16 (many contemporaries wired only 9),
    /// which is what drives the 10x flush reduction of §V-E.
    pub fn asid(v: u64) -> u16 {
        ((v >> 44) & 0xffff) as u16
    }

    /// Extracts the root page-table PPN.
    pub fn ppn(v: u64) -> u64 {
        v & 0xfff_ffff_ffff
    }

    /// Builds a `satp` value.
    pub fn pack(mode: u64, asid: u16, ppn: u64) -> u64 {
        (mode << 60) | ((asid as u64) << 44) | (ppn & 0xfff_ffff_ffff)
    }
}

/// Human-readable CSR name for disassembly, if known.
pub fn name(addr: u16) -> Option<&'static str> {
    Some(match addr {
        FFLAGS => "fflags",
        FRM => "frm",
        FCSR => "fcsr",
        CYCLE => "cycle",
        TIME => "time",
        INSTRET => "instret",
        VSTART => "vstart",
        VL => "vl",
        VTYPE => "vtype",
        SSTATUS => "sstatus",
        STVEC => "stvec",
        SSCRATCH => "sscratch",
        SEPC => "sepc",
        SCAUSE => "scause",
        STVAL => "stval",
        SATP => "satp",
        MSTATUS => "mstatus",
        MISA => "misa",
        MTVEC => "mtvec",
        MSCRATCH => "mscratch",
        MEPC => "mepc",
        MCAUSE => "mcause",
        MTVAL => "mtval",
        MHARTID => "mhartid",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satp_pack_roundtrip() {
        let v = satp::pack(satp::MODE_SV39, 0xBEEF, 0x12345);
        assert_eq!(satp::mode(v), satp::MODE_SV39);
        assert_eq!(satp::asid(v), 0xBEEF);
        assert_eq!(satp::ppn(v), 0x12345);
    }

    #[test]
    fn known_names() {
        assert_eq!(name(SATP), Some("satp"));
        assert_eq!(name(0x7FF), None);
    }
}
