//! The operation (`Op`) enumeration and its static properties.
//!
//! Every instruction the simulator understands — RV64IMAFDC, Zicsr,
//! privileged, RVV 0.7.1 subset, and the XT-910 custom extensions — is one
//! variant of [`Op`]. Operand *values* live in [`crate::inst::Inst`]; this
//! module captures the operand *shape* (which register files are read and
//! written) and the execution class used by the timing models.

/// Which register file an operand lives in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegFile {
    /// Integer GPRs `x0..x31`.
    Int,
    /// Floating-point registers `f0..f31`.
    Fp,
    /// Vector registers `v0..v31`.
    Vec,
    /// No register.
    None,
}

/// Functional-unit class, used by the timing models to route a µop to an
/// execution pipe and to look up its latency (paper §IV, §VII).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExecClass {
    /// Single-cycle integer ALU op (2 pipes on XT-910).
    Alu,
    /// Integer multiply (shares the ALU pipe pair on XT-910, 3-4 cycles).
    Mul,
    /// Integer divide / remainder (shares the multi-cycle ALU pipe).
    Div,
    /// Conditional branch, resolved in the branch-jump unit.
    Branch,
    /// Unconditional jump / call (`jal`).
    Jump,
    /// Indirect jump / return (`jalr`).
    JumpInd,
    /// Memory load (load pipe of the dual-issue LSU).
    Load,
    /// Memory store (split into st.addr + st.data µops, paper §V-B).
    Store,
    /// Atomic memory operation / LR / SC.
    Amo,
    /// Memory/pipeline fence.
    Fence,
    /// Scalar FP add/sub/compare/min/max/sign-inject.
    FpAdd,
    /// Scalar FP multiply and fused multiply-add.
    FpMul,
    /// Scalar FP divide / square root (iterative).
    FpDiv,
    /// Scalar FP conversion / move between register files.
    FpCvt,
    /// CSR access (serializing).
    Csr,
    /// Vector configuration (`vsetvl`/`vsetvli`) — speculated by XT-910.
    VSet,
    /// Vector integer ALU (3-4 cycles per §VII).
    VecAlu,
    /// Vector integer / FP multiply or MAC (5 cycles for FP mul).
    VecMul,
    /// Vector divide (6-25 cycles).
    VecDiv,
    /// Vector FP add-class op.
    VecFAdd,
    /// Vector load.
    VecLoad,
    /// Vector store.
    VecStore,
    /// Vector reduction / permutation (crosses slices).
    VecPerm,
    /// System instruction (ecall/ebreak/mret/sret/wfi) — serializing.
    System,
    /// Cache/TLB maintenance hint (XT-910 extension).
    CacheOp,
}

impl ExecClass {
    /// Whether this class executes in the vector unit.
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            ExecClass::VecAlu
                | ExecClass::VecMul
                | ExecClass::VecDiv
                | ExecClass::VecFAdd
                | ExecClass::VecLoad
                | ExecClass::VecStore
                | ExecClass::VecPerm
        )
    }

    /// Whether this class accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            ExecClass::Load
                | ExecClass::Store
                | ExecClass::Amo
                | ExecClass::VecLoad
                | ExecClass::VecStore
        )
    }

    /// Whether this class changes control flow.
    pub fn is_ctrl(self) -> bool {
        matches!(
            self,
            ExecClass::Branch | ExecClass::Jump | ExecClass::JumpInd
        )
    }
}

/// Every operation of the simulated ISA.
///
/// Naming follows the assembly mnemonic, camel-cased; `W`-suffixed variants
/// are the RV64 32-bit-result forms. Custom XT-910 extension operations are
/// prefixed with `X`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variants mirror standard mnemonics
pub enum Op {
    // ---- RV32I/RV64I base ----
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
    Sb,
    Sh,
    Sw,
    Sd,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Fence,
    FenceI,
    Ecall,
    Ebreak,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    // ---- M extension ----
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
    // ---- A extension ----
    LrW,
    LrD,
    ScW,
    ScD,
    AmoSwapW,
    AmoAddW,
    AmoXorW,
    AmoAndW,
    AmoOrW,
    AmoMinW,
    AmoMaxW,
    AmoMinuW,
    AmoMaxuW,
    AmoSwapD,
    AmoAddD,
    AmoXorD,
    AmoAndD,
    AmoOrD,
    AmoMinD,
    AmoMaxD,
    AmoMinuD,
    AmoMaxuD,
    // ---- F extension (single-precision) ----
    Flw,
    Fsw,
    FmaddS,
    FmsubS,
    FnmsubS,
    FnmaddS,
    FaddS,
    FsubS,
    FmulS,
    FdivS,
    FsqrtS,
    FsgnjS,
    FsgnjnS,
    FsgnjxS,
    FminS,
    FmaxS,
    FcvtWS,
    FcvtWuS,
    FcvtLS,
    FcvtLuS,
    FmvXW,
    FeqS,
    FltS,
    FleS,
    FclassS,
    FcvtSW,
    FcvtSWu,
    FcvtSL,
    FcvtSLu,
    FmvWX,
    // ---- D extension (double-precision) ----
    Fld,
    Fsd,
    FmaddD,
    FmsubD,
    FnmsubD,
    FnmaddD,
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FsqrtD,
    FsgnjD,
    FsgnjnD,
    FsgnjxD,
    FminD,
    FmaxD,
    FcvtSD,
    FcvtDS,
    FeqD,
    FltD,
    FleD,
    FclassD,
    FcvtWD,
    FcvtWuD,
    FcvtLD,
    FcvtLuD,
    FcvtDW,
    FcvtDWu,
    FcvtDL,
    FcvtDLu,
    FmvXD,
    FmvDX,
    // ---- Zicsr ----
    Csrrw,
    Csrrs,
    Csrrc,
    Csrrwi,
    Csrrsi,
    Csrrci,
    // ---- privileged ----
    Mret,
    Sret,
    Wfi,
    SfenceVma,
    // ---- RVV 0.7.1 subset ----
    /// `vsetvli rd, rs1, vtypei`
    Vsetvli,
    /// `vsetvl rd, rs1, rs2`
    Vsetvl,
    /// Unit-stride vector load of SEW-sized elements (`vle.v` in 0.7.1).
    Vle,
    /// Unit-stride vector store.
    Vse,
    /// Strided vector load (`vlse.v`); stride in rs2 (bytes).
    Vlse,
    /// Strided vector store.
    Vsse,
    /// Indexed (gather) vector load (`vlxe.v`); indices in vs2.
    Vlxe,
    /// Indexed (scatter) vector store.
    Vsxe,
    VaddVV,
    VaddVX,
    VaddVI,
    VsubVV,
    VsubVX,
    VrsubVX,
    VandVV,
    VandVX,
    VorVV,
    VorVX,
    VxorVV,
    VxorVX,
    VsllVV,
    VsllVX,
    VsrlVV,
    VsrlVX,
    VsraVV,
    VsraVX,
    VminVV,
    VminuVV,
    VmaxVV,
    VmaxuVV,
    VmulVV,
    VmulVX,
    VmulhVV,
    VmaccVV,
    VmaccVX,
    VnmsacVV,
    VdivVV,
    VdivuVV,
    VremVV,
    /// Widening integer multiply (SEW → 2·SEW).
    VwmulVV,
    VwmuluVV,
    /// Widening multiply-accumulate (the 16-bit-MAC workhorse, §X).
    VwmaccVV,
    VwmaccuVV,
    /// Integer reduction sum (`vredsum.vs`).
    VredsumVS,
    VredmaxVS,
    VmvVV,
    VmvVX,
    VmvVI,
    /// Move scalar from vector element 0 (`vmv.x.s` / `vext.x.v` in 0.7.1).
    VmvXS,
    VmvSX,
    /// Slide down by scalar amount (cross-slice permutation).
    Vslidedown,
    Vslideup,
    // vector FP
    VfaddVV,
    VfaddVF,
    VfsubVV,
    VfmulVV,
    VfmulVF,
    VfdivVV,
    VfmaccVV,
    VfmaccVF,
    VfnmsacVV,
    VfminVV,
    VfmaxVV,
    VfredsumVS,
    VfsqrtV,
    // ---- XT-910 custom extensions (§VIII) ----
    /// Indexed load byte: `xlrb rd, rs1, rs2, shift` — `rd = sext(mem8[rs1 + (rs2 << shift)])`.
    XLrb,
    XLrbu,
    XLrh,
    XLrhu,
    XLrw,
    XLrwu,
    XLrd,
    /// Indexed store: `xsrb rs2v, rs1, rs2, shift`.
    XSrb,
    XSrh,
    XSrw,
    XSrd,
    /// Indexed load with zero-extended 32-bit index (`rd = mem[rs1 + (zext32(rs2) << shift)]`).
    XLurw,
    XLurd,
    /// `xaddsl rd, rs1, rs2, shift` — `rd = rs1 + (rs2 << shift)` (address fusion).
    XAddsl,
    /// Zero-extending word add for address generation: `rd = rs1 + zext32(rs2)` (§VIII-A).
    XAdduw,
    /// Zero-extend word: `rd = zext32(rs1)`.
    XZextw,
    /// Bit-field extract signed: `xext rd, rs1, msb, lsb`.
    XExt,
    /// Bit-field extract unsigned.
    XExtu,
    /// Find first zero bit from MSB.
    XFf0,
    /// Find first one bit from MSB.
    XFf1,
    /// Byte-reverse (64-bit).
    XRev,
    /// Test bit `imm`: `rd = (rs1 >> imm) & 1`.
    XTst,
    /// Rotate right immediate.
    XSrri,
    /// Conditional move if zero: `rd = (rs2 == 0) ? rs1 : rd`.
    XMveqz,
    /// Conditional move if non-zero.
    XMvnez,
    /// Multiply-add: `rd += rs1 * rs2`.
    XMula,
    /// Multiply-subtract: `rd -= rs1 * rs2`.
    XMuls,
    /// 32-bit multiply-add (result sign-extended).
    XMulaw,
    XMulsw,
    /// 16-bit multiply-add: `rd += sext16(rs1) * sext16(rs2)`.
    XMulah,
    XMulsh,
    /// D-cache clean+invalidate all (privileged maintenance hint).
    XDcacheCall,
    /// D-cache invalidate by VA (hint).
    XDcacheCva,
    /// I-cache invalidate all (hint).
    XIcacheIall,
    /// TLB maintenance broadcast over the coherence interconnect (§V-E).
    XTlbBroadcast,
    /// Full pipeline/memory synchronization barrier.
    XSync,
}

/// How many source/destination register operands an [`Op`] has and where
/// they live. Produced by [`Op::traits_of`].
#[derive(Clone, Copy, Debug)]
pub struct OpTraits {
    /// Execution class for pipe routing and latency.
    pub class: ExecClass,
    /// Register file of the destination (`RegFile::None` if no dest).
    pub rd: RegFile,
    /// Register file of source 1.
    pub rs1: RegFile,
    /// Register file of source 2.
    pub rs2: RegFile,
    /// Register file of source 3 (FMA and vector MAC read a third source;
    /// for vector MAC it is the destination accumulator).
    pub rs3: RegFile,
}

impl OpTraits {
    const fn new(class: ExecClass, rd: RegFile, rs1: RegFile, rs2: RegFile, rs3: RegFile) -> Self {
        Self {
            class,
            rd,
            rs1,
            rs2,
            rs3,
        }
    }
}

use ExecClass as C;
use RegFile::{Fp, Int, None as NoR, Vec as Vc};

impl Op {
    /// Static operand/class information for this operation.
    pub fn traits_of(self) -> OpTraits {
        use Op::*;
        let t = OpTraits::new;
        match self {
            Lui => t(C::Alu, Int, NoR, NoR, NoR),
            Auipc => t(C::Alu, Int, NoR, NoR, NoR),
            Jal => t(C::Jump, Int, NoR, NoR, NoR),
            Jalr => t(C::JumpInd, Int, Int, NoR, NoR),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => t(C::Branch, NoR, Int, Int, NoR),
            Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => t(C::Load, Int, Int, NoR, NoR),
            Sb | Sh | Sw | Sd => t(C::Store, NoR, Int, Int, NoR),
            Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai | Addiw | Slliw
            | Srliw | Sraiw => t(C::Alu, Int, Int, NoR, NoR),
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Addw | Subw | Sllw
            | Srlw | Sraw => t(C::Alu, Int, Int, Int, NoR),
            Fence | FenceI => t(C::Fence, NoR, NoR, NoR, NoR),
            Ecall | Ebreak | Mret | Sret | Wfi => t(C::System, NoR, NoR, NoR, NoR),
            SfenceVma => t(C::Fence, NoR, Int, Int, NoR),
            Mul | Mulh | Mulhsu | Mulhu | Mulw => t(C::Mul, Int, Int, Int, NoR),
            Div | Divu | Rem | Remu | Divw | Divuw | Remw | Remuw => t(C::Div, Int, Int, Int, NoR),
            LrW | LrD => t(C::Amo, Int, Int, NoR, NoR),
            ScW | ScD => t(C::Amo, Int, Int, Int, NoR),
            AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW | AmoMinuW
            | AmoMaxuW | AmoSwapD | AmoAddD | AmoXorD | AmoAndD | AmoOrD | AmoMinD | AmoMaxD
            | AmoMinuD | AmoMaxuD => t(C::Amo, Int, Int, Int, NoR),
            Flw | Fld => t(C::Load, Fp, Int, NoR, NoR),
            Fsw | Fsd => t(C::Store, NoR, Int, Fp, NoR),
            FmaddS | FmsubS | FnmsubS | FnmaddS | FmaddD | FmsubD | FnmsubD | FnmaddD => {
                t(C::FpMul, Fp, Fp, Fp, Fp)
            }
            FaddS | FsubS | FaddD | FsubD | FsgnjS | FsgnjnS | FsgnjxS | FsgnjD | FsgnjnD
            | FsgnjxD | FminS | FmaxS | FminD | FmaxD => t(C::FpAdd, Fp, Fp, Fp, NoR),
            FmulS | FmulD => t(C::FpMul, Fp, Fp, Fp, NoR),
            FdivS | FdivD => t(C::FpDiv, Fp, Fp, Fp, NoR),
            FsqrtS | FsqrtD => t(C::FpDiv, Fp, Fp, NoR, NoR),
            FeqS | FltS | FleS | FeqD | FltD | FleD => t(C::FpAdd, Int, Fp, Fp, NoR),
            FclassS | FclassD => t(C::FpCvt, Int, Fp, NoR, NoR),
            FcvtWS | FcvtWuS | FcvtLS | FcvtLuS | FcvtWD | FcvtWuD | FcvtLD | FcvtLuD | FmvXW
            | FmvXD => t(C::FpCvt, Int, Fp, NoR, NoR),
            FcvtSW | FcvtSWu | FcvtSL | FcvtSLu | FcvtDW | FcvtDWu | FcvtDL | FcvtDLu | FmvWX
            | FmvDX => t(C::FpCvt, Fp, Int, NoR, NoR),
            FcvtSD | FcvtDS => t(C::FpCvt, Fp, Fp, NoR, NoR),
            Csrrw | Csrrs | Csrrc => t(C::Csr, Int, Int, NoR, NoR),
            Csrrwi | Csrrsi | Csrrci => t(C::Csr, Int, NoR, NoR, NoR),
            Vsetvli => t(C::VSet, Int, Int, NoR, NoR),
            Vsetvl => t(C::VSet, Int, Int, Int, NoR),
            Vle | Vlse | Vlxe => t(
                C::VecLoad,
                Vc,
                Int,
                if matches!(self, Vlse) { Int } else { NoR },
                if matches!(self, Vlxe) { Vc } else { NoR },
            ),
            Vse | Vsse | Vsxe => t(
                C::VecStore,
                NoR,
                Int,
                match self {
                    Vsse => Int, // stride register
                    Vsxe => Vc,  // index vector register
                    _ => NoR,
                },
                Vc, // data register (vs3)
            ),
            VaddVV | VsubVV | VandVV | VorVV | VxorVV | VsllVV | VsrlVV | VsraVV | VminVV
            | VminuVV | VmaxVV | VmaxuVV => t(C::VecAlu, Vc, Vc, Vc, NoR),
            VaddVX | VsubVX | VrsubVX | VandVX | VorVX | VxorVX | VsllVX | VsrlVX | VsraVX => {
                t(C::VecAlu, Vc, Vc, Int, NoR)
            }
            VaddVI => t(C::VecAlu, Vc, Vc, NoR, NoR),
            VmulVV | VmulhVV | VwmulVV | VwmuluVV => t(C::VecMul, Vc, Vc, Vc, NoR),
            VmulVX => t(C::VecMul, Vc, Vc, Int, NoR),
            VmaccVV | VnmsacVV | VwmaccVV | VwmaccuVV => t(C::VecMul, Vc, Vc, Vc, Vc),
            VmaccVX => t(C::VecMul, Vc, Vc, Int, Vc),
            VdivVV | VdivuVV | VremVV => t(C::VecDiv, Vc, Vc, Vc, NoR),
            VredsumVS | VredmaxVS => t(C::VecPerm, Vc, Vc, Vc, NoR),
            VmvVV => t(C::VecAlu, Vc, Vc, NoR, NoR),
            VmvVX => t(C::VecAlu, Vc, Int, NoR, NoR),
            VmvVI => t(C::VecAlu, Vc, NoR, NoR, NoR),
            VmvXS => t(C::VecPerm, Int, Vc, NoR, NoR),
            VmvSX => t(C::VecPerm, Vc, Int, NoR, NoR),
            Vslidedown | Vslideup => t(C::VecPerm, Vc, Vc, Int, NoR),
            VfaddVV | VfsubVV | VfminVV | VfmaxVV => t(C::VecFAdd, Vc, Vc, Vc, NoR),
            VfaddVF => t(C::VecFAdd, Vc, Vc, Fp, NoR),
            VfmulVV => t(C::VecMul, Vc, Vc, Vc, NoR),
            VfmulVF => t(C::VecMul, Vc, Vc, Fp, NoR),
            VfdivVV | VfsqrtV => t(C::VecDiv, Vc, Vc, if matches!(self, VfdivVV) { Vc } else { NoR }, NoR),
            VfmaccVV | VfnmsacVV => t(C::VecMul, Vc, Vc, Vc, Vc),
            VfmaccVF => t(C::VecMul, Vc, Vc, Fp, Vc),
            VfredsumVS => t(C::VecPerm, Vc, Vc, Vc, NoR),
            XLrb | XLrbu | XLrh | XLrhu | XLrw | XLrwu | XLrd | XLurw | XLurd => {
                t(C::Load, Int, Int, Int, NoR)
            }
            XSrb | XSrh | XSrw | XSrd => t(C::Store, NoR, Int, Int, Int),
            XAddsl | XAdduw => t(C::Alu, Int, Int, Int, NoR),
            XZextw | XExt | XExtu | XFf0 | XFf1 | XRev | XTst | XSrri => {
                t(C::Alu, Int, Int, NoR, NoR)
            }
            XMveqz | XMvnez => t(C::Alu, Int, Int, Int, Int),
            XMula | XMuls | XMulaw | XMulsw | XMulah | XMulsh => t(C::Mul, Int, Int, Int, Int),
            XDcacheCall | XIcacheIall => t(C::CacheOp, NoR, NoR, NoR, NoR),
            XDcacheCva => t(C::CacheOp, NoR, Int, NoR, NoR),
            XTlbBroadcast => t(C::CacheOp, NoR, Int, Int, NoR),
            XSync => t(C::Fence, NoR, NoR, NoR, NoR),
        }
    }

    /// Execution class shortcut.
    pub fn exec_class(self) -> ExecClass {
        self.traits_of().class
    }

    /// Whether this op is one of the XT-910 custom (non-standard) extensions.
    pub fn is_custom(self) -> bool {
        self.mnemonic().starts_with("x.")
    }

    /// Whether this op belongs to the vector extension.
    pub fn is_vector(self) -> bool {
        self.exec_class().is_vector() || matches!(self, Op::Vsetvl | Op::Vsetvli)
    }

    /// Assembly mnemonic (lower-case, dotted).
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Lui => "lui",
            Auipc => "auipc",
            Jal => "jal",
            Jalr => "jalr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Lb => "lb",
            Lh => "lh",
            Lw => "lw",
            Ld => "ld",
            Lbu => "lbu",
            Lhu => "lhu",
            Lwu => "lwu",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Fence => "fence",
            FenceI => "fence.i",
            Ecall => "ecall",
            Ebreak => "ebreak",
            Addiw => "addiw",
            Slliw => "slliw",
            Srliw => "srliw",
            Sraiw => "sraiw",
            Addw => "addw",
            Subw => "subw",
            Sllw => "sllw",
            Srlw => "srlw",
            Sraw => "sraw",
            Mul => "mul",
            Mulh => "mulh",
            Mulhsu => "mulhsu",
            Mulhu => "mulhu",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
            Mulw => "mulw",
            Divw => "divw",
            Divuw => "divuw",
            Remw => "remw",
            Remuw => "remuw",
            LrW => "lr.w",
            LrD => "lr.d",
            ScW => "sc.w",
            ScD => "sc.d",
            AmoSwapW => "amoswap.w",
            AmoAddW => "amoadd.w",
            AmoXorW => "amoxor.w",
            AmoAndW => "amoand.w",
            AmoOrW => "amoor.w",
            AmoMinW => "amomin.w",
            AmoMaxW => "amomax.w",
            AmoMinuW => "amominu.w",
            AmoMaxuW => "amomaxu.w",
            AmoSwapD => "amoswap.d",
            AmoAddD => "amoadd.d",
            AmoXorD => "amoxor.d",
            AmoAndD => "amoand.d",
            AmoOrD => "amoor.d",
            AmoMinD => "amomin.d",
            AmoMaxD => "amomax.d",
            AmoMinuD => "amominu.d",
            AmoMaxuD => "amomaxu.d",
            Flw => "flw",
            Fsw => "fsw",
            FmaddS => "fmadd.s",
            FmsubS => "fmsub.s",
            FnmsubS => "fnmsub.s",
            FnmaddS => "fnmadd.s",
            FaddS => "fadd.s",
            FsubS => "fsub.s",
            FmulS => "fmul.s",
            FdivS => "fdiv.s",
            FsqrtS => "fsqrt.s",
            FsgnjS => "fsgnj.s",
            FsgnjnS => "fsgnjn.s",
            FsgnjxS => "fsgnjx.s",
            FminS => "fmin.s",
            FmaxS => "fmax.s",
            FcvtWS => "fcvt.w.s",
            FcvtWuS => "fcvt.wu.s",
            FcvtLS => "fcvt.l.s",
            FcvtLuS => "fcvt.lu.s",
            FmvXW => "fmv.x.w",
            FeqS => "feq.s",
            FltS => "flt.s",
            FleS => "fle.s",
            FclassS => "fclass.s",
            FcvtSW => "fcvt.s.w",
            FcvtSWu => "fcvt.s.wu",
            FcvtSL => "fcvt.s.l",
            FcvtSLu => "fcvt.s.lu",
            FmvWX => "fmv.w.x",
            Fld => "fld",
            Fsd => "fsd",
            FmaddD => "fmadd.d",
            FmsubD => "fmsub.d",
            FnmsubD => "fnmsub.d",
            FnmaddD => "fnmadd.d",
            FaddD => "fadd.d",
            FsubD => "fsub.d",
            FmulD => "fmul.d",
            FdivD => "fdiv.d",
            FsqrtD => "fsqrt.d",
            FsgnjD => "fsgnj.d",
            FsgnjnD => "fsgnjn.d",
            FsgnjxD => "fsgnjx.d",
            FminD => "fmin.d",
            FmaxD => "fmax.d",
            FcvtSD => "fcvt.s.d",
            FcvtDS => "fcvt.d.s",
            FeqD => "feq.d",
            FltD => "flt.d",
            FleD => "fle.d",
            FclassD => "fclass.d",
            FcvtWD => "fcvt.w.d",
            FcvtWuD => "fcvt.wu.d",
            FcvtLD => "fcvt.l.d",
            FcvtLuD => "fcvt.lu.d",
            FcvtDW => "fcvt.d.w",
            FcvtDWu => "fcvt.d.wu",
            FcvtDL => "fcvt.d.l",
            FcvtDLu => "fcvt.d.lu",
            FmvXD => "fmv.x.d",
            FmvDX => "fmv.d.x",
            Csrrw => "csrrw",
            Csrrs => "csrrs",
            Csrrc => "csrrc",
            Csrrwi => "csrrwi",
            Csrrsi => "csrrsi",
            Csrrci => "csrrci",
            Mret => "mret",
            Sret => "sret",
            Wfi => "wfi",
            SfenceVma => "sfence.vma",
            Vsetvli => "vsetvli",
            Vsetvl => "vsetvl",
            Vle => "vle.v",
            Vse => "vse.v",
            Vlse => "vlse.v",
            Vsse => "vsse.v",
            Vlxe => "vlxe.v",
            Vsxe => "vsxe.v",
            VaddVV => "vadd.vv",
            VaddVX => "vadd.vx",
            VaddVI => "vadd.vi",
            VsubVV => "vsub.vv",
            VsubVX => "vsub.vx",
            VrsubVX => "vrsub.vx",
            VandVV => "vand.vv",
            VandVX => "vand.vx",
            VorVV => "vor.vv",
            VorVX => "vor.vx",
            VxorVV => "vxor.vv",
            VxorVX => "vxor.vx",
            VsllVV => "vsll.vv",
            VsllVX => "vsll.vx",
            VsrlVV => "vsrl.vv",
            VsrlVX => "vsrl.vx",
            VsraVV => "vsra.vv",
            VsraVX => "vsra.vx",
            VminVV => "vmin.vv",
            VminuVV => "vminu.vv",
            VmaxVV => "vmax.vv",
            VmaxuVV => "vmaxu.vv",
            VmulVV => "vmul.vv",
            VmulVX => "vmul.vx",
            VmulhVV => "vmulh.vv",
            VmaccVV => "vmacc.vv",
            VmaccVX => "vmacc.vx",
            VnmsacVV => "vnmsac.vv",
            VdivVV => "vdiv.vv",
            VdivuVV => "vdivu.vv",
            VremVV => "vrem.vv",
            VwmulVV => "vwmul.vv",
            VwmuluVV => "vwmulu.vv",
            VwmaccVV => "vwmacc.vv",
            VwmaccuVV => "vwmaccu.vv",
            VredsumVS => "vredsum.vs",
            VredmaxVS => "vredmax.vs",
            VmvVV => "vmv.v.v",
            VmvVX => "vmv.v.x",
            VmvVI => "vmv.v.i",
            VmvXS => "vmv.x.s",
            VmvSX => "vmv.s.x",
            Vslidedown => "vslidedown.vx",
            Vslideup => "vslideup.vx",
            VfaddVV => "vfadd.vv",
            VfaddVF => "vfadd.vf",
            VfsubVV => "vfsub.vv",
            VfmulVV => "vfmul.vv",
            VfmulVF => "vfmul.vf",
            VfdivVV => "vfdiv.vv",
            VfmaccVV => "vfmacc.vv",
            VfmaccVF => "vfmacc.vf",
            VfnmsacVV => "vfnmsac.vv",
            VfminVV => "vfmin.vv",
            VfmaxVV => "vfmax.vv",
            VfredsumVS => "vfredsum.vs",
            VfsqrtV => "vfsqrt.v",
            XLrb => "x.lrb",
            XLrbu => "x.lrbu",
            XLrh => "x.lrh",
            XLrhu => "x.lrhu",
            XLrw => "x.lrw",
            XLrwu => "x.lrwu",
            XLrd => "x.lrd",
            XSrb => "x.srb",
            XSrh => "x.srh",
            XSrw => "x.srw",
            XSrd => "x.srd",
            XLurw => "x.lurw",
            XLurd => "x.lurd",
            XAddsl => "x.addsl",
            XAdduw => "x.adduw",
            XZextw => "x.zextw",
            XExt => "x.ext",
            XExtu => "x.extu",
            XFf0 => "x.ff0",
            XFf1 => "x.ff1",
            XRev => "x.rev",
            XTst => "x.tst",
            XSrri => "x.srri",
            XMveqz => "x.mveqz",
            XMvnez => "x.mvnez",
            XMula => "x.mula",
            XMuls => "x.muls",
            XMulaw => "x.mulaw",
            XMulsw => "x.mulsw",
            XMulah => "x.mulah",
            XMulsh => "x.mulsh",
            XDcacheCall => "x.dcache.call",
            XDcacheCva => "x.dcache.cva",
            XIcacheIall => "x.icache.iall",
            XTlbBroadcast => "x.tlb.bcast",
            XSync => "x.sync",
        }
    }

    /// Size in bytes of a scalar memory access performed by this op, or 0.
    pub fn mem_size(self) -> u8 {
        use Op::*;
        match self {
            Lb | Lbu | Sb | XLrb | XLrbu | XSrb => 1,
            Lh | Lhu | Sh | XLrh | XLrhu | XSrh => 2,
            Lw | Lwu | Sw | Flw | Fsw | LrW | ScW | XLrw | XLrwu | XSrw | XLurw => 4,
            Ld | Sd | Fld | Fsd | LrD | ScD | XLrd | XSrd | XLurd => 8,
            AmoSwapW | AmoAddW | AmoXorW | AmoAndW | AmoOrW | AmoMinW | AmoMaxW | AmoMinuW
            | AmoMaxuW => 4,
            AmoSwapD | AmoAddD | AmoXorD | AmoAndD | AmoOrD | AmoMinD | AmoMaxD | AmoMinuD
            | AmoMaxuD => 8,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(Op::Beq.exec_class().is_ctrl());
        assert!(Op::Ld.exec_class().is_mem());
        assert!(Op::VaddVV.exec_class().is_vector());
        assert!(!Op::Add.exec_class().is_mem());
    }

    #[test]
    fn custom_prefix() {
        assert!(Op::XLrw.is_custom());
        assert!(Op::XMula.is_custom());
        assert!(!Op::Add.is_custom());
        assert!(!Op::VaddVV.is_custom());
    }

    #[test]
    fn store_reads_data_register() {
        let t = Op::Sd.traits_of();
        assert_eq!(t.rd, RegFile::None);
        assert_eq!(t.rs1, RegFile::Int);
        assert_eq!(t.rs2, RegFile::Int);
    }

    #[test]
    fn fma_reads_three_fp_sources() {
        let t = Op::FmaddD.traits_of();
        assert_eq!(t.rs3, RegFile::Fp);
        assert_eq!(t.rd, RegFile::Fp);
    }

    #[test]
    fn mem_sizes() {
        assert_eq!(Op::Lb.mem_size(), 1);
        assert_eq!(Op::Sd.mem_size(), 8);
        assert_eq!(Op::Add.mem_size(), 0);
        assert_eq!(Op::AmoAddW.mem_size(), 4);
    }

    #[test]
    fn vector_predicates() {
        assert!(Op::Vsetvli.is_vector());
        assert!(Op::Vle.is_vector());
        assert!(!Op::Ld.is_vector());
    }
}
