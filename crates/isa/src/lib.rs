//! # xt-isa — instruction-set definitions for the Xuantie-910 reproduction
//!
//! This crate defines the guest instruction set executed and modeled by the
//! rest of the workspace:
//!
//! * the RV64IMAFDC base ISA (a.k.a. RV64GC) with Zicsr and the privileged
//!   instructions the paper's mechanisms need (`sfence.vma`, `mret`, ...),
//! * a subset of the **RISC-V vector extension, 0.7.1 stable release** — the
//!   version the XT-910 implements — sufficient for the paper's AI/MAC and
//!   STREAM-style evaluations (see [`vector`]),
//! * the **XT-910 custom extensions** described in §VIII of the paper:
//!   register+register addressed (indexed) loads/stores, zero-extending
//!   address generation, bit-manipulation, multiply-accumulate, and
//!   cache/TLB maintenance hints (see [`op::Op`] variants prefixed `X`).
//!
//! The crate provides a decoded-instruction type ([`inst::Inst`]), a binary
//! decoder ([`mod@decode`]), an encoder used by the `xt-asm` assembler
//! ([`encode`]), and a disassembler ([`disasm`]).
//!
//! # Example
//!
//! ```
//! use xt_isa::{decode::decode, op::Op};
//!
//! // addi x5, x6, 42
//! let word = 0x02A30293;
//! let inst = decode(word).expect("valid instruction");
//! assert_eq!(inst.op, Op::Addi);
//! assert_eq!(inst.rd, 5);
//! assert_eq!(inst.rs1, 6);
//! assert_eq!(inst.imm, 42);
//! ```

#![warn(missing_docs)]

pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod op;
pub mod reg;
pub mod vector;

pub use decode::{decode, decode_compressed, DecodeError};
pub use inst::Inst;
pub use op::{ExecClass, Op, RegFile};
pub use reg::{Fpr, Gpr, Vr};
pub use vector::{Sew, VType};
