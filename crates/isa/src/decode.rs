//! Binary instruction decoding — the exact inverse of [`crate::encode`].

// Binary literals group bits by instruction field (funct5_funct2), not
// by uniform digit count.
#![allow(clippy::unusual_byte_groupings)]

use crate::inst::Inst;
use crate::op::Op;

/// Error returned for an unrecognized or malformed encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal instruction {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v as i64) << shift) >> shift
}

fn fields(w: u32) -> (u8, u8, u8, u32, u32) {
    let rd = (w >> 7 & 0x1f) as u8;
    let rs1 = (w >> 15 & 0x1f) as u8;
    let rs2 = (w >> 20 & 0x1f) as u8;
    let f3 = w >> 12 & 7;
    let f7 = w >> 25 & 0x7f;
    (rd, rs1, rs2, f3, f7)
}

fn i_imm(w: u32) -> i64 {
    sext(w >> 20, 12)
}

fn s_imm(w: u32) -> i64 {
    sext((w >> 25 << 5) | (w >> 7 & 0x1f), 12)
}

fn b_imm(w: u32) -> i64 {
    sext(
        ((w >> 31) << 12) | ((w >> 7 & 1) << 11) | ((w >> 25 & 0x3f) << 5) | ((w >> 8 & 0xf) << 1),
        13,
    )
}

fn u_imm(w: u32) -> i64 {
    sext(w & 0xfffff000, 32)
}

fn j_imm(w: u32) -> i64 {
    sext(
        ((w >> 31) << 20) | ((w >> 12 & 0xff) << 12) | ((w >> 20 & 1) << 11) | ((w >> 21 & 0x3ff) << 1),
        21,
    )
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for encodings outside the implemented ISA.
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    use Op::*;
    let (rd, rs1, rs2, f3, f7) = fields(w);
    let err = Err(DecodeError { word: w });
    let mk = |op: Op| Inst::new(op).rd(rd).rs1(rs1).rs2(rs2);
    let inst = match w & 0x7f {
        0x37 => Inst::new(Lui).rd(rd).imm(u_imm(w)),
        0x17 => Inst::new(Auipc).rd(rd).imm(u_imm(w)),
        0x6f => Inst::new(Jal).rd(rd).imm(j_imm(w)),
        0x67 => Inst::new(Jalr).rd(rd).rs1(rs1).imm(i_imm(w)),
        0x63 => {
            let op = match f3 {
                0 => Beq,
                1 => Bne,
                4 => Blt,
                5 => Bge,
                6 => Bltu,
                7 => Bgeu,
                _ => return err,
            };
            Inst::new(op).rs1(rs1).rs2(rs2).imm(b_imm(w))
        }
        0x03 => {
            let op = match f3 {
                0 => Lb,
                1 => Lh,
                2 => Lw,
                3 => Ld,
                4 => Lbu,
                5 => Lhu,
                6 => Lwu,
                _ => return err,
            };
            Inst::new(op).rd(rd).rs1(rs1).imm(i_imm(w))
        }
        0x23 => {
            let op = match f3 {
                0 => Sb,
                1 => Sh,
                2 => Sw,
                3 => Sd,
                _ => return err,
            };
            Inst::new(op).rs1(rs1).rs2(rs2).imm(s_imm(w))
        }
        0x13 => match f3 {
            0 => Inst::new(Addi).rd(rd).rs1(rs1).imm(i_imm(w)),
            2 => Inst::new(Slti).rd(rd).rs1(rs1).imm(i_imm(w)),
            3 => Inst::new(Sltiu).rd(rd).rs1(rs1).imm(i_imm(w)),
            4 => Inst::new(Xori).rd(rd).rs1(rs1).imm(i_imm(w)),
            6 => Inst::new(Ori).rd(rd).rs1(rs1).imm(i_imm(w)),
            7 => Inst::new(Andi).rd(rd).rs1(rs1).imm(i_imm(w)),
            1 => Inst::new(Slli).rd(rd).rs1(rs1).imm((w >> 20 & 0x3f) as i64),
            5 => {
                let op = if f7 & 0b0100000 != 0 { Srai } else { Srli };
                Inst::new(op).rd(rd).rs1(rs1).imm((w >> 20 & 0x3f) as i64)
            }
            _ => return err,
        },
        0x1b => match f3 {
            0 => Inst::new(Addiw).rd(rd).rs1(rs1).imm(i_imm(w)),
            1 => Inst::new(Slliw).rd(rd).rs1(rs1).imm((w >> 20 & 0x1f) as i64),
            5 => {
                let op = if f7 == 0b0100000 { Sraiw } else { Srliw };
                Inst::new(op).rd(rd).rs1(rs1).imm((w >> 20 & 0x1f) as i64)
            }
            _ => return err,
        },
        0x33 => {
            let op = match (f7, f3) {
                (0, 0) => Add,
                (0b0100000, 0) => Sub,
                (0, 1) => Sll,
                (0, 2) => Slt,
                (0, 3) => Sltu,
                (0, 4) => Xor,
                (0, 5) => Srl,
                (0b0100000, 5) => Sra,
                (0, 6) => Or,
                (0, 7) => And,
                (1, 0) => Mul,
                (1, 1) => Mulh,
                (1, 2) => Mulhsu,
                (1, 3) => Mulhu,
                (1, 4) => Div,
                (1, 5) => Divu,
                (1, 6) => Rem,
                (1, 7) => Remu,
                _ => return err,
            };
            mk(op)
        }
        0x3b => {
            let op = match (f7, f3) {
                (0, 0) => Addw,
                (0b0100000, 0) => Subw,
                (0, 1) => Sllw,
                (0, 5) => Srlw,
                (0b0100000, 5) => Sraw,
                (1, 0) => Mulw,
                (1, 4) => Divw,
                (1, 5) => Divuw,
                (1, 6) => Remw,
                (1, 7) => Remuw,
                _ => return err,
            };
            mk(op)
        }
        0x0f => match f3 {
            0 => Inst::new(Fence),
            1 => Inst::new(FenceI),
            _ => return err,
        },
        0x2f => {
            let funct5 = w >> 27;
            let op = match (funct5, f3) {
                (0b00010, 2) => LrW,
                (0b00010, 3) => LrD,
                (0b00011, 2) => ScW,
                (0b00011, 3) => ScD,
                (0b00001, 2) => AmoSwapW,
                (0b00000, 2) => AmoAddW,
                (0b00100, 2) => AmoXorW,
                (0b01100, 2) => AmoAndW,
                (0b01000, 2) => AmoOrW,
                (0b10000, 2) => AmoMinW,
                (0b10100, 2) => AmoMaxW,
                (0b11000, 2) => AmoMinuW,
                (0b11100, 2) => AmoMaxuW,
                (0b00001, 3) => AmoSwapD,
                (0b00000, 3) => AmoAddD,
                (0b00100, 3) => AmoXorD,
                (0b01100, 3) => AmoAndD,
                (0b01000, 3) => AmoOrD,
                (0b10000, 3) => AmoMinD,
                (0b10100, 3) => AmoMaxD,
                (0b11000, 3) => AmoMinuD,
                (0b11100, 3) => AmoMaxuD,
                _ => return err,
            };
            let mut inst = mk(op);
            if matches!(op, LrW | LrD) {
                // LR has no rs2 operand: ignore whatever bits sit there
                inst.rs2 = 0;
            }
            inst
        }
        0x07 => match f3 {
            2 => Inst::new(Flw).rd(rd).rs1(rs1).imm(i_imm(w)),
            3 => Inst::new(Fld).rd(rd).rs1(rs1).imm(i_imm(w)),
            7 => {
                // vector load; mop in funct7 bits 2:1, bit 0 set as marker
                match f7 {
                    0b0000001 => Inst::new(Vle).rd(rd).rs1(rs1),
                    0b0000101 => Inst::new(Vlse).rd(rd).rs1(rs1).rs2(rs2),
                    0b0000111 => Inst::new(Vlxe).rd(rd).rs1(rs1).rs3(rs2),
                    _ => return err,
                }
            }
            _ => return err,
        },
        0x27 => match f3 {
            2 => Inst::new(Fsw).rs1(rs1).rs2(rs2).imm(s_imm(w)),
            3 => Inst::new(Fsd).rs1(rs1).rs2(rs2).imm(s_imm(w)),
            7 => match f7 {
                0b0000001 => Inst::new(Vse).rs1(rs1).rs3(rd),
                0b0000101 => Inst::new(Vsse).rs1(rs1).rs2(rs2).rs3(rd),
                0b0000111 => Inst::new(Vsxe).rs1(rs1).rs2(rs2).rs3(rd),
                _ => return err,
            },
            _ => return err,
        },
        0x43 | 0x47 | 0x4b | 0x4f => {
            let rs3 = (w >> 27) as u8;
            let fmt = w >> 25 & 3;
            let op = match (w & 0x7f, fmt) {
                (0x43, 0) => FmaddS,
                (0x47, 0) => FmsubS,
                (0x4b, 0) => FnmsubS,
                (0x4f, 0) => FnmaddS,
                (0x43, 1) => FmaddD,
                (0x47, 1) => FmsubD,
                (0x4b, 1) => FnmsubD,
                (0x4f, 1) => FnmaddD,
                _ => return err,
            };
            Inst::new(op).rd(rd).rs1(rs1).rs2(rs2).rs3(rs3)
        }
        0x53 => {
            let op = match (f7, f3, rs2) {
                (0b0000000, 7, _) => FaddS,
                (0b0000100, 7, _) => FsubS,
                (0b0001000, 7, _) => FmulS,
                (0b0001100, 7, _) => FdivS,
                (0b0101100, 7, 0) => FsqrtS,
                (0b0010000, 0, _) => FsgnjS,
                (0b0010000, 1, _) => FsgnjnS,
                (0b0010000, 2, _) => FsgnjxS,
                (0b0010100, 0, _) => FminS,
                (0b0010100, 1, _) => FmaxS,
                (0b1100000, 7, 0) => FcvtWS,
                (0b1100000, 7, 1) => FcvtWuS,
                (0b1100000, 7, 2) => FcvtLS,
                (0b1100000, 7, 3) => FcvtLuS,
                (0b1110000, 0, 0) => FmvXW,
                (0b1110000, 1, 0) => FclassS,
                (0b1010000, 2, _) => FeqS,
                (0b1010000, 1, _) => FltS,
                (0b1010000, 0, _) => FleS,
                (0b1101000, 7, 0) => FcvtSW,
                (0b1101000, 7, 1) => FcvtSWu,
                (0b1101000, 7, 2) => FcvtSL,
                (0b1101000, 7, 3) => FcvtSLu,
                (0b1111000, 0, 0) => FmvWX,
                (0b0000001, 7, _) => FaddD,
                (0b0000101, 7, _) => FsubD,
                (0b0001001, 7, _) => FmulD,
                (0b0001101, 7, _) => FdivD,
                (0b0101101, 7, 0) => FsqrtD,
                (0b0010001, 0, _) => FsgnjD,
                (0b0010001, 1, _) => FsgnjnD,
                (0b0010001, 2, _) => FsgnjxD,
                (0b0010101, 0, _) => FminD,
                (0b0010101, 1, _) => FmaxD,
                (0b0100000, 7, 1) => FcvtSD,
                (0b0100001, 7, 0) => FcvtDS,
                (0b1010001, 2, _) => FeqD,
                (0b1010001, 1, _) => FltD,
                (0b1010001, 0, _) => FleD,
                (0b1110001, 1, 0) => FclassD,
                (0b1100001, 7, 0) => FcvtWD,
                (0b1100001, 7, 1) => FcvtWuD,
                (0b1100001, 7, 2) => FcvtLD,
                (0b1100001, 7, 3) => FcvtLuD,
                (0b1101001, 7, 0) => FcvtDW,
                (0b1101001, 7, 1) => FcvtDWu,
                (0b1101001, 7, 2) => FcvtDL,
                (0b1101001, 7, 3) => FcvtDLu,
                (0b1110001, 0, 0) => FmvXD,
                (0b1111001, 0, 0) => FmvDX,
                _ => return err,
            };
            // Conversions and single-source ops carry a selector in rs2.
            let keep_rs2 = matches!(
                op,
                FaddS | FsubS | FmulS | FdivS | FsgnjS | FsgnjnS | FsgnjxS | FminS | FmaxS
                    | FeqS | FltS | FleS | FaddD | FsubD | FmulD | FdivD | FsgnjD | FsgnjnD
                    | FsgnjxD | FminD | FmaxD | FeqD | FltD | FleD
            );
            let mut inst = Inst::new(op).rd(rd).rs1(rs1);
            if keep_rs2 {
                inst = inst.rs2(rs2);
            }
            inst
        }
        0x73 => match f3 {
            0 => match w {
                0x00000073 => Inst::new(Ecall),
                0x00100073 => Inst::new(Ebreak),
                0x30200073 => Inst::new(Mret),
                0x10200073 => Inst::new(Sret),
                0x10500073 => Inst::new(Wfi),
                _ if f7 == 0b0001001 => Inst::new(SfenceVma).rs1(rs1).rs2(rs2),
                _ => return err,
            },
            1 => Inst::new(Csrrw).rd(rd).rs1(rs1).imm((w >> 20) as i64),
            2 => Inst::new(Csrrs).rd(rd).rs1(rs1).imm((w >> 20) as i64),
            3 => Inst::new(Csrrc).rd(rd).rs1(rs1).imm((w >> 20) as i64),
            5 => Inst::new(Csrrwi).rd(rd).rs1(rs1).imm((w >> 20) as i64),
            6 => Inst::new(Csrrsi).rd(rd).rs1(rs1).imm((w >> 20) as i64),
            7 => Inst::new(Csrrci).rd(rd).rs1(rs1).imm((w >> 20) as i64),
            _ => return err,
        },
        0x57 => {
            if f3 == 7 {
                if f7 & 0b1000000 != 0 {
                    Inst::new(Vsetvl).rd(rd).rs1(rs1).rs2(rs2)
                } else {
                    Inst::new(Vsetvli).rd(rd).rs1(rs1).imm((w >> 20 & 0x7ff) as i64)
                }
            } else {
                let f6 = w >> 26;
                let op = match decode_vec(f6, f3) {
                    Some(op) => op,
                    None => return err,
                };
                // encoder layout: vs2 in bits 24:20 -> rs1 slot;
                //                 vs1/rs1 in bits 19:15 -> rs2 slot.
                let mut inst = Inst::new(op).rd(rd).rs1(rs2).rs2(rs1);
                if f3 == 3 {
                    // immediate form: bits 19:15 are simm5
                    inst = Inst::new(op).rd(rd).rs1(rs2).imm(sext(w >> 15 & 0x1f, 5));
                }
                // MAC-style ops accumulate into vd: expose it as rs3.
                if matches!(
                    op,
                    VmaccVV | VmaccVX | VnmsacVV | VwmaccVV | VwmaccuVV | VfmaccVV | VfmaccVF
                        | VfnmsacVV
                ) {
                    inst = inst.rs3(rd);
                }
                inst
            }
        }
        0x0b => {
            let shift = (f7 & 3) as i64;
            let base = f7 & !3;
            let op = match (f3, base, f7) {
                (0, 0b00000_00, _) => XLrb,
                (0, 0b00001_00, _) => XLrbu,
                (0, 0b00010_00, _) => XLrh,
                (0, 0b00011_00, _) => XLrhu,
                (0, 0b00100_00, _) => XLrw,
                (0, 0b00101_00, _) => XLrwu,
                (0, 0b00110_00, _) => XLrd,
                (0, 0b00111_00, _) => XLurw,
                (0, 0b01000_00, _) => XLurd,
                (1, 0b00000_00, _) => XSrb,
                (1, 0b00010_00, _) => XSrh,
                (1, 0b00100_00, _) => XSrw,
                (1, 0b00110_00, _) => XSrd,
                (2, 0b01001_00, _) => XAddsl,
                (2, _, 0b01010_00) => XAdduw,
                (2, _, 0b01011_00) => XZextw,
                (2, _, 0b01100_00) => XFf0,
                (2, _, 0b01101_00) => XFf1,
                (2, _, 0b01110_00) => XRev,
                (4, _, 0b00000_00) => XMula,
                (4, _, 0b00001_00) => XMuls,
                (4, _, 0b00010_00) => XMulaw,
                (4, _, 0b00011_00) => XMulsw,
                (4, _, 0b00100_00) => XMulah,
                (4, _, 0b00101_00) => XMulsh,
                (5, _, 0b00000_00) => XDcacheCall,
                (5, _, 0b00001_00) => XDcacheCva,
                (5, _, 0b00010_00) => XIcacheIall,
                (5, _, 0b00011_00) => XTlbBroadcast,
                (5, _, 0b00100_00) => XSync,
                (6, _, 0b00000_00) => XMveqz,
                (6, _, 0b00001_00) => XMvnez,
                _ => return err,
            };
            let mut inst = mk(op);
            match f3 {
                0 => inst = inst.imm(shift),
                1 => {
                    // store: data register came from the rd slot
                    inst = Inst::new(op).rs1(rs1).rs2(rs2).rs3(rd).imm(shift);
                }
                2 if op == XAddsl => inst = inst.imm(shift),
                4 | 6 => inst = inst.rs3(rd), // read-modify-write rd
                _ => {}
            }
            inst
        }
        0x2b => {
            let imm12 = (w >> 20) as i64;
            match f3 {
                0 => Inst::new(XExt).rd(rd).rs1(rs1).imm(imm12),
                1 => Inst::new(XExtu).rd(rd).rs1(rs1).imm(imm12),
                2 => Inst::new(XTst).rd(rd).rs1(rs1).imm(imm12 & 0x3f),
                3 => Inst::new(XSrri).rd(rd).rs1(rs1).imm(imm12 & 0x3f),
                _ => return err,
            }
        }
        _ => return err,
    };
    Ok(inst)
}

fn decode_vec(f6: u32, f3: u32) -> Option<Op> {
    use Op::*;
    // Mirror of `encode::vec_funct6`.
    Some(match (f6, f3) {
        (0b000000, 0) => VaddVV,
        (0b000010, 0) => VsubVV,
        (0b001001, 0) => VandVV,
        (0b001010, 0) => VorVV,
        (0b001011, 0) => VxorVV,
        (0b100101, 0) => VsllVV,
        (0b101000, 0) => VsrlVV,
        (0b101001, 0) => VsraVV,
        (0b000100, 0) => VminuVV,
        (0b000101, 0) => VminVV,
        (0b000110, 0) => VmaxuVV,
        (0b000111, 0) => VmaxVV,
        (0b010111, 0) => VmvVV,
        (0b000000, 4) => VaddVX,
        (0b000010, 4) => VsubVX,
        (0b000011, 4) => VrsubVX,
        (0b001001, 4) => VandVX,
        (0b001010, 4) => VorVX,
        (0b001011, 4) => VxorVX,
        (0b100101, 4) => VsllVX,
        (0b101000, 4) => VsrlVX,
        (0b101001, 4) => VsraVX,
        (0b010111, 4) => VmvVX,
        (0b001111, 4) => Vslidedown,
        (0b001110, 4) => Vslideup,
        (0b000000, 3) => VaddVI,
        (0b010111, 3) => VmvVI,
        (0b100101, 2) => VmulVV,
        (0b100111, 2) => VmulhVV,
        (0b101101, 2) => VmaccVV,
        (0b101111, 2) => VnmsacVV,
        (0b100000, 2) => VdivuVV,
        (0b100001, 2) => VdivVV,
        (0b100011, 2) => VremVV,
        (0b111000, 2) => VwmuluVV,
        (0b111011, 2) => VwmulVV,
        (0b111100, 2) => VwmaccuVV,
        (0b111101, 2) => VwmaccVV,
        (0b000000, 2) => VredsumVS,
        (0b000111, 2) => VredmaxVS,
        (0b010000, 2) => VmvXS,
        (0b100101, 6) => VmulVX,
        (0b101101, 6) => VmaccVX,
        (0b010000, 6) => VmvSX,
        (0b000000, 1) => VfaddVV,
        (0b000010, 1) => VfsubVV,
        (0b100100, 1) => VfmulVV,
        (0b100000, 1) => VfdivVV,
        (0b101100, 1) => VfmaccVV,
        (0b101110, 1) => VfnmsacVV,
        (0b000100, 1) => VfminVV,
        (0b000110, 1) => VfmaxVV,
        (0b000011, 1) => VfredsumVS,
        (0b100011, 1) => VfsqrtV,
        (0b000000, 5) => VfaddVF,
        (0b100100, 5) => VfmulVF,
        (0b101100, 5) => VfmaccVF,
        _ => return None,
    })
}

/// Decodes a 16-bit compressed instruction into its expanded form
/// (`len` is set to 2).
///
/// # Errors
///
/// Returns [`DecodeError`] for unsupported compressed encodings.
pub fn decode_compressed(h: u16) -> Result<Inst, DecodeError> {
    use Op::*;
    let w = h as u32;
    let err = Err(DecodeError { word: w });
    let rd = (w >> 7 & 0x1f) as u8;
    let rs2 = (w >> 2 & 0x1f) as u8;
    let rdp = ((w >> 7 & 7) + 8) as u8;
    let rs2p = ((w >> 2 & 7) + 8) as u8;
    let inst = match (w & 3, w >> 13) {
        (1, 0) if rd == 0 => Inst::new(Addi), // c.nop
        (1, 0) => {
            let imm = sext(((w >> 12 & 1) << 5) | (w >> 2 & 0x1f), 6);
            Inst::new(Addi).rd(rd).rs1(rd).imm(imm)
        }
        (1, 1) if rd != 0 => {
            let imm = sext(((w >> 12 & 1) << 5) | (w >> 2 & 0x1f), 6);
            Inst::new(Addiw).rd(rd).rs1(rd).imm(imm)
        }
        (1, 2) if rd != 0 => {
            let imm = sext(((w >> 12 & 1) << 5) | (w >> 2 & 0x1f), 6);
            Inst::new(Addi).rd(rd).rs1(0).imm(imm)
        }
        (1, 4) => {
            let f2 = w >> 10 & 3;
            let shamt = (((w >> 12 & 1) << 5) | (w >> 2 & 0x1f)) as i64;
            match f2 {
                0 => Inst::new(Srli).rd(rdp).rs1(rdp).imm(shamt),
                1 => Inst::new(Srai).rd(rdp).rs1(rdp).imm(shamt),
                2 => {
                    let imm = sext(((w >> 12 & 1) << 5) | (w >> 2 & 0x1f), 6);
                    Inst::new(Andi).rd(rdp).rs1(rdp).imm(imm)
                }
                _ => {
                    let op = match (w >> 12 & 1, w >> 5 & 3) {
                        (0, 0) => Sub,
                        (0, 1) => Xor,
                        (0, 2) => Or,
                        (0, 3) => And,
                        (1, 0) => Subw,
                        (1, 1) => Addw,
                        _ => return err,
                    };
                    Inst::new(op).rd(rdp).rs1(rdp).rs2(rs2p)
                }
            }
        }
        (1, 5) => {
            // c.j
            let imm = sext(
                ((w >> 12 & 1) << 11)
                    | ((w >> 11 & 1) << 4)
                    | ((w >> 9 & 3) << 8)
                    | ((w >> 8 & 1) << 10)
                    | ((w >> 7 & 1) << 6)
                    | ((w >> 6 & 1) << 7)
                    | ((w >> 3 & 7) << 1)
                    | ((w >> 2 & 1) << 5),
                12,
            );
            Inst::new(Jal).rd(0).imm(imm)
        }
        (1, 6) | (1, 7) => {
            let imm = sext(
                ((w >> 12 & 1) << 8)
                    | ((w >> 10 & 3) << 3)
                    | ((w >> 5 & 3) << 6)
                    | ((w >> 3 & 3) << 1)
                    | ((w >> 2 & 1) << 5),
                9,
            );
            let op = if w >> 13 == 6 { Beq } else { Bne };
            Inst::new(op).rs1(rdp).rs2(0).imm(imm)
        }
        (2, 0) if rd != 0 => {
            let shamt = (((w >> 12 & 1) << 5) | (w >> 2 & 0x1f)) as i64;
            Inst::new(Slli).rd(rd).rs1(rd).imm(shamt)
        }
        (2, 4) => match (w >> 12 & 1, rd, rs2) {
            (0, r, 0) if r != 0 => Inst::new(Jalr).rd(0).rs1(r), // c.jr
            (0, r, s) if r != 0 && s != 0 => Inst::new(Add).rd(r).rs1(0).rs2(s), // c.mv
            (1, 0, 0) => Inst::new(Ebreak),
            (1, r, 0) if r != 0 => Inst::new(Jalr).rd(1).rs1(r), // c.jalr
            (1, r, s) if r != 0 && s != 0 => Inst::new(Add).rd(r).rs1(r).rs2(s),
            _ => return err,
        },
        (0, 2) => {
            // c.lw
            let imm = (((w >> 10 & 7) << 3) | ((w >> 6 & 1) << 2) | ((w >> 5 & 1) << 6)) as i64;
            Inst::new(Lw).rd(rs2p).rs1(rdp).imm(imm)
        }
        (0, 3) => {
            // c.ld
            let imm = (((w >> 10 & 7) << 3) | ((w >> 5 & 3) << 6)) as i64;
            Inst::new(Ld).rd(rs2p).rs1(rdp).imm(imm)
        }
        (0, 6) => {
            let imm = (((w >> 10 & 7) << 3) | ((w >> 6 & 1) << 2) | ((w >> 5 & 1) << 6)) as i64;
            Inst::new(Sw).rs1(rdp).rs2(rs2p).imm(imm)
        }
        (0, 7) => {
            let imm = (((w >> 10 & 7) << 3) | ((w >> 5 & 3) << 6)) as i64;
            Inst::new(Sd).rs1(rdp).rs2(rs2p).imm(imm)
        }
        _ => return err,
    };
    Ok(inst.with_len(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, encode_compressed};

    #[test]
    fn decode_known_addi() {
        let i = decode(0x02A30293).unwrap();
        assert_eq!(i.op, Op::Addi);
        assert_eq!((i.rd, i.rs1, i.imm), (5, 6, 42));
    }

    #[test]
    fn illegal_rejected() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
    }

    #[test]
    fn negative_branch_offset() {
        let i = Inst::new(Op::Bne).rs1(10).rs2(11).imm(-8);
        let w = encode(&i).unwrap();
        let d = decode(w).unwrap();
        assert_eq!(d.imm, -8);
        assert_eq!(d.op, Op::Bne);
    }

    #[test]
    fn compressed_roundtrip_subset() {
        let cases = [
            Inst::new(Op::Addi).rd(8).rs1(8).imm(-4),
            Inst::new(Op::Add).rd(5).rs1(0).rs2(6),
            Inst::new(Op::Ld).rd(9).rs1(10).imm(16),
            Inst::new(Op::Sd).rs1(8).rs2(9).imm(24),
            Inst::new(Op::Beq).rs1(8).rs2(0).imm(-16),
            Inst::new(Op::Jal).rd(0).imm(-100),
        ];
        for c in cases {
            let h = encode_compressed(&c).unwrap_or_else(|| panic!("compress {c:?}"));
            let d = decode_compressed(h).unwrap();
            assert_eq!(d.with_len(4), c, "roundtrip {c:?}");
        }
    }

    #[test]
    fn vector_vv_roundtrip() {
        let i = Inst::new(Op::VaddVV).rd(1).rs1(2).rs2(3);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn vector_mac_gets_rs3() {
        let i = Inst::new(Op::VmaccVV).rd(4).rs1(2).rs2(3).rs3(4);
        let w = encode(&i).unwrap();
        let d = decode(w).unwrap();
        assert_eq!(d.rs3, 4, "accumulator exposed as rs3");
    }

    #[test]
    fn custom_indexed_load_roundtrip() {
        let i = Inst::new(Op::XLrw).rd(10).rs1(11).rs2(12).imm(2);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn custom_ext_roundtrip() {
        let imm = Inst::pack_ext_bounds(47, 16);
        let i = Inst::new(Op::XExtu).rd(1).rs1(2).imm(imm);
        let w = encode(&i).unwrap();
        let d = decode(w).unwrap();
        assert_eq!(d, i);
        assert_eq!(d.ext_bounds(), (47, 16));
    }
}
