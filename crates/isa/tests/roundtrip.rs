//! Property tests: every encodable instruction decodes back to itself.
//!
//! Ported from proptest to the in-tree `xt-harness` engine. Default
//! seed for this suite: `0x15A0_0001` (fixed, so runs are
//! deterministic); override or replay a failure with
//! `XT_HARNESS_SEED=<seed> cargo test`.

use xt_harness::gen::{self, Gen};
use xt_harness::prop::{check_with, Config};
use xt_isa::encode::{encode, encode_compressed};
use xt_isa::{decode, decode_compressed, Inst, Op};

const SEED: u64 = 0x15A0_0001;

fn cfg() -> Config {
    Config::seeded(SEED)
}

fn sel(table: &'static [Op]) -> impl Gen<Value = Op> {
    gen::choose(table)
}

/// Ops with plain R-type operand shapes (rd, rs1, rs2).
const R_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Sll,
    Op::Slt,
    Op::Sltu,
    Op::Xor,
    Op::Srl,
    Op::Sra,
    Op::Or,
    Op::And,
    Op::Addw,
    Op::Subw,
    Op::Sllw,
    Op::Srlw,
    Op::Sraw,
    Op::Mul,
    Op::Mulh,
    Op::Mulhsu,
    Op::Mulhu,
    Op::Div,
    Op::Divu,
    Op::Rem,
    Op::Remu,
    Op::Mulw,
    Op::Divw,
    Op::Divuw,
    Op::Remw,
    Op::Remuw,
    Op::ScW,
    Op::ScD,
    Op::AmoSwapW,
    Op::AmoAddW,
    Op::AmoXorW,
    Op::AmoAndW,
    Op::AmoOrW,
    Op::AmoMinW,
    Op::AmoMaxW,
    Op::AmoMinuW,
    Op::AmoMaxuW,
    Op::AmoSwapD,
    Op::AmoAddD,
    Op::AmoXorD,
    Op::AmoAndD,
    Op::AmoOrD,
    Op::AmoMinD,
    Op::AmoMaxD,
    Op::AmoMinuD,
    Op::AmoMaxuD,
    Op::FaddS,
    Op::FsubS,
    Op::FmulS,
    Op::FdivS,
    Op::FsgnjS,
    Op::FsgnjnS,
    Op::FsgnjxS,
    Op::FminS,
    Op::FmaxS,
    Op::FeqS,
    Op::FltS,
    Op::FleS,
    Op::FaddD,
    Op::FsubD,
    Op::FmulD,
    Op::FdivD,
    Op::FsgnjD,
    Op::FsgnjnD,
    Op::FsgnjxD,
    Op::FminD,
    Op::FmaxD,
    Op::FeqD,
    Op::FltD,
    Op::FleD,
    Op::XAdduw,
    Op::XMula,
    Op::XMuls,
    Op::XMulaw,
    Op::XMulsw,
    Op::XMulah,
    Op::XMulsh,
    Op::XMveqz,
    Op::XMvnez,
];

/// Ops shaped rd, rs1, imm12.
const I_OPS: &[Op] = &[
    Op::Jalr,
    Op::Lb,
    Op::Lh,
    Op::Lw,
    Op::Ld,
    Op::Lbu,
    Op::Lhu,
    Op::Lwu,
    Op::Addi,
    Op::Slti,
    Op::Sltiu,
    Op::Xori,
    Op::Ori,
    Op::Andi,
    Op::Addiw,
    Op::Flw,
    Op::Fld,
];

const S_OPS: &[Op] = &[Op::Sb, Op::Sh, Op::Sw, Op::Sd, Op::Fsw, Op::Fsd];

const B_OPS: &[Op] = &[Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu];

const VEC_VV: &[Op] = &[
    Op::VaddVV,
    Op::VsubVV,
    Op::VandVV,
    Op::VorVV,
    Op::VxorVV,
    Op::VsllVV,
    Op::VsrlVV,
    Op::VsraVV,
    Op::VminVV,
    Op::VminuVV,
    Op::VmaxVV,
    Op::VmaxuVV,
    Op::VmulVV,
    Op::VmulhVV,
    Op::VdivVV,
    Op::VdivuVV,
    Op::VremVV,
    Op::VwmulVV,
    Op::VwmuluVV,
    Op::VredsumVS,
    Op::VredmaxVS,
    Op::VfaddVV,
    Op::VfsubVV,
    Op::VfmulVV,
    Op::VfdivVV,
    Op::VfminVV,
    Op::VfmaxVV,
    Op::VfredsumVS,
];


#[test]
fn r_type_roundtrip() {
    let g = (sel(R_OPS), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u8..32));
    check_with(&cfg(), "r_type_roundtrip", &g, |&(op, rd, rs1, rs2)| {
        let mut i = Inst::new(op).rd(rd).rs1(rs1).rs2(rs2);
        // custom read-modify-write ops expose rd as rs3 after decode
        if matches!(op, Op::XMula | Op::XMuls | Op::XMulaw | Op::XMulsw | Op::XMulah
            | Op::XMulsh | Op::XMveqz | Op::XMvnez) {
            i = i.rs3(rd);
        }
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

#[test]
fn i_type_roundtrip() {
    let g = (sel(I_OPS), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(-2048i64..2048));
    check_with(&cfg(), "i_type_roundtrip", &g, |&(op, rd, rs1, imm)| {
        let i = Inst::new(op).rd(rd).rs1(rs1).imm(imm);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

#[test]
fn s_type_roundtrip() {
    let g = (sel(S_OPS), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(-2048i64..2048));
    check_with(&cfg(), "s_type_roundtrip", &g, |&(op, rs1, rs2, imm)| {
        let i = Inst::new(op).rs1(rs1).rs2(rs2).imm(imm);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

#[test]
fn b_type_roundtrip() {
    let g = (sel(B_OPS), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(-2048i64..2047));
    check_with(&cfg(), "b_type_roundtrip", &g, |&(op, rs1, rs2, off)| {
        let i = Inst::new(op).rs1(rs1).rs2(rs2).imm(off * 2);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

#[test]
fn u_type_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(-(1i64 << 19)..(1i64 << 19)));
    check_with(&cfg(), "u_type_roundtrip", &g, |&(rd, hi)| {
        for op in [Op::Lui, Op::Auipc] {
            let i = Inst::new(op).rd(rd).imm(hi << 12);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn j_type_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(-(1i64 << 19)..(1i64 << 19)));
    check_with(&cfg(), "j_type_roundtrip", &g, |&(rd, off)| {
        let i = Inst::new(Op::Jal).rd(rd).imm(off * 2);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

#[test]
fn shift_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0i64..64));
    check_with(&cfg(), "shift_roundtrip", &g, |&(rd, rs1, sh)| {
        for op in [Op::Slli, Op::Srli, Op::Srai] {
            let i = Inst::new(op).rd(rd).rs1(rs1).imm(sh);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
        for op in [Op::Slliw, Op::Srliw, Op::Sraiw] {
            let i = Inst::new(op).rd(rd).rs1(rs1).imm(sh % 32);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn fma_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u8..32));
    check_with(&cfg(), "fma_roundtrip", &g, |&(rd, rs1, rs2, rs3)| {
        for op in [Op::FmaddS, Op::FmsubS, Op::FnmsubS, Op::FnmaddS,
                   Op::FmaddD, Op::FmsubD, Op::FnmsubD, Op::FnmaddD] {
            let i = Inst::new(op).rd(rd).rs1(rs1).rs2(rs2).rs3(rs3);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn csr_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0i64..4096));
    check_with(&cfg(), "csr_roundtrip", &g, |&(rd, rs1, addr)| {
        for op in [Op::Csrrw, Op::Csrrs, Op::Csrrc, Op::Csrrwi, Op::Csrrsi, Op::Csrrci] {
            let i = Inst::new(op).rd(rd).rs1(rs1).imm(addr);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn vec_vv_roundtrip() {
    let g = (sel(VEC_VV), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u8..32));
    check_with(&cfg(), "vec_vv_roundtrip", &g, |&(op, vd, vs2, vs1)| {
        let i = Inst::new(op).rd(vd).rs1(vs2).rs2(vs1);
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

#[test]
fn vec_mac_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u8..32));
    check_with(&cfg(), "vec_mac_roundtrip", &g, |&(vd, vs2, vs1)| {
        for op in [Op::VmaccVV, Op::VnmsacVV, Op::VwmaccVV, Op::VwmaccuVV,
                   Op::VfmaccVV, Op::VfnmsacVV] {
            let i = Inst::new(op).rd(vd).rs1(vs2).rs2(vs1).rs3(vd);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn indexed_mem_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0i64..4));
    check_with(&cfg(), "indexed_mem_roundtrip", &g, |&(rd, rs1, rs2, sh)| {
        for op in [Op::XLrb, Op::XLrbu, Op::XLrh, Op::XLrhu, Op::XLrw, Op::XLrwu,
                   Op::XLrd, Op::XLurw, Op::XLurd] {
            let i = Inst::new(op).rd(rd).rs1(rs1).rs2(rs2).imm(sh);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
        for op in [Op::XSrb, Op::XSrh, Op::XSrw, Op::XSrd] {
            let i = Inst::new(op).rs1(rs1).rs2(rs2).rs3(rd).imm(sh);
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn bitfield_roundtrip() {
    let g = (gen::ints(0u8..32), gen::ints(0u8..32), gen::ints(0u32..64), gen::ints(0u32..64));
    check_with(&cfg(), "bitfield_roundtrip", &g, |&(rd, rs1, msb, lsb)| {
        for op in [Op::XExt, Op::XExtu] {
            let i = Inst::new(op).rd(rd).rs1(rs1).imm(Inst::pack_ext_bounds(msb, lsb));
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i);
        }
    });
}

#[test]
fn compressed_expansion_matches() {
    let g = (gen::ints(8u8..16), gen::ints(8u8..16), gen::ints(-32i64..32));
    check_with(&cfg(), "compressed_expansion_matches", &g, |&(rd, rs1, imm)| {
        // Any instruction the compressor accepts must expand back to the
        // identical wide instruction.
        let candidates = [
            Inst::new(Op::Addi).rd(rd).rs1(rd).imm(imm),
            Inst::new(Op::Andi).rd(rd).rs1(rd).imm(imm),
            Inst::new(Op::Sub).rd(rd).rs1(rd).rs2(rs1),
            Inst::new(Op::Xor).rd(rd).rs1(rd).rs2(rs1),
            Inst::new(Op::Or).rd(rd).rs1(rd).rs2(rs1),
            Inst::new(Op::And).rd(rd).rs1(rd).rs2(rs1),
            Inst::new(Op::Addw).rd(rd).rs1(rd).rs2(rs1),
            Inst::new(Op::Subw).rd(rd).rs1(rd).rs2(rs1),
            Inst::new(Op::Lw).rd(rd).rs1(rs1).imm((imm.rem_euclid(32)) * 4),
            Inst::new(Op::Ld).rd(rd).rs1(rs1).imm((imm.rem_euclid(32)) * 8),
            Inst::new(Op::Beq).rs1(rs1).rs2(0).imm(imm * 2),
        ];
        for c in candidates {
            if let Some(h) = encode_compressed(&c) {
                let d = decode_compressed(h).unwrap();
                assert_eq!(d.with_len(4), c);
            }
        }
    });
}
