//! Robustness properties: the decoders are total functions (they never
//! panic on arbitrary bits) and every decodable instruction has a
//! non-empty disassembly.
//!
//! Ported from proptest to the in-tree `xt-harness` engine. Default
//! seed for this suite: `0x15A0_0002` (fixed); override or replay with
//! `XT_HARNESS_SEED=<seed> cargo test`. Runs 2000 cases per property,
//! matching the original `ProptestConfig::with_cases(2000)`.

use xt_harness::gen;
use xt_harness::prop::{check_with, Config};
use xt_isa::{decode, decode_compressed};

const SEED: u64 = 0x15A0_0002;

fn cfg() -> Config {
    Config::seeded_cases(SEED, 2000)
}

#[test]
fn decode_never_panics() {
    check_with(&cfg(), "decode_never_panics", &gen::any::<u32>(), |&w| {
        // decoding arbitrary bits must cleanly return Ok or Err
        let _ = decode(w);
    });
}

#[test]
fn compressed_decode_never_panics() {
    check_with(
        &cfg(),
        "compressed_decode_never_panics",
        &gen::any::<u16>(),
        |&h| {
            let _ = decode_compressed(h);
        },
    );
}

#[test]
fn every_decoded_instruction_disassembles() {
    check_with(
        &cfg(),
        "every_decoded_instruction_disassembles",
        &gen::any::<u32>(),
        |&w| {
            if let Ok(inst) = decode(w) {
                let text = inst.to_string();
                assert!(!text.is_empty());
                assert!(text.starts_with(inst.op.mnemonic().chars().next().unwrap()));
            }
        },
    );
}

#[test]
fn decoded_operands_in_range() {
    check_with(
        &cfg(),
        "decoded_operands_in_range",
        &gen::any::<u32>(),
        |&w| {
            if let Ok(inst) = decode(w) {
                assert!(inst.rd < 32);
                assert!(inst.rs1 < 32);
                assert!(inst.rs2 < 32);
                assert!(inst.rs3 < 32);
                assert!(inst.len == 2 || inst.len == 4);
            }
        },
    );
}

#[test]
fn reencoding_decoded_words_is_stable() {
    check_with(
        &cfg(),
        "reencoding_decoded_words_is_stable",
        &gen::any::<u32>(),
        |&w| {
            // decode -> encode -> decode must be a fixed point (the encoder
            // may canonicalize, but the second decode must agree with the
            // first)
            if let Ok(i1) = decode(w) {
                if let Ok(w2) = xt_isa::encode::encode(&i1) {
                    let i2 = decode(w2).expect("re-encoded word decodes");
                    assert_eq!(i1, i2);
                }
            }
        },
    );
}
