//! Robustness properties: the decoders are total functions (they never
//! panic on arbitrary bits) and every decodable instruction has a
//! non-empty disassembly.

use proptest::prelude::*;
use xt_isa::{decode, decode_compressed};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        // decoding arbitrary bits must cleanly return Ok or Err
        let _ = decode(w);
    }

    #[test]
    fn compressed_decode_never_panics(h in any::<u16>()) {
        let _ = decode_compressed(h);
    }

    #[test]
    fn every_decoded_instruction_disassembles(w in any::<u32>()) {
        if let Ok(inst) = decode(w) {
            let text = inst.to_string();
            prop_assert!(!text.is_empty());
            prop_assert!(text.starts_with(inst.op.mnemonic().chars().next().unwrap()));
        }
    }

    #[test]
    fn decoded_operands_in_range(w in any::<u32>()) {
        if let Ok(inst) = decode(w) {
            prop_assert!(inst.rd < 32);
            prop_assert!(inst.rs1 < 32);
            prop_assert!(inst.rs2 < 32);
            prop_assert!(inst.rs3 < 32);
            prop_assert!(inst.len == 2 || inst.len == 4);
        }
    }

    #[test]
    fn reencoding_decoded_words_is_stable(w in any::<u32>()) {
        // decode -> encode -> decode must be a fixed point (the encoder
        // may canonicalize, but the second decode must agree with the
        // first)
        if let Ok(i1) = decode(w) {
            if let Ok(w2) = xt_isa::encode::encode(&i1) {
                let i2 = decode(w2).expect("re-encoded word decodes");
                prop_assert_eq!(i1, i2);
            }
        }
    }
}
