//! # xt-uarch-model — analytical PPA model for Table II
//!
//! The paper's Table II reports post-layout silicon results in TSMC
//! 12nm FinFET: 2.0-2.5 GHz, 0.6 mm² (scalar) / 0.8 mm² (with the
//! vector unit) per core excluding L2, and ~100 µW/MHz dynamic power.
//! Silicon cannot be simulated here, so this crate provides a
//! documented, structure-driven *analytical* model: per-block area and
//! power densities calibrated so the XT-910 configuration lands on the
//! published numbers, with the structure scaling (SRAM bits, physical
//! registers, issue width) driving everything else. The bench harness
//! prints Table II from this model and labels it as modeled, not
//! measured.

/// Operating condition (Table II footnotes a/b).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Corner {
    /// LVT standard cells, ULVT SRAM, 0.8 V — 2.0 GHz.
    LvtNominal,
    /// 30% ULVT cells, ULVT SRAM, 1.0 V boost — 2.5 GHz.
    UlvtBoost,
    /// The 7 nm experiment quoted in §II — 2.8 GHz.
    N7,
}

/// Structural inputs to the model.
#[derive(Clone, Copy, Debug)]
pub struct UarchParams {
    /// L1 I-cache KiB.
    pub l1i_kib: u32,
    /// L1 D-cache KiB.
    pub l1d_kib: u32,
    /// Re-order buffer entries.
    pub rob_entries: u32,
    /// Physical integer + FP registers.
    pub phys_regs: u32,
    /// Decode width.
    pub decode_width: u32,
    /// Issue width.
    pub issue_width: u32,
    /// Vector unit present, with this VLEN (0 = none).
    pub vlen_bits: u32,
}

impl UarchParams {
    /// The shipping XT-910 configuration.
    pub fn xt910(vector: bool) -> Self {
        UarchParams {
            l1i_kib: 64,
            l1d_kib: 64,
            rob_entries: 192,
            phys_regs: 96 + 64,
            decode_width: 3,
            issue_width: 8,
            vlen_bits: if vector { 128 } else { 0 },
        }
    }
}

/// Modeled PPA outputs.
#[derive(Clone, Copy, Debug)]
pub struct Ppa {
    /// Maximum clock frequency in GHz.
    pub freq_ghz: f64,
    /// Core area in mm² (excluding L2).
    pub area_mm2: f64,
    /// Dynamic power in µW/MHz.
    pub uw_per_mhz: f64,
}

// Calibration constants (12 nm): chosen so that the XT-910 configuration
// reproduces Table II. Units are mm² and µW/MHz per structural unit.
const AREA_BASE: f64 = 0.076; // fetch/decode/control fabric
const AREA_PER_KIB_SRAM: f64 = 0.0016; // L1 arrays + tags
const AREA_PER_ROB_ENTRY: f64 = 0.0006;
const AREA_PER_PHYS_REG: f64 = 0.00055;
const AREA_PER_ISSUE_SLOT: f64 = 0.0145;
const AREA_VEC_PER_SLICE: f64 = 0.1; // 64-bit slice: regfile + 2 pipes
const POWER_BASE: f64 = 24.0;
const POWER_PER_KIB_SRAM: f64 = 0.22;
const POWER_PER_ISSUE_SLOT: f64 = 5.6;
const POWER_PER_ROB_ENTRY: f64 = 0.016;

/// Evaluates the analytical model.
pub fn evaluate(p: &UarchParams, corner: Corner) -> Ppa {
    let sram_kib = (p.l1i_kib + p.l1d_kib) as f64;
    let slices = (p.vlen_bits / 64) as f64;
    let area = AREA_BASE
        + AREA_PER_KIB_SRAM * sram_kib
        + AREA_PER_ROB_ENTRY * p.rob_entries as f64
        + AREA_PER_PHYS_REG * p.phys_regs as f64
        + AREA_PER_ISSUE_SLOT * p.issue_width as f64
        + AREA_VEC_PER_SLICE * slices;
    let scale = match corner {
        Corner::LvtNominal => 1.0,
        Corner::UlvtBoost => 1.0,
        Corner::N7 => 0.55, // ~45% area shrink 12nm -> 7nm
    };
    let freq = match corner {
        Corner::LvtNominal => 2.0,
        Corner::UlvtBoost => 2.5,
        Corner::N7 => 2.8,
    };
    let power = POWER_BASE
        + POWER_PER_KIB_SRAM * sram_kib
        + POWER_PER_ISSUE_SLOT * p.issue_width as f64
        + POWER_PER_ROB_ENTRY * p.rob_entries as f64;
    Ppa {
        freq_ghz: freq,
        area_mm2: area * scale,
        uw_per_mhz: power,
    }
}

impl Corner {
    /// Stable string name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Corner::LvtNominal => "lvt_nominal",
            Corner::UlvtBoost => "ulvt_boost",
            Corner::N7 => "n7",
        }
    }
}

/// Formats an f64 for JSON: finite, shortest round-trippable form.
/// Non-finite values (not producible by the model) map to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

impl UarchParams {
    /// Hand-rolled JSON emission (no serde — the workspace is
    /// dependency-free by policy).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"l1i_kib\":{},\"l1d_kib\":{},\"rob_entries\":{},\"phys_regs\":{},\
             \"decode_width\":{},\"issue_width\":{},\"vlen_bits\":{}}}",
            self.l1i_kib,
            self.l1d_kib,
            self.rob_entries,
            self.phys_regs,
            self.decode_width,
            self.issue_width,
            self.vlen_bits
        )
    }
}

impl Ppa {
    /// Hand-rolled JSON emission.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"freq_ghz\":{},\"area_mm2\":{},\"uw_per_mhz\":{}}}",
            json_f64(self.freq_ghz),
            json_f64(self.area_mm2),
            json_f64(self.uw_per_mhz)
        )
    }
}

/// Machine-readable Table II: every corner evaluated for the shipping
/// configuration (with and without the vector unit), as a JSON array.
pub fn table2_json() -> String {
    let mut rows = Vec::new();
    for vector in [false, true] {
        let p = UarchParams::xt910(vector);
        for corner in [Corner::LvtNominal, Corner::UlvtBoost, Corner::N7] {
            rows.push(format!(
                "{{\"corner\":\"{}\",\"vector\":{},\"params\":{},\"ppa\":{}}}",
                corner.name(),
                vector,
                p.to_json(),
                evaluate(&p, corner).to_json()
            ));
        }
    }
    format!("[{}]", rows.join(","))
}

/// Renders the Table II rows from the model.
pub fn table2() -> String {
    let with_vec = evaluate(&UarchParams::xt910(true), Corner::LvtNominal);
    let no_vec = evaluate(&UarchParams::xt910(false), Corner::LvtNominal);
    let boost = evaluate(&UarchParams::xt910(true), Corner::UlvtBoost);
    format!(
        "Operating frequency   {:.1} GHz(a) ~ {:.1} GHz(b)  (paper: 2.0 ~ 2.5)\n\
         Silicon area per core {:.2} (no VEC) / {:.2} (VEC) mm2  (paper: 0.6 / 0.8)\n\
         Dynamic power         ~{:.0} uW/MHz per core  (paper: ~100)\n\
         (a) LVT cells, ULVT SRAM, 0.8V   (b) 30% ULVT cells, 1.0V\n\
         [analytical model calibrated to the paper -- not silicon data]",
        with_vec.freq_ghz, boost.freq_ghz, no_vec.area_mm2, with_vec.area_mm2, with_vec.uw_per_mhz
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_table2() {
        let vec = evaluate(&UarchParams::xt910(true), Corner::LvtNominal);
        let novec = evaluate(&UarchParams::xt910(false), Corner::LvtNominal);
        assert!(
            (vec.area_mm2 - 0.8).abs() < 0.05,
            "with-vector area ~0.8 mm2, got {:.3}",
            vec.area_mm2
        );
        assert!(
            (novec.area_mm2 - 0.6).abs() < 0.05,
            "scalar area ~0.6 mm2, got {:.3}",
            novec.area_mm2
        );
        assert!(
            (vec.uw_per_mhz - 100.0).abs() < 15.0,
            "~100 uW/MHz, got {:.1}",
            vec.uw_per_mhz
        );
        assert_eq!(vec.freq_ghz, 2.0);
        assert_eq!(
            evaluate(&UarchParams::xt910(true), Corner::UlvtBoost).freq_ghz,
            2.5
        );
        assert_eq!(evaluate(&UarchParams::xt910(true), Corner::N7).freq_ghz, 2.8);
    }

    #[test]
    fn structures_scale_monotonically() {
        let base = UarchParams::xt910(true);
        let mut big = base;
        big.rob_entries *= 2;
        big.l1d_kib *= 2;
        let a = evaluate(&base, Corner::LvtNominal);
        let b = evaluate(&big, Corner::LvtNominal);
        assert!(b.area_mm2 > a.area_mm2);
        assert!(b.uw_per_mhz > a.uw_per_mhz);
    }

    #[test]
    fn table_renders() {
        let t = table2();
        assert!(t.contains("GHz"));
        assert!(t.contains("analytical model"));
    }

    /// Structural check of the hand-rolled JSON without a JSON parser:
    /// balanced braces, expected keys, and numeric formatting.
    #[test]
    fn json_emission_is_well_formed() {
        let j = table2_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches("\"corner\"").count(), 6, "2 configs x 3 corners");
        assert_eq!(j.matches("\"vector\":true").count(), 3);
        for key in ["freq_ghz", "area_mm2", "uw_per_mhz", "rob_entries"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(!j.contains("null"), "model outputs are always finite");
        // floats keep a decimal point so downstream parsers see numbers
        let ppa = evaluate(&UarchParams::xt910(true), Corner::LvtNominal);
        assert!(ppa.to_json().contains("\"freq_ghz\":2.0"));
    }

    #[test]
    fn json_f64_formats() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.8125), "0.8125");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
