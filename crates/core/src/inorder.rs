//! Dual-issue in-order pipeline model — the SiFive-U74-class baseline
//! the paper compares against in Fig. 17.
//!
//! The U74 is an 8-stage, dual-issue, in-order application core. The
//! model shares the front-end predictors and memory hierarchy with the
//! OoO model but issues strictly in program order: an instruction cannot
//! begin execution before its program-order predecessor has issued, and
//! operand dependencies stall the whole issue stage (scoreboarding, no
//! renaming, no speculation past unresolved stores).

use crate::config::CoreConfig;
use crate::ifu::{FrontEnd, Redirect};
use crate::perf::{PerfCounters, RunReport, StallCause};
use crate::resources::{Bandwidth, PipeGroup};
use xt_emu::{DynInst, TraceSource};
use xt_isa::ExecClass;
use xt_mem::MemSystem;
use xt_trace::{FlushCause, FlushEvent, InstRecord, TraceBuffer, TraceSink};

/// The in-order core model.
#[derive(Debug)]
pub struct InOrderCore {
    cfg: CoreConfig,
    core_id: usize,
    fe: FrontEnd,
    fetch_cycle: u64,
    fetch_bytes: u64,
    cur_fetch_line: u64,
    issue_bw: Bandwidth,
    alu: PipeGroup,
    mdu: PipeGroup,
    fp: PipeGroup,
    agu: PipeGroup,
    reg_ready: [[u64; 32]; 3],
    /// issue must be monotonic (in-order)
    last_issue: u64,
    max_complete: u64,
    /// Flush bubble awaiting attribution (charged at the next fetch,
    /// same lazy scheme as the OoO core).
    pending_flush: Option<(u64, StallCause)>,
    /// Optional per-instruction pipeline tracer (None = zero overhead).
    tracer: Option<TraceBuffer>,
    perf: PerfCounters,
}

impl InOrderCore {
    /// Creates the baseline core.
    pub fn new(cfg: CoreConfig, core_id: usize) -> Self {
        InOrderCore {
            fe: FrontEnd::new(&cfg),
            fetch_cycle: 0,
            fetch_bytes: 0,
            cur_fetch_line: u64::MAX,
            issue_bw: Bandwidth::new(cfg.issue_width),
            alu: PipeGroup::new(2),
            mdu: PipeGroup::new(1),
            fp: PipeGroup::new(1),
            agu: PipeGroup::new(1),
            reg_ready: [[0; 32]; 3],
            last_issue: 0,
            max_complete: 0,
            pending_flush: None,
            tracer: None,
            perf: PerfCounters::default(),
            core_id,
            cfg,
        }
    }

    /// Consumes the whole trace and produces the report.
    pub fn run_to_end(&mut self, mut trace: TraceSource, mem: &mut MemSystem) -> RunReport {
        for d in trace.by_ref() {
            self.step(&d, mem);
        }
        self.finish_report(mem, trace.exit_code)
    }

    /// Seals the counters after the last [`Self::step`] and produces the
    /// report (see [`crate::OooCore::finish_report`]).
    pub fn finish_report(&mut self, mem: &MemSystem, exit_code: Option<u64>) -> RunReport {
        self.perf.cycles = self.max_complete.max(self.last_issue);
        self.perf.prefetch_hits = mem
            .stats()
            .prefetches_useful
            .get(self.core_id)
            .copied()
            .unwrap_or(0);
        debug_assert!(
            self.perf.stalls_conserved(),
            "stall counters double-count: attributed {} > cycles {}",
            self.perf.attributed_stall_cycles(),
            self.perf.cycles
        );
        RunReport {
            machine: self.cfg.name,
            perf: self.perf.clone(),
            mem: mem.stats(),
            exit_code,
        }
    }

    /// Current cycle count (for incremental use).
    pub fn cycles(&self) -> u64 {
        self.max_complete.max(self.last_issue)
    }

    /// Performance counters (for incremental use).
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Attaches a fresh trace buffer: subsequent [`Self::step`] calls
    /// record one [`InstRecord`] per instruction plus flush events.
    pub fn attach_tracer(&mut self) {
        self.tracer = Some(TraceBuffer::new());
    }

    /// The attached trace buffer, if any.
    pub fn tracer(&self) -> Option<&TraceBuffer> {
        self.tracer.as_ref()
    }

    /// Detaches and returns the trace buffer (tracing stops).
    pub fn take_tracer(&mut self) -> Option<TraceBuffer> {
        self.tracer.take()
    }

    fn rf_idx(rf: xt_isa::RegFile) -> usize {
        match rf {
            xt_isa::RegFile::Int => 0,
            xt_isa::RegFile::Fp => 1,
            xt_isa::RegFile::Vec => 2,
            xt_isa::RegFile::None => 0,
        }
    }

    /// Advances the model by one committed instruction.
    pub fn step(&mut self, d: &DynInst, mem: &mut MemSystem) {
        let class = d.inst.op.exec_class();
        let fo = self.fe.observe(d, &mut self.perf);

        // charge the flush bubble left by the previous instruction's
        // redirect (lazy scheme, see the OoO core and `perf` module docs)
        if let Some((from, cause)) = self.pending_flush.take() {
            self.perf.charge(cause, from, self.fetch_cycle);
        }

        // fetch
        let line = d.fetch_pa >> 6;
        if line != self.cur_fetch_line {
            let t = mem.icache_fetch(self.core_id, self.fetch_cycle, d.fetch_pa);
            if t > self.fetch_cycle {
                self.perf.charge(StallCause::ICacheMiss, self.fetch_cycle, t);
                self.fetch_cycle = t;
                self.fetch_bytes = 0;
            }
            self.cur_fetch_line = line;
        }
        if self.fetch_bytes + d.inst.len as u64 > self.cfg.fetch_bytes {
            self.fetch_cycle += 1;
            self.fetch_bytes = 0;
        }
        self.fetch_bytes += d.inst.len as u64;
        let fetched = self.fetch_cycle;

        // in-order issue: operands must be ready, and issue is monotonic
        let mut ready = self.fetch_cycle + 1;
        for (rf, idx) in d.inst.sources() {
            ready = ready.max(self.reg_ready[Self::rf_idx(rf)][idx as usize]);
        }
        ready = ready.max(self.last_issue);
        let issue = self.issue_bw.take(ready);
        self.last_issue = issue;
        // a stalled issue stage also stalls fetch eventually
        if issue > self.fetch_cycle + 8 {
            self.fetch_cycle = issue - 8;
            self.fetch_bytes = 0;
        }

        let lat = self.cfg.lat;
        let complete = match class {
            ExecClass::Alu => self.alu.issue(issue, 1) + lat.alu,
            ExecClass::Mul => self.mdu.issue(issue, 1) + lat.mul,
            ExecClass::Div => self.mdu.issue(issue, lat.div) + lat.div,
            ExecClass::Branch | ExecClass::Jump | ExecClass::JumpInd => {
                self.alu.issue(issue, 1) + lat.alu
            }
            ExecClass::Load | ExecClass::VecLoad | ExecClass::Amo => {
                let m = d.mem.expect("load accesses memory");
                let start = self.agu.issue(issue, 1) + lat.agu;
                let t = mem.dload(self.core_id, start, m.vaddr, m.paddr);
                let hit_by = start + mem.config().l1_hit;
                if t > hit_by {
                    self.perf.charge(StallCause::DCacheMiss, hit_by, t);
                }
                t
            }
            ExecClass::Store | ExecClass::VecStore => {
                let m = d.mem.expect("store accesses memory");
                let start = self.agu.issue(issue, 1) + lat.agu;
                // in-order cores retire stores through a small buffer;
                // the store itself doesn't stall dependents
                let _ = mem.dstore(self.core_id, start, m.vaddr, m.paddr);
                start + 1
            }
            ExecClass::Fence | ExecClass::Csr | ExecClass::System | ExecClass::CacheOp => {
                let done = issue.max(self.max_complete) + lat.csr;
                self.last_issue = done;
                done
            }
            ExecClass::VSet => self.alu.issue(issue, 1) + lat.alu,
            ExecClass::VecAlu | ExecClass::VecFAdd => self.fp.issue(issue, 1) + lat.valu,
            ExecClass::VecMul => self.fp.issue(issue, 1) + lat.vfmul,
            ExecClass::VecDiv => self.fp.issue(issue, lat.vdiv) + lat.vdiv,
            ExecClass::VecPerm => self.fp.issue(issue, 2) + lat.vperm,
            // scalar FP on the single FP pipe
            ExecClass::FpAdd => self.fp.issue(issue, 1) + lat.fadd,
            ExecClass::FpMul => self.fp.issue(issue, 1) + lat.fmul,
            ExecClass::FpDiv => self.fp.issue(issue, lat.fdiv) + lat.fdiv,
            ExecClass::FpCvt => self.fp.issue(issue, 1) + lat.fcvt,
        };

        if let Some((rf, idx)) = d.inst.dest() {
            self.reg_ready[Self::rf_idx(rf)][idx as usize] = complete;
        }
        self.max_complete = self.max_complete.max(complete);
        self.perf.instructions += 1;
        self.perf.uops += 1;

        // trace record (only when a tracer is attached). The U74-class
        // baseline is 8-deep; the record still uses the 13 XT-910 slots
        // with the shorter pipe's stages collapsed (docs/PIPELINE.md).
        if let Some(tracer) = self.tracer.as_mut() {
            let ex1 = issue;
            let ex4 = issue.max(complete.saturating_sub(1));
            let span = ex4 - ex1;
            let rec = InstRecord::new(
                self.perf.instructions - 1,
                d.pc,
                xt_isa::disasm::disasm(&d.inst),
                [
                    fetched,
                    fetched,
                    fetched,
                    fetched + 1,
                    fetched + 1,
                    fetched + 1,
                    ready,
                    ex1,
                    ex1 + span / 3,
                    ex1 + 2 * span / 3,
                    ex4,
                    complete,
                    complete,
                ],
            );
            tracer.record(rec);
        }

        // redirects
        if d.trapped {
            self.perf.exception_flushes += 1;
            self.pending_flush = Some((self.fetch_cycle, StallCause::OrderFlush));
            if let Some(t) = self.tracer.as_mut() {
                t.flush_event(FlushEvent {
                    cycle: complete,
                    pc: d.pc,
                    cause: FlushCause::Exception,
                });
            }
            self.fetch_cycle = self.fetch_cycle.max(complete + self.cfg.flush_penalty);
            self.fetch_bytes = 0;
            self.cur_fetch_line = u64::MAX;
        } else {
            match fo.redirect {
                Redirect::None => {}
                Redirect::TakenAtIf => {
                    self.fetch_cycle += 1;
                    self.fetch_bytes = 0;
                    self.issue_bw.break_group();
                }
                Redirect::TakenAtIp => {
                    self.fetch_cycle += 1 + self.cfg.ip_jump_bubble;
                    self.fetch_bytes = 0;
                    self.issue_bw.break_group();
                }
                Redirect::Mispredict => {
                    self.pending_flush = Some((self.fetch_cycle, StallCause::MispredictFlush));
                    if let Some(t) = self.tracer.as_mut() {
                        t.flush_event(FlushEvent {
                            cycle: complete,
                            pc: d.pc,
                            cause: FlushCause::Mispredict,
                        });
                    }
                    self.fetch_cycle = self.fetch_cycle.max(complete + self.cfg.mispredict_penalty);
                    self.fetch_bytes = 0;
                    self.cur_fetch_line = u64::MAX;
                }
            }
        }
    }
}

impl xt_snapshot::SnapshotState for InOrderCore {
    /// Same discipline as the OoO core: configuration is checked, not
    /// overwritten; all dynamic state round-trips.
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.str(self.cfg.name);
        e.usize(self.core_id);
        self.fe.save(e);
        e.u64(self.fetch_cycle);
        e.u64(self.fetch_bytes);
        e.u64(self.cur_fetch_line);
        self.issue_bw.save(e);
        self.alu.save(e);
        self.mdu.save(e);
        self.fp.save(e);
        self.agu.save(e);
        for file in &self.reg_ready {
            e.u64_seq(file);
        }
        e.u64(self.last_issue);
        e.u64(self.max_complete);
        crate::perf::save_pending_flush(e, self.pending_flush);
        crate::perf::save_opt_tracer(e, self.tracer.as_ref());
        self.perf.save(e);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.string()? != self.cfg.name {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "core config name",
            });
        }
        if d.usize()? != self.core_id {
            return Err(xt_snapshot::SnapshotError::Mismatch { what: "core id" });
        }
        self.fe.restore(d)?;
        self.fetch_cycle = d.u64()?;
        self.fetch_bytes = d.u64()?;
        self.cur_fetch_line = d.u64()?;
        self.issue_bw.restore(d)?;
        self.alu.restore(d)?;
        self.mdu.restore(d)?;
        self.fp.restore(d)?;
        self.agu.restore(d)?;
        for file in &mut self.reg_ready {
            let v = d.u64_seq()?;
            if v.len() != file.len() {
                return Err(xt_snapshot::SnapshotError::Corrupt {
                    what: "scoreboard size",
                });
            }
            file.copy_from_slice(&v);
        }
        self.last_issue = d.u64()?;
        self.max_complete = d.u64()?;
        self.pending_flush = crate::perf::restore_pending_flush(d)?;
        self.tracer = crate::perf::restore_opt_tracer(d)?;
        self.perf.restore(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_asm::Asm;
    use xt_isa::reg::Gpr;

    fn run(cfg: CoreConfig, build: impl FnOnce(&mut Asm)) -> RunReport {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.finish().unwrap();
        crate::run_inorder(&p, &cfg, 10_000_000)
    }

    #[test]
    fn dual_issue_caps_at_two() {
        let r = run(CoreConfig::u74_like(), |a| {
            a.li(Gpr::S0, 1000);
            let top = a.here();
            a.addi(Gpr::A1, Gpr::A1, 1);
            a.addi(Gpr::A2, Gpr::A2, 1);
            a.addi(Gpr::A3, Gpr::A3, 1);
            a.addi(Gpr::A4, Gpr::A4, 1);
            a.addi(Gpr::A5, Gpr::A5, 1);
            a.addi(Gpr::S0, Gpr::S0, -1);
            a.bnez(Gpr::S0, top);
        });
        let ipc = r.perf.ipc();
        assert!(ipc <= 2.05, "dual issue bound: {ipc}");
        assert!(ipc > 1.2, "independent ops should dual-issue: {ipc}");
    }

    #[test]
    fn inorder_slower_than_ooo_on_ilp_code() {
        let build = |a: &mut Asm| {
            // loads hide under OoO but stall an in-order pipe
            let buf = a.data_zeros("buf", 4096);
            a.la(Gpr::S0, buf);
            a.li(Gpr::A3, 500);
            let top = a.here();
            a.ld(Gpr::T0, Gpr::S0, 0);
            a.addi(Gpr::T0, Gpr::T0, 1);
            a.ld(Gpr::T1, Gpr::S0, 8);
            a.addi(Gpr::T1, Gpr::T1, 1);
            a.add(Gpr::A1, Gpr::T0, Gpr::T1);
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        };
        let mut a1 = Asm::new();
        build(&mut a1);
        a1.halt();
        let p = a1.finish().unwrap();
        let ooo = crate::run_ooo(&p, &CoreConfig::xt910(), 10_000_000);
        let ino = crate::run_inorder(&p, &CoreConfig::u74_like(), 10_000_000);
        assert!(
            ooo.perf.cycles < ino.perf.cycles,
            "OoO {} vs in-order {}",
            ooo.perf.cycles,
            ino.perf.cycles
        );
    }
}
