//! # xt-core — cycle-level timing models of the XT-910 core
//!
//! This crate is the paper's primary contribution rendered as a
//! simulator: the 12-stage (IF IP IB ID IR IS RF EX1-EX4 RT1-RT2),
//! triple-decode, 8-issue, out-of-order XT-910 pipeline, plus the
//! dual-issue in-order baseline used for the SiFive-U74-class comparison.
//!
//! ## Methodology
//!
//! The model is **trace-driven with structural replay** (DESIGN.md §3):
//! it consumes the committed instruction stream from
//! [`xt_emu::TraceSource`] and replays it against the full pipeline
//! structure — front-end predictors trained on the real outcomes,
//! fetch/decode/rename bandwidth, issue-queue and ROB occupancy,
//! execution-pipe contention, a dual-issue load/store unit with the
//! pseudo-double-store decomposition, store-to-load forwarding, memory
//! ordering violations with a memory-dependence predictor, and the
//! `xt-mem` cache/TLB/prefetch hierarchy. Control and memory
//! mis-speculation charge the structural redirect penalty (resolved at
//! the branch-jump unit, ≥7 cycles before the IP-stage alternative — §III-A).
//!
//! ## Models
//!
//! * [`ooo::OooCore`] — the XT-910 (also used, re-parameterized, as the
//!   Cortex-A73-class reference machine of Figs. 18/19),
//! * [`inorder::InOrderCore`] — a dual-issue in-order pipeline
//!   (U74-class baseline of Fig. 17).
//!
//! # Example
//!
//! ```
//! use xt_asm::Asm;
//! use xt_core::{CoreConfig, run_ooo};
//! use xt_isa::reg::Gpr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(Gpr::A0, 1000);
//! let top = a.here();
//! a.addi(Gpr::A0, Gpr::A0, -1);
//! a.bnez(Gpr::A0, top);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let report = run_ooo(&prog, &CoreConfig::xt910(), 1_000_000);
//! assert!(report.perf.ipc() > 1.0, "tight loop should sustain >1 IPC");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod ifu;
pub mod inorder;
pub mod lsu;
pub mod ooo;
pub mod perf;
pub mod resources;
pub mod session;

pub use config::CoreConfig;
pub use inorder::InOrderCore;
pub use ooo::OooCore;
pub use perf::{PerfCounters, RunReport, StallCause, NUM_STALL_CAUSES};
pub use session::{InOrderSession, OooSession, Session};
pub use xt_trace::TraceBuffer;

use xt_asm::Program;
use xt_emu::{Emulator, TraceSource};
use xt_mem::{MemConfig, MemSystem};

/// Convenience: run `prog` on the out-of-order model with a private
/// memory system, returning the performance report.
pub fn run_ooo(prog: &Program, cfg: &CoreConfig, max_insts: u64) -> RunReport {
    let mut emu = Emulator::new();
    emu.load(prog);
    let trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(cfg.mem);
    let mut core = OooCore::new(cfg.clone(), 0);
    core.run_to_end(trace, &mut mem)
}

/// Convenience: run `prog` on the in-order baseline model.
pub fn run_inorder(prog: &Program, cfg: &CoreConfig, max_insts: u64) -> RunReport {
    let mut emu = Emulator::new();
    emu.load(prog);
    let trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(cfg.mem);
    let mut core = InOrderCore::new(cfg.clone(), 0);
    core.run_to_end(trace, &mut mem)
}

/// Convenience: run with an explicit memory configuration.
pub fn run_ooo_with_mem(
    prog: &Program,
    cfg: &CoreConfig,
    mem_cfg: MemConfig,
    max_insts: u64,
) -> RunReport {
    let mut emu = Emulator::new();
    emu.load(prog);
    let trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(mem_cfg);
    let mut core = OooCore::new(cfg.clone(), 0);
    core.run_to_end(trace, &mut mem)
}

/// Convenience: run the in-order baseline with an explicit memory
/// configuration.
pub fn run_inorder_with_mem(
    prog: &Program,
    cfg: &CoreConfig,
    mem_cfg: MemConfig,
    max_insts: u64,
) -> RunReport {
    let mut emu = Emulator::new();
    emu.load(prog);
    let trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(mem_cfg);
    let mut core = InOrderCore::new(cfg.clone(), 0);
    core.run_to_end(trace, &mut mem)
}

/// Like [`run_ooo`], but with per-instruction pipeline tracing enabled:
/// also returns the [`TraceBuffer`] holding one record per committed
/// instruction (render with [`TraceBuffer::to_konata`] /
/// [`TraceBuffer::to_chrome_json`]).
pub fn run_ooo_traced(
    prog: &Program,
    cfg: &CoreConfig,
    max_insts: u64,
) -> (RunReport, TraceBuffer) {
    let mut emu = Emulator::new();
    emu.load(prog);
    let trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(cfg.mem);
    let mut core = OooCore::new(cfg.clone(), 0);
    core.attach_tracer();
    let report = core.run_to_end(trace, &mut mem);
    (report, core.take_tracer().expect("tracer was attached"))
}

/// Like [`run_inorder`], but with per-instruction pipeline tracing
/// enabled (see [`run_ooo_traced`]).
pub fn run_inorder_traced(
    prog: &Program,
    cfg: &CoreConfig,
    max_insts: u64,
) -> (RunReport, TraceBuffer) {
    let mut emu = Emulator::new();
    emu.load(prog);
    let trace = TraceSource::new(emu, max_insts);
    let mut mem = MemSystem::new(cfg.mem);
    let mut core = InOrderCore::new(cfg.clone(), 0);
    core.attach_tracer();
    let report = core.run_to_end(trace, &mut mem);
    (report, core.take_tracer().expect("tracer was attached"))
}
