//! The instruction-fetch unit: hybrid direction prediction, cascaded
//! BTBs, return stack, indirect predictor and loop buffer (§III).

pub mod btb;
pub mod direction;
pub mod lbuf;

use crate::config::CoreConfig;
use crate::perf::PerfCounters;
use btb::{IndirectPredictor, L0Btb, L1Btb, ReturnStack};
use direction::DirectionPredictor;
use lbuf::LoopBuffer;
use xt_emu::DynInst;
use xt_isa::ExecClass;

/// Where the next-fetch redirect for an instruction came from, which
/// determines the bubble charged by the core model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Redirect {
    /// Sequential flow or correctly-predicted not-taken branch.
    None,
    /// Taken, target produced at the IF stage (L0 BTB, RAS, loop
    /// buffer): zero bubble (§III-B).
    TakenAtIf,
    /// Taken, target produced at the IP/IB stage: one-bubble jump,
    /// normally hidden by the IBUF.
    TakenAtIp,
    /// Misprediction — corrected at the branch-jump unit (≥7 cycles).
    Mispredict,
}

/// Per-instruction front-end outcome.
#[derive(Clone, Copy, Debug)]
pub struct FetchOutcome {
    /// The redirect class for this instruction.
    pub redirect: Redirect,
    /// Instruction streamed from the loop buffer (no I-cache access).
    pub from_lbuf: bool,
}

/// The assembled front end.
#[derive(Debug)]
pub struct FrontEnd {
    dir: DirectionPredictor,
    l0: L0Btb,
    l1: L1Btb,
    indirect: IndirectPredictor,
    ras: ReturnStack,
    /// Loop buffer (public for ablation statistics).
    pub lbuf: LoopBuffer,
}

const RA: u8 = 1; // x1 / ra

impl FrontEnd {
    /// Builds the front end for `cfg`.
    pub fn new(cfg: &CoreConfig) -> Self {
        FrontEnd {
            dir: DirectionPredictor::new(cfg.two_level_buf),
            l0: L0Btb::new(cfg.l0_btb),
            l1: L1Btb::new(256, 4),
            indirect: IndirectPredictor::new(),
            ras: ReturnStack::new(16),
            lbuf: LoopBuffer::new(16, cfg.loop_buffer),
        }
    }

    /// Processes one committed instruction through the predictors,
    /// updating `perf`, and classifies its fetch redirect.
    pub fn observe(&mut self, d: &DynInst, perf: &mut PerfCounters) -> FetchOutcome {
        let class = d.inst.op.exec_class();
        let taken = d.is_taken_branch();
        let taken_to = taken.then_some(d.next_pc);
        let from_lbuf = self.lbuf.observe(d.pc, taken_to);
        if from_lbuf {
            perf.lbuf_insts += 1;
        }

        let redirect = match class {
            ExecClass::Branch => {
                perf.branches += 1;
                let correct = self.dir.update(d.pc, taken);
                if taken {
                    self.l1.update(d.pc, d.next_pc);
                }
                if !correct {
                    perf.branch_mispredicts += 1;
                    if taken {
                        self.l0.update(d.pc, d.next_pc);
                    }
                    Redirect::Mispredict
                } else if taken {
                    if from_lbuf {
                        Redirect::TakenAtIf
                    } else if self.l0.lookup(d.pc) == Some(d.next_pc) {
                        perf.l0_btb_jumps += 1;
                        Redirect::TakenAtIf
                    } else {
                        // Frequent taken branches get promoted into L0.
                        self.l0.update(d.pc, d.next_pc);
                        perf.ip_jumps += 1;
                        Redirect::TakenAtIp
                    }
                } else {
                    Redirect::None
                }
            }
            ExecClass::Jump => {
                // jal: direction always known; call pushes the RAS
                if d.inst.rd == RA {
                    self.ras.push(d.fallthrough());
                }
                if from_lbuf {
                    Redirect::TakenAtIf
                } else if self.l0.lookup(d.pc) == Some(d.next_pc) {
                    perf.l0_btb_jumps += 1;
                    Redirect::TakenAtIf
                } else {
                    self.l0.update(d.pc, d.next_pc);
                    perf.ip_jumps += 1;
                    Redirect::TakenAtIp
                }
            }
            ExecClass::JumpInd => {
                let is_return = d.inst.rs1 == RA && d.inst.rd == 0;
                let predicted = if is_return {
                    self.ras.pop()
                } else {
                    self.indirect.predict(d.pc)
                };
                if d.inst.rd == RA {
                    self.ras.push(d.fallthrough());
                }
                if !is_return {
                    self.indirect.update(d.pc, d.next_pc);
                }
                if predicted == Some(d.next_pc) {
                    Redirect::TakenAtIf
                } else {
                    perf.target_mispredicts += 1;
                    Redirect::Mispredict
                }
            }
            _ => Redirect::None,
        };
        FetchOutcome {
            redirect,
            from_lbuf,
        }
    }
}

impl xt_snapshot::SnapshotState for FrontEnd {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        self.dir.save(e);
        self.l0.save(e);
        self.l1.save(e);
        self.indirect.save(e);
        self.ras.save(e);
        self.lbuf.save(e);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        self.dir.restore(d)?;
        self.l0.restore(d)?;
        self.l1.restore(d)?;
        self.indirect.restore(d)?;
        self.ras.restore(d)?;
        self.lbuf.restore(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use xt_isa::{Inst, Op};

    fn branch(pc: u64, taken: bool, target: u64) -> DynInst {
        let inst = Inst::new(Op::Bne).rs1(5).rs2(0).imm(target as i64 - pc as i64);
        DynInst::retired(pc, inst, if taken { target } else { pc + 4 }, None)
    }

    fn call(pc: u64, target: u64) -> DynInst {
        DynInst::retired(pc, Inst::new(Op::Jal).rd(1), target, None)
    }

    fn ret(pc: u64, target: u64) -> DynInst {
        DynInst::retired(pc, Inst::new(Op::Jalr).rd(0).rs1(1), target, None)
    }

    #[test]
    fn loop_branch_becomes_zero_bubble() {
        let mut fe = FrontEnd::new(&CoreConfig::xt910());
        let mut perf = PerfCounters::default();
        // iterate a backward branch: after warmup it should be
        // TakenAtIf (L0 BTB or loop buffer)
        let mut last = Redirect::None;
        for _ in 0..20 {
            // body
            fe.observe(
                &DynInst::retired(0x1000, Inst::new(Op::Addi).rd(5).rs1(5), 0x1004, None),
                &mut perf,
            );
            let o = fe.observe(&branch(0x1004, true, 0x1000), &mut perf);
            last = o.redirect;
        }
        assert_eq!(last, Redirect::TakenAtIf);
        assert!(perf.lbuf_insts > 0, "loop buffer engaged");
    }

    #[test]
    fn return_address_stack_predicts_returns() {
        let mut fe = FrontEnd::new(&CoreConfig::xt910());
        let mut perf = PerfCounters::default();
        for k in 0..10u64 {
            let site = 0x2000 + k * 0x40;
            fe.observe(&call(site, 0x9000), &mut perf);
            let o = fe.observe(&ret(0x9010, site + 4), &mut perf);
            assert_eq!(o.redirect, Redirect::TakenAtIf, "call #{k}");
        }
        assert_eq!(perf.target_mispredicts, 0);
    }

    #[test]
    fn cold_branch_mispredicts_then_learns() {
        let mut fe = FrontEnd::new(&CoreConfig::xt910());
        let mut perf = PerfCounters::default();
        let mut redirects = Vec::new();
        for _ in 0..10 {
            redirects.push(fe.observe(&branch(0x3000, true, 0x2000), &mut perf).redirect);
        }
        assert_eq!(redirects[0], Redirect::Mispredict, "cold");
        assert_eq!(*redirects.last().unwrap(), Redirect::TakenAtIf, "warm");
        assert!(perf.branch_mispredicts <= 2);
    }

    #[test]
    fn indirect_polymorphic_target_mispredicts() {
        let mut fe = FrontEnd::new(&CoreConfig::xt910());
        let mut perf = PerfCounters::default();
        // alternating targets defeat a last-target predictor
        for k in 0..20u64 {
            let target = if k % 2 == 0 { 0x5000 } else { 0x6000 };
            let jr = DynInst::retired(0x4000, Inst::new(Op::Jalr).rd(0).rs1(6), target, None);
            fe.observe(&jr, &mut perf);
        }
        assert!(perf.target_mispredicts >= 8);
    }
}
