//! Cascaded branch-target buffers (§III-B) and the indirect predictor.
//!
//! The L0 BTB is a 16-entry fully-associative table consulted at the IF
//! stage: a hit launches the jump immediately — zero pipeline bubble.
//! The L1 BTB is the main, >1K-entry set-associative table whose target
//! is available at the IP stage (one bubble, usually hidden by the
//! IBUF). The indirect predictor hashes recent target history into a
//! table of last-seen targets for `jalr`-style branches.

/// 16-entry fully-associative L0 BTB.
#[derive(Clone, Debug)]
pub struct L0Btb {
    entries: [(u64, u64, u64); 16], // (pc, target, lru)
    stamp: u64,
    enabled: bool,
}

impl L0Btb {
    /// Creates the table; `enabled = false` makes every lookup miss
    /// (ablation).
    pub fn new(enabled: bool) -> Self {
        L0Btb {
            entries: [(u64::MAX, 0, 0); 16],
            stamp: 0,
            enabled,
        }
    }

    /// Returns the predicted target on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        self.stamp += 1;
        for e in &mut self.entries {
            if e.0 == pc {
                e.2 = self.stamp;
                return Some(e.1);
            }
        }
        None
    }

    /// Installs or updates the taken branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        if !self.enabled {
            return;
        }
        self.stamp += 1;
        // hit: refresh
        for e in &mut self.entries {
            if e.0 == pc {
                e.1 = target;
                e.2 = self.stamp;
                return;
            }
        }
        // miss: replace LRU
        let v = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.2)
            .expect("16 entries");
        *v = (pc, target, self.stamp);
    }
}

/// Set-associative L1 BTB (256 sets x 4 ways = 1K+ entries).
#[derive(Clone, Debug)]
pub struct L1Btb {
    sets: usize,
    ways: usize,
    entries: Vec<(u64, u64, u64)>, // (pc, target, lru)
    stamp: u64,
}

impl L1Btb {
    /// Creates a `sets` x `ways` table.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two());
        L1Btb {
            sets,
            ways,
            entries: vec![(u64::MAX, 0, 0); sets * ways],
            stamp: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 1) as usize) & (self.sets - 1)
    }

    /// Returns the predicted target on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stamp += 1;
        let base = self.set_of(pc) * self.ways;
        for i in base..base + self.ways {
            if self.entries[i].0 == pc {
                self.entries[i].2 = self.stamp;
                return Some(self.entries[i].1);
            }
        }
        None
    }

    /// Installs or updates the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let base = self.set_of(pc) * self.ways;
        for i in base..base + self.ways {
            if self.entries[i].0 == pc {
                self.entries[i].1 = target;
                self.entries[i].2 = self.stamp;
                return;
            }
        }
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + self.ways {
            if self.entries[i].0 == u64::MAX {
                victim = i;
                break;
            }
            if self.entries[i].2 < best {
                best = self.entries[i].2;
                victim = i;
            }
        }
        self.entries[victim] = (pc, target, self.stamp);
    }
}

/// Indirect-branch target predictor: a target cache indexed by PC hashed
/// with a short target-history register.
#[derive(Clone, Debug)]
pub struct IndirectPredictor {
    table: Vec<(u64, u64)>, // (tag, target)
    history: u64,
    bits: u32,
}

impl IndirectPredictor {
    /// Creates a 512-entry target cache.
    pub fn new() -> Self {
        IndirectPredictor {
            table: vec![(u64::MAX, 0); 512],
            history: 0,
            bits: 9,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 1) ^ (self.history << 2)) & ((1 << self.bits) - 1)) as usize
    }

    /// Predicted target for the indirect branch at `pc`.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.table[self.index(pc)];
        (tag == pc).then_some(target)
    }

    /// Trains with the actual target.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.table[idx] = (pc, target);
        self.history = ((self.history << 3) ^ (target >> 2)) & 0xffff;
    }
}

impl Default for IndirectPredictor {
    fn default() -> Self {
        Self::new()
    }
}

/// 16-deep return-address stack.
#[derive(Clone, Debug)]
pub struct ReturnStack {
    stack: Vec<u64>,
    depth: usize,
    /// Pushes that wrapped (overflow) — diagnostics.
    pub overflows: u64,
}

impl ReturnStack {
    /// Creates a RAS with `depth` entries.
    pub fn new(depth: usize) -> Self {
        ReturnStack {
            stack: Vec::with_capacity(depth),
            depth,
            overflows: 0,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
            self.overflows += 1;
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

impl xt_snapshot::SnapshotState for L0Btb {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.bool(self.enabled);
        for &(pc, target, lru) in &self.entries {
            e.u64(pc);
            e.u64(target);
            e.u64(lru);
        }
        e.u64(self.stamp);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.bool()? != self.enabled {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "l0 btb enable",
            });
        }
        for e in &mut self.entries {
            *e = (d.u64()?, d.u64()?, d.u64()?);
        }
        self.stamp = d.u64()?;
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for L1Btb {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.usize(self.sets);
        e.usize(self.ways);
        e.seq(self.entries.len());
        for &(pc, target, lru) in &self.entries {
            e.u64(pc);
            e.u64(target);
            e.u64(lru);
        }
        e.u64(self.stamp);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.usize()? != self.sets || d.usize()? != self.ways {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "l1 btb geometry",
            });
        }
        let n = d.len(24)?;
        if n != self.entries.len() {
            return Err(xt_snapshot::SnapshotError::Corrupt {
                what: "l1 btb entry count",
            });
        }
        for e in &mut self.entries {
            *e = (d.u64()?, d.u64()?, d.u64()?);
        }
        self.stamp = d.u64()?;
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for IndirectPredictor {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.u32(self.bits);
        e.seq(self.table.len());
        for &(tag, target) in &self.table {
            e.u64(tag);
            e.u64(target);
        }
        e.u64(self.history);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.u32()? != self.bits {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "indirect predictor bits",
            });
        }
        let n = d.len(16)?;
        if n != self.table.len() {
            return Err(xt_snapshot::SnapshotError::Corrupt {
                what: "indirect table size",
            });
        }
        for e in &mut self.table {
            *e = (d.u64()?, d.u64()?);
        }
        self.history = d.u64()?;
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for ReturnStack {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.usize(self.depth);
        e.u64_seq(&self.stack);
        e.u64(self.overflows);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.usize()? != self.depth {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "return stack depth",
            });
        }
        let stack = d.u64_seq()?;
        if stack.len() > self.depth {
            return Err(xt_snapshot::SnapshotError::Corrupt {
                what: "return stack size",
            });
        }
        self.stack = stack;
        self.overflows = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l0_lru_replacement() {
        let mut b = L0Btb::new(true);
        for pc in 0..17u64 {
            b.update(pc * 4, pc * 4 + 100);
        }
        assert_eq!(b.lookup(0), None, "oldest entry evicted");
        assert_eq!(b.lookup(16 * 4), Some(16 * 4 + 100));
    }

    #[test]
    fn l0_disabled_never_hits() {
        let mut b = L0Btb::new(false);
        b.update(8, 100);
        assert_eq!(b.lookup(8), None);
    }

    #[test]
    fn l1_set_associative() {
        let mut b = L1Btb::new(256, 4);
        // 5 entries in the same set (stride = sets*2 bytes for pc>>1 index)
        for k in 0..5u64 {
            b.update(k * 512, k);
        }
        let hits = (0..5u64).filter(|k| b.lookup(k * 512).is_some()).count();
        assert_eq!(hits, 4, "one way evicted");
    }

    #[test]
    fn ras_lifo() {
        let mut r = ReturnStack::new(4);
        r.push(10);
        r.push(20);
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = ReturnStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.overflows, 1);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "1 was dropped");
    }

    #[test]
    fn indirect_learns_monomorphic_target() {
        let mut p = IndirectPredictor::new();
        for _ in 0..4 {
            p.update(0x100, 0x2000);
        }
        assert_eq!(p.predict(0x100), Some(0x2000));
    }
}
