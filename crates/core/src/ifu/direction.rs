//! Hybrid (tournament) branch-direction predictor with the two-level
//! prediction-buffer mechanism of Fig. 6.
//!
//! The XT-910 stores prediction counters in banked SRAMs whose read
//! latency would normally prevent two dependent predictions in adjacent
//! cycles; the BUF1/BUF2 prefetch buffers solve this, letting
//! back-to-back (even same-cycle) branches consume up-to-date history.
//! With the mechanism *disabled* (`delayed_history = true`) this model
//! updates the global history one branch late — exactly the stale-history
//! hazard the buffers exist to remove.

const BIMODAL_BITS: u32 = 12;
const GSHARE_BITS: u32 = 14;
const CHOOSER_BITS: u32 = 12;
const HISTORY_BITS: u32 = 12;

/// Saturating 2-bit counter helpers.
fn bump(c: &mut u8, up: bool) {
    if up {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

fn taken(c: u8) -> bool {
    c >= 2
}

/// Tournament direction predictor (bimodal + gshare + chooser).
#[derive(Clone, Debug)]
pub struct DirectionPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    /// Outcome not yet folded into history (stale-history mode).
    pending: Option<bool>,
    delayed_history: bool,
}

impl DirectionPredictor {
    /// Creates a predictor; `two_level_buf` enables the Fig. 6 buffers
    /// (i.e., up-to-date history).
    pub fn new(two_level_buf: bool) -> Self {
        DirectionPredictor {
            bimodal: vec![1; 1 << BIMODAL_BITS],
            gshare: vec![1; 1 << GSHARE_BITS],
            chooser: vec![2; 1 << CHOOSER_BITS], // slight gshare bias
            history: 0,
            pending: None,
            delayed_history: !two_level_buf,
        }
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 1) ^ self.history) & ((1 << GSHARE_BITS) - 1)) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let bi = taken(self.bimodal[((pc >> 1) & ((1 << BIMODAL_BITS) - 1)) as usize]);
        let gs = taken(self.gshare[self.gshare_index(pc)]);
        let choose_gshare = taken(self.chooser[((pc >> 1) & ((1 << CHOOSER_BITS) - 1)) as usize]);
        if choose_gshare {
            gs
        } else {
            bi
        }
    }

    /// Trains on the actual outcome. Returns whether the prediction made
    /// *before* this update was correct.
    pub fn update(&mut self, pc: u64, outcome: bool) -> bool {
        let prediction = self.predict(pc);
        let bi_idx = ((pc >> 1) & ((1 << BIMODAL_BITS) - 1)) as usize;
        let gs_idx = self.gshare_index(pc);
        let ch_idx = ((pc >> 1) & ((1 << CHOOSER_BITS) - 1)) as usize;
        let bi_correct = taken(self.bimodal[bi_idx]) == outcome;
        let gs_correct = taken(self.gshare[gs_idx]) == outcome;
        if bi_correct != gs_correct {
            bump(&mut self.chooser[ch_idx], gs_correct);
        }
        bump(&mut self.bimodal[bi_idx], outcome);
        bump(&mut self.gshare[gs_idx], outcome);
        // history update: immediate with the 2-level buffers, one branch
        // late without them
        if self.delayed_history {
            if let Some(prev) = self.pending.take() {
                self.push_history(prev);
            }
            self.pending = Some(outcome);
        } else {
            self.push_history(outcome);
        }
        prediction == outcome
    }

    fn push_history(&mut self, outcome: bool) {
        self.history = ((self.history << 1) | outcome as u64) & ((1 << HISTORY_BITS) - 1);
    }
}

impl xt_snapshot::SnapshotState for DirectionPredictor {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.bool(self.delayed_history);
        e.bytes_seq(&self.bimodal);
        e.bytes_seq(&self.gshare);
        e.bytes_seq(&self.chooser);
        e.u64(self.history);
        match self.pending {
            None => e.u8(0),
            Some(o) => {
                e.u8(1);
                e.bool(o);
            }
        }
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.bool()? != self.delayed_history {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "direction predictor mode",
            });
        }
        let bimodal = d.bytes_seq()?;
        let gshare = d.bytes_seq()?;
        let chooser = d.bytes_seq()?;
        if bimodal.len() != self.bimodal.len()
            || gshare.len() != self.gshare.len()
            || chooser.len() != self.chooser.len()
        {
            return Err(xt_snapshot::SnapshotError::Corrupt {
                what: "predictor table size",
            });
        }
        self.bimodal.copy_from_slice(bimodal);
        self.gshare.copy_from_slice(gshare);
        self.chooser.copy_from_slice(chooser);
        self.history = d.u64()?;
        self.pending = match d.u8()? {
            0 => None,
            1 => Some(d.bool()?),
            _ => {
                return Err(xt_snapshot::SnapshotError::Corrupt {
                    what: "pending outcome tag",
                })
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = DirectionPredictor::new(true);
        let pc = 0x8000_0040;
        for _ in 0..8 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn learns_alternating_pattern_with_history() {
        let mut p = DirectionPredictor::new(true);
        let pc = 0x8000_0100;
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..200 {
            outcome = !outcome;
            if p.update(pc, outcome) && i >= 100 {
                correct += 1;
            }
        }
        assert!(correct >= 95, "gshare should nail T/N/T/N: {correct}/100");
    }

    #[test]
    fn stale_history_hurts_correlated_branches() {
        // Branch B's outcome equals branch A's previous outcome — only
        // learnable through up-to-date history.
        let run = |two_level: bool| -> u32 {
            let mut p = DirectionPredictor::new(two_level);
            let (pa, pb) = (0x1000, 0x2000);
            let mut correct = 0;
            for i in 0..2000u32 {
                let a_outcome = (i / 3) % 2 == 0; // some pattern
                p.update(pa, a_outcome);
                // B follows A immediately: correlated outcome
                if p.update(pb, a_outcome) && i >= 1000 {
                    correct += 1;
                }
            }
            correct
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with >= without,
            "2-level buffers never hurt: {with} vs {without}"
        );
        assert!(with >= 950, "correlation learnable with fresh history: {with}");
    }

    #[test]
    fn prediction_is_deterministic() {
        let mut p = DirectionPredictor::new(true);
        p.update(0x4000, true);
        assert_eq!(p.predict(0x8000), p.predict(0x8000));
        assert_eq!(p.predict(0x4000), p.predict(0x4000));
    }
}
