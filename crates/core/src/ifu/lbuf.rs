//! The 16-entry loop buffer (§III-C, Fig. 7).
//!
//! Small loop bodies are captured whole; while the buffer is streaming,
//! instruction fetch does not access the L1 I-cache and the loop-back
//! edge costs no bubble ("the last instruction of the current loop can be
//! issued together with the first instruction of the next loop").
//! Forward branches *inside* the body are allowed, so if-else bodies
//! still stream. A context switch flushes the buffer.

/// Loop-buffer state machine.
#[derive(Clone, Debug)]
pub struct LoopBuffer {
    capacity_insts: u64,
    enabled: bool,
    /// Candidate backward branch: (branch_pc, target).
    candidate: Option<(u64, u64)>,
    /// Active loop body: target..=branch_pc.
    active: Option<(u64, u64)>,
    /// Instructions served from the buffer.
    pub served: u64,
    /// Times a loop was captured.
    pub captures: u64,
}

impl LoopBuffer {
    /// Creates a loop buffer holding `capacity_insts` instructions.
    pub fn new(capacity_insts: u64, enabled: bool) -> Self {
        LoopBuffer {
            capacity_insts,
            enabled,
            candidate: None,
            active: None,
            served: 0,
            captures: 0,
        }
    }

    /// Whether `pc` is currently streamed from the buffer.
    pub fn serving(&self, pc: u64) -> bool {
        matches!(self.active, Some((lo, hi)) if pc >= lo && pc <= hi)
    }

    /// Observes a retiring instruction; `taken_to` is the branch target
    /// when this is a taken control transfer. Returns `true` when the
    /// instruction was served from the loop buffer.
    pub fn observe(&mut self, pc: u64, taken_to: Option<u64>) -> bool {
        if !self.enabled {
            return false;
        }
        let from_buf = self.serving(pc);
        if from_buf {
            self.served += 1;
        }
        match taken_to {
            Some(target) if target <= pc => {
                // backward branch: loop-back edge candidate. The body must
                // fit in the buffer (16 insts ~ 64 bytes of RVC/RVI mix;
                // we bound by bytes / 4 as a conservative estimate).
                let body_bytes = pc - target;
                if body_bytes / 2 <= self.capacity_insts * 2 {
                    match (self.candidate, self.active) {
                        (_, Some((lo, hi))) if lo == target && hi == pc => {
                            // still looping
                        }
                        (Some((cpc, ct)), _) if cpc == pc && ct == target => {
                            // second consecutive iteration: capture
                            self.active = Some((target, pc));
                            self.captures += 1;
                        }
                        _ => {
                            self.candidate = Some((pc, target));
                            if self
                                .active
                                .is_some_and(|(lo, hi)| !(target >= lo && pc <= hi))
                            {
                                self.active = None;
                            }
                        }
                    }
                } else {
                    self.candidate = None;
                    self.active = None;
                }
            }
            Some(_) => {
                // forward/other transfer: leaving the body deactivates
                if let Some((lo, hi)) = self.active {
                    if !(pc >= lo && pc <= hi) {
                        self.active = None;
                    }
                }
            }
            None => {
                // sequential instruction past the loop end deactivates
                if let Some((_, hi)) = self.active {
                    if pc > hi {
                        self.active = None;
                        self.candidate = None;
                    }
                }
            }
        }
        from_buf
    }

    /// Flush on context switch (§III-C).
    pub fn flush(&mut self) {
        self.candidate = None;
        self.active = None;
    }
}

fn save_opt_pair(e: &mut xt_snapshot::Enc, v: Option<(u64, u64)>) {
    match v {
        None => e.u8(0),
        Some((a, b)) => {
            e.u8(1);
            e.u64(a);
            e.u64(b);
        }
    }
}

fn restore_opt_pair(d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<Option<(u64, u64)>> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some((d.u64()?, d.u64()?))),
        _ => Err(xt_snapshot::SnapshotError::Corrupt {
            what: "option tag",
        }),
    }
}

impl xt_snapshot::SnapshotState for LoopBuffer {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.u64(self.capacity_insts);
        e.bool(self.enabled);
        save_opt_pair(e, self.candidate);
        save_opt_pair(e, self.active);
        e.u64(self.served);
        e.u64(self.captures);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.u64()? != self.capacity_insts || d.bool()? != self.enabled {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "loop buffer config",
            });
        }
        self.candidate = restore_opt_pair(d)?;
        self.active = restore_opt_pair(d)?;
        self.served = d.u64()?;
        self.captures = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate a loop of `body` instructions at 4-byte spacing iterating
    /// `iters` times; returns instructions served from the buffer.
    fn run_loop(lb: &mut LoopBuffer, base: u64, body: u64, iters: u64) -> u64 {
        let before = lb.served;
        for _ in 0..iters {
            for k in 0..body {
                let pc = base + k * 4;
                let last = k == body - 1;
                lb.observe(pc, last.then_some(base));
            }
        }
        lb.served - before
    }

    #[test]
    fn captures_after_two_iterations() {
        let mut lb = LoopBuffer::new(16, true);
        let served = run_loop(&mut lb, 0x1000, 4, 10);
        assert_eq!(lb.captures, 1);
        // first two iterations warm up; the rest stream from the buffer
        assert!(served >= 4 * 7, "served {served}");
    }

    #[test]
    fn big_loops_rejected() {
        let mut lb = LoopBuffer::new(16, true);
        let served = run_loop(&mut lb, 0x1000, 64, 10);
        assert_eq!(lb.captures, 0);
        assert_eq!(served, 0);
    }

    #[test]
    fn leaving_the_loop_deactivates() {
        let mut lb = LoopBuffer::new(16, true);
        run_loop(&mut lb, 0x1000, 4, 5);
        assert!(lb.serving(0x1004));
        // sequential code after the loop
        lb.observe(0x1010, None);
        lb.observe(0x1014, None);
        assert!(!lb.serving(0x1004));
    }

    #[test]
    fn disabled_never_serves() {
        let mut lb = LoopBuffer::new(16, false);
        assert_eq!(run_loop(&mut lb, 0x1000, 4, 10), 0);
    }

    #[test]
    fn flush_resets() {
        let mut lb = LoopBuffer::new(16, true);
        run_loop(&mut lb, 0x1000, 4, 5);
        lb.flush();
        assert!(!lb.serving(0x1000));
    }

    #[test]
    fn if_else_body_with_forward_branch_stays_active() {
        let mut lb = LoopBuffer::new(16, true);
        // body: 0x1000..0x1010 with loop-back at 0x1010; a forward branch
        // 0x1004 -> 0x100c stays inside the body
        for _ in 0..6 {
            lb.observe(0x1000, None);
            lb.observe(0x1004, Some(0x100c)); // forward skip inside body
            lb.observe(0x100c, None);
            lb.observe(0x1010, Some(0x1000));
        }
        assert_eq!(lb.captures, 1);
        assert!(lb.served > 0, "if-else loop still streams");
    }
}
