//! The XT-910 out-of-order pipeline timing model.
//!
//! Replays the committed trace through the 12-stage structure. Constant
//! pipeline depth shifts every instruction equally and cancels out of
//! IPC, so stages are modeled as bandwidth/occupancy constraints plus the
//! *differential* penalties the paper describes: taken-branch bubbles by
//! redirect source (§III-B), ≥7-cycle mispredict correction at the
//! branch-jump unit (§III-A), loop-buffer streaming (§III-C), rename and
//! ROB/issue-queue occupancy (§IV), the dual-issue LSU with pseudo
//! double stores and ordering-violation flushes (§V), and vector-unit
//! latencies (§VII).

use crate::config::CoreConfig;
use crate::ifu::{FrontEnd, Redirect};
use crate::lsu::Lsu;
use crate::perf::{PerfCounters, RunReport, StallCause};
use crate::resources::{Bandwidth, PipeGroup, SlotLimiter, Window};
use xt_emu::{DynInst, TraceSource};
use xt_isa::{ExecClass, Op, RegFile};
use xt_mem::MemSystem;
use xt_trace::{FlushCause, FlushEvent, InstRecord, TraceBuffer, TraceSink};

/// The out-of-order core.
///
/// Besides whole-trace runs ([`Self::run_to_end`]), the core supports
/// *bounded-epoch* stepping: call [`Self::step`] instruction by
/// instruction and watch [`Self::cycles`] to stop at an epoch boundary.
/// All state is plain data (`Send`, asserted below), so the `xt-soc`
/// epoch engine can move each core onto a worker thread for a cycle
/// slice and hand it back at the barrier.
#[derive(Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    core_id: usize,
    fe: FrontEnd,
    lsu: Lsu,
    // front-end fetch state
    fetch_cycle: u64,
    fetch_bytes: u64,
    cur_fetch_line: u64,
    // stage bandwidth
    decode_bw: Bandwidth,
    rename_bw: Bandwidth,
    retire_bw: Bandwidth,
    issue_slots: SlotLimiter,
    // windows
    rob: Window,
    iq: Window,
    phys: [Window; 3],
    // execution pipes
    alu: PipeGroup,
    bju: PipeGroup,
    mdu: PipeGroup,
    fpvec: PipeGroup,
    // scoreboard: cycle each architectural register's value is ready
    reg_ready: [[u64; 32]; 3],
    // vector scoreboard: per-vreg (first-slice, whole-group, chainable)
    // readiness — dependent vector ops chain off `first` (§VII, docs/VECTOR.md)
    vreg: [xt_vector::VregReady; 32],
    serialize_point: u64,
    max_complete: u64,
    last_retire: u64,
    /// Flush bubble awaiting attribution: set at a redirect, charged at
    /// the next instruction's fetch (whose cycle bounds the interval, so
    /// conservation holds even when the flush is the last event).
    pending_flush: Option<(u64, StallCause)>,
    /// Optional per-instruction pipeline tracer (None = zero overhead).
    tracer: Option<TraceBuffer>,
    vec_cfg: xt_vector::VectorConfig,
    last_vset_imm: Option<i64>,
    /// vsetvl speculation failures (§VII).
    pub vset_spec_fails: u64,
    perf: PerfCounters,
}

// The epoch engine hands cores to scoped worker threads; if a non-Send
// field (Rc, raw pointer, …) ever sneaks in, fail the build here rather
// than in xt-soc.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<OooCore>();
};

impl OooCore {
    /// Creates a core with id `core_id` (its index in the cluster memory
    /// system).
    pub fn new(cfg: CoreConfig, core_id: usize) -> Self {
        OooCore {
            fe: FrontEnd::new(&cfg),
            lsu: Lsu::new(&cfg),
            fetch_cycle: 0,
            fetch_bytes: 0,
            cur_fetch_line: u64::MAX,
            decode_bw: Bandwidth::new(cfg.decode_width),
            rename_bw: Bandwidth::new(cfg.rename_width),
            retire_bw: Bandwidth::new(cfg.retire_width),
            issue_slots: SlotLimiter::new(cfg.issue_width as u32),
            rob: Window::new(cfg.rob_entries),
            iq: Window::new(cfg.iq_entries),
            phys: [
                Window::new(cfg.phys_int),
                Window::new(cfg.phys_fp),
                Window::new(cfg.phys_vec),
            ],
            alu: PipeGroup::new(cfg.alu_pipes),
            bju: PipeGroup::new(1),
            mdu: PipeGroup::new(1),
            fpvec: PipeGroup::new(cfg.fp_pipes.max(cfg.vec_pipes)),
            reg_ready: [[0; 32]; 3],
            vreg: [xt_vector::VregReady::default(); 32],
            serialize_point: 0,
            max_complete: 0,
            last_retire: 0,
            pending_flush: None,
            tracer: None,
            vec_cfg: xt_vector::VectorConfig::default(),
            last_vset_imm: None,
            vset_spec_fails: 0,
            perf: PerfCounters::default(),
            core_id,
            cfg,
        }
    }

    /// Consumes the whole trace and produces the report.
    pub fn run_to_end(&mut self, mut trace: TraceSource, mem: &mut MemSystem) -> RunReport {
        for d in trace.by_ref() {
            self.step(&d, mem);
        }
        self.finish_report(mem, trace.exit_code)
    }

    /// Seals the counters after the last [`Self::step`] and produces the
    /// report. External drivers (the `xt-perf` sampled runners, the
    /// epoch engine) that step the core themselves call this instead of
    /// [`Self::run_to_end`].
    pub fn finish_report(&mut self, mem: &MemSystem, exit_code: Option<u64>) -> RunReport {
        self.perf.cycles = self.last_retire.max(self.max_complete);
        self.perf.prefetch_hits = mem
            .stats()
            .prefetches_useful
            .get(self.core_id)
            .copied()
            .unwrap_or(0);
        debug_assert!(
            self.perf.stalls_conserved(),
            "stall counters double-count: attributed {} > cycles {}",
            self.perf.attributed_stall_cycles(),
            self.perf.cycles
        );
        RunReport {
            machine: self.cfg.name,
            perf: self.perf.clone(),
            mem: mem.stats(),
            exit_code,
        }
    }

    /// Current cycle count (for incremental use).
    pub fn cycles(&self) -> u64 {
        self.last_retire.max(self.max_complete)
    }

    /// Performance counters (for incremental use).
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Cycle at which the most recently stepped instruction retired.
    /// Retirement is in-order, so across successive [`Self::step`]
    /// calls this must never decrease — checkers rely on that.
    pub fn last_retire_cycle(&self) -> u64 {
        self.last_retire
    }

    /// Attaches a fresh trace buffer: subsequent [`Self::step`] calls
    /// record one [`InstRecord`] per instruction plus flush events.
    /// Tracing is off (and free) until this is called.
    pub fn attach_tracer(&mut self) {
        self.tracer = Some(TraceBuffer::new());
    }

    /// The attached trace buffer, if any.
    pub fn tracer(&self) -> Option<&TraceBuffer> {
        self.tracer.as_ref()
    }

    /// Detaches and returns the trace buffer (tracing stops).
    pub fn take_tracer(&mut self) -> Option<TraceBuffer> {
        self.tracer.take()
    }

    /// Records a flush for stall attribution and tracing. Call *before*
    /// the accompanying [`Self::redirect_fetch`]: the stall interval
    /// starts at the pre-redirect fetch cycle and is charged lazily at
    /// the next instruction's fetch, whose cycle keeps the charge inside
    /// the program's run (see the conservation notes in [`crate::perf`]).
    fn note_flush(&mut self, pc: u64, at: u64, cause: FlushCause, stall: StallCause) {
        self.pending_flush = Some((self.fetch_cycle, stall));
        if let Some(t) = self.tracer.as_mut() {
            t.flush_event(FlushEvent { cycle: at, pc, cause });
        }
    }

    fn src_file_index(rf: RegFile) -> usize {
        match rf {
            RegFile::Int => 0,
            RegFile::Fp => 1,
            RegFile::Vec => 2,
            RegFile::None => 0,
        }
    }

    /// Advances the model by one committed instruction.
    pub fn step(&mut self, d: &DynInst, mem: &mut MemSystem) {
        let cfg = &self.cfg;
        let class = d.inst.op.exec_class();
        let fo = self.fe.observe(d, &mut self.perf);

        // Charge the flush bubble left by the previous instruction's
        // redirect. The interval ends at this instruction's fetch cycle,
        // which bounds the charge inside the program's run; a flush on
        // the very last instruction stays unattributed (conservative).
        if let Some((from, cause)) = self.pending_flush.take() {
            self.perf.charge(cause, from, self.fetch_cycle);
        }

        // ---- IF/IP/IB: fetch bandwidth, I-cache, IBUF ----
        if !fo.from_lbuf {
            let line = d.fetch_pa >> 6;
            if line != self.cur_fetch_line {
                let t = mem.icache_fetch(self.core_id, self.fetch_cycle, d.fetch_pa);
                if t > self.fetch_cycle {
                    self.perf.charge(StallCause::ICacheMiss, self.fetch_cycle, t);
                    self.fetch_cycle = t;
                    self.fetch_bytes = 0;
                }
                self.cur_fetch_line = line;
            }
            if self.fetch_bytes + d.inst.len as u64 > cfg.fetch_bytes {
                self.fetch_cycle += 1;
                self.fetch_bytes = 0;
            }
            self.fetch_bytes += d.inst.len as u64;
        }
        let fetched = self.fetch_cycle;

        // ---- ID: decode (3/cycle) ----
        let dec = self.decode_bw.take(fetched + 1);
        // IBUF back-pressure: fetch cannot run more than the buffer depth
        // ahead of decode.
        let ibuf_cycles = (cfg.ibuf_entries as u64 / cfg.decode_width).max(1);
        if dec > self.fetch_cycle + ibuf_cycles {
            self.fetch_cycle = dec - ibuf_cycles;
            self.fetch_bytes = 0;
        }

        // ---- IR: rename (4 µops/cycle) + physical registers ----
        let uops = if class == ExecClass::Store && cfg.split_stores {
            2
        } else {
            1
        };
        self.perf.uops += uops;
        let mut ren = self.rename_bw.take_n(dec + 1, uops);
        if let Some((rf, _)) = d.inst.dest() {
            ren = self.phys[Self::src_file_index(rf)].alloc(ren);
        }

        // ---- IS: dispatch into ROB + issue queue ----
        // Stall attribution is frontier-based (see [`crate::perf`]): when
        // several in-flight instructions wait out the same full-ROB (or
        // full-IQ) cycles, each wall-clock cycle is charged at most once,
        // so the per-cause sums can never exceed total cycles.
        let rob_at = self.rob.alloc(ren + 1);
        self.perf.charge(StallCause::RobFull, ren + 1, rob_at);
        let iq_at = self.iq.alloc(rob_at);
        self.perf.charge(StallCause::IqFull, rob_at, iq_at);
        let disp = iq_at;

        // ---- RF/EX: operands, issue slots, pipes ----
        // element width for the vector arms (the trace carries SEW in bits)
        let sew = xt_isa::vector::Sew::decode(
            (d.sew_bits.max(8) as u32).trailing_zeros().saturating_sub(3),
        )
        .unwrap_or(xt_isa::vector::Sew::E64);
        let mut ready = disp + 1;
        for (rf, idx) in d.inst.sources() {
            if rf == RegFile::Vec {
                // chaining: an element-ordered consumer starts at the
                // producer's first slice, not the whole-group completion;
                // the operand group spans the effective LMUL registers
                let group = xt_vector::chain::group_regs(&self.vec_cfg, d.vl as u64, sew);
                for k in 0..group {
                    let vr = &self.vreg[((idx as u64 + k) % 32) as usize];
                    ready = ready.max(xt_vector::source_ready(d.inst.op, vr));
                }
            } else {
                ready = ready.max(self.reg_ready[Self::src_file_index(rf)][idx as usize]);
            }
        }
        ready = ready.max(self.serialize_point);

        let lat = cfg.lat;
        let mut violation = false;
        // chain-in/whole-group readiness a vector arm computed for its
        // destination; None means the generic writeback (whole group at
        // `complete`, no chaining) applies
        let mut vec_dest: Option<xt_vector::VregReady> = None;
        // cycle the µop won an issue slot and a pipe — EX1 in the trace
        let exec_start;
        let complete = match class {
            ExecClass::Alu => {
                let start = self.alu.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                start + lat.alu
            }
            ExecClass::Mul => {
                // multiplier shares the ALU pipe pair (§II)
                let start = self.alu.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                start + lat.mul
            }
            ExecClass::Div => {
                // divider shares the multi-cycle pipe, unpipelined
                let start = self.mdu.issue(self.issue_slots.take(ready), lat.div);
                exec_start = start;
                start + lat.div
            }
            ExecClass::Branch | ExecClass::Jump | ExecClass::JumpInd => {
                let start = self.bju.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                start + lat.alu
            }
            ExecClass::Load => {
                let mem_info = d.mem.expect("load has a memory access");
                let at = self.issue_slots.take(ready);
                exec_start = at;
                let r = self.lsu.load(
                    self.core_id,
                    d.pc,
                    mem_info.vaddr,
                    mem_info.paddr,
                    mem_info.size as u64,
                    at,
                    mem,
                );
                violation = r.violation;
                if r.forwarded {
                    self.perf.store_forwards += 1;
                }
                if let Some((f, t)) = r.queue_wait {
                    self.perf.charge(StallCause::LsuQueueFull, f, t);
                }
                if let Some((f, t)) = r.miss_wait {
                    self.perf.charge(StallCause::DCacheMiss, f, t);
                }
                r.complete
            }
            ExecClass::Store => {
                let mem_info = d.mem.expect("store has a memory access");
                // base register gates st.addr; the data register (rs2 for
                // scalar stores) gates st.data
                let base_rdy = self.reg_ready[0][d.inst.rs1 as usize].max(disp + 1);
                let data_rdy = ready; // includes all sources
                let at = self.issue_slots.take(disp + 1);
                exec_start = at;
                let s = self.lsu.store(
                    mem_info.paddr,
                    mem_info.size as u64,
                    at,
                    base_rdy,
                    data_rdy,
                );
                if let Some((f, t)) = s.queue_wait {
                    self.perf.charge(StallCause::LsuQueueFull, f, t);
                }
                // the write-allocate / ownership request launches as soon
                // as the address resolves (pseudo double store, Fig. 10);
                // the write buffer absorbs the fill latency off the
                // retirement critical path
                let _ = mem.dstore(self.core_id, s.addr_ready, mem_info.vaddr, mem_info.paddr);
                s.complete
            }
            ExecClass::Amo => {
                let start = self.issue_slots.take(ready);
                exec_start = start;
                // an AMO is a read-modify-write: it needs the line in a
                // writable state, so it takes the store coherence path
                let done = match d.mem {
                    Some(m) => mem
                        .dstore(self.core_id, start, m.vaddr, m.paddr)
                        .max(start + 4),
                    None => start + 4,
                };
                self.serialize_point = done; // acquire/release ordering
                done
            }
            ExecClass::Fence => {
                let done = ready.max(self.max_complete);
                exec_start = done;
                self.serialize_point = done;
                done
            }
            ExecClass::Csr => {
                let start = ready.max(self.max_complete);
                exec_start = start;
                let done = start + lat.csr;
                self.serialize_point = done;
                done
            }
            ExecClass::System => {
                let start = ready.max(self.max_complete);
                exec_start = start;
                let done = start + lat.csr;
                self.serialize_point = done;
                done
            }
            ExecClass::CacheOp => {
                if d.inst.op == Op::XDcacheCall {
                    mem.dcache_flush_all(self.core_id);
                }
                let start = ready.max(self.max_complete);
                exec_start = start;
                let done = start + 8;
                self.serialize_point = done;
                done
            }
            ExecClass::VSet => {
                // §VII: vector parameters are predicted and vector ops
                // execute speculatively; failure only when vl changes.
                let start = self.alu.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                let imm = d.inst.imm;
                let fail =
                    d.inst.op == Op::Vsetvl || self.last_vset_imm.is_some_and(|p| p != imm);
                self.last_vset_imm = Some(imm);
                if fail {
                    // speculation failure: vector ops issued under the
                    // stale parameters re-execute — serialize behind the
                    // corrected configuration (§VII)
                    self.vset_spec_fails += 1;
                    let done = start + 4;
                    self.serialize_point = self.serialize_point.max(done);
                    done
                } else {
                    start + lat.alu
                }
            }
            ExecClass::FpAdd => {
                let start = self.fpvec.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                start + lat.fadd
            }
            ExecClass::FpMul => {
                let start = self.fpvec.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                start + lat.fmul
            }
            ExecClass::FpDiv => {
                let start = self.fpvec.issue(self.issue_slots.take(ready), lat.fdiv);
                exec_start = start;
                start + lat.fdiv
            }
            ExecClass::FpCvt => {
                let start = self.fpvec.issue(self.issue_slots.take(ready), 1);
                exec_start = start;
                start + lat.fcvt
            }
            ExecClass::VecAlu | ExecClass::VecFAdd | ExecClass::VecMul | ExecClass::VecDiv
            | ExecClass::VecPerm => {
                // crack into lane slices: occupancy beats the pipes stay
                // busy, first/last slice results for the chaining
                // scoreboard (docs/VECTOR.md)
                let plan = xt_vector::VecPlan::crack(&self.vec_cfg, d.inst.op, d.vl as u64, sew);
                let at = self.issue_slots.take(ready);
                let start = self.fpvec.issue(at, plan.occupancy);
                // a ready vector µop held back by busy vector pipes is a
                // vector-unit stall, not core back-pressure
                self.perf.charge(StallCause::VecBusy, at, start);
                exec_start = start;
                vec_dest = Some(plan.dest_ready(start));
                plan.last_done(start)
            }
            ExecClass::VecLoad => {
                let mem_info = d.mem.expect("vector load accesses memory");
                let bytes = mem_info.size as u64;
                // the LSU moves 128 bits per cycle (§VII)
                let beats = bytes.div_ceil(16).max(1);
                let at = self.issue_slots.take(ready);
                exec_start = at;
                let r = self.lsu.load(
                    self.core_id,
                    d.pc,
                    mem_info.vaddr,
                    mem_info.paddr,
                    bytes,
                    at,
                    mem,
                );
                violation = r.violation;
                if let Some((f, t)) = r.queue_wait {
                    self.perf.charge(StallCause::LsuQueueFull, f, t);
                }
                if let Some((f, t)) = r.miss_wait {
                    self.perf.charge(StallCause::DCacheMiss, f, t);
                }
                // extra lines beyond the first
                let line = 64;
                let first_line = mem_info.paddr & !(line - 1);
                let last_line = (mem_info.paddr + bytes.max(1) - 1) & !(line - 1);
                let mut done = r.complete;
                let mut extra = 1;
                let mut pa = first_line + line;
                while pa <= last_line {
                    let t = mem.dload(
                        self.core_id,
                        r.complete.min(self.max_complete.max(ready)) + extra,
                        mem_info.vaddr + (pa - mem_info.paddr.min(pa)).min(bytes),
                        pa,
                    );
                    done = done.max(t);
                    extra += 1;
                    pa += line;
                }
                // loads forward beat by beat: dependents chain off the
                // first 128-bit beat while later beats stream in
                vec_dest = Some(xt_vector::VregReady {
                    first: r.complete,
                    last: done + beats - 1,
                    chainable: true,
                });
                done + beats - 1
            }
            ExecClass::VecStore => {
                let mem_info = d.mem.expect("vector store accesses memory");
                let bytes = mem_info.size as u64;
                let beats = bytes.div_ceil(16).max(1);
                let base_rdy = self.reg_ready[0][d.inst.rs1 as usize].max(disp + 1);
                let at = self.issue_slots.take(disp + 1);
                exec_start = at;
                let s = self.lsu.store(mem_info.paddr, bytes, at, base_rdy, ready);
                if let Some((f, t)) = s.queue_wait {
                    self.perf.charge(StallCause::LsuQueueFull, f, t);
                }
                let _ = mem.dstore(self.core_id, s.addr_ready, mem_info.vaddr, mem_info.paddr);
                s.complete + beats - 1
            }
        };

        // ---- writeback ----
        if let Some((rf, idx)) = d.inst.dest() {
            self.reg_ready[Self::src_file_index(rf)][idx as usize] = complete;
            if rf == RegFile::Vec {
                // the whole effective-LMUL group becomes ready together;
                // chain-in points come from the executing arm
                let vr = vec_dest.unwrap_or(xt_vector::VregReady::at(complete));
                let group = xt_vector::chain::group_regs(&self.vec_cfg, d.vl as u64, sew);
                for k in 0..group {
                    self.vreg[((idx as u64 + k) % 32) as usize] = vr;
                }
            }
        }
        self.max_complete = self.max_complete.max(complete);

        // ---- RT1/RT2: in-order retirement ----
        let ret = self.retire_bw.take((complete + 1).max(self.last_retire));
        self.last_retire = ret;
        self.perf.instructions += 1;
        self.rob.commit(ret);
        self.iq.commit(complete);
        if let Some((rf, _)) = d.inst.dest() {
            self.phys[Self::src_file_index(rf)].commit(ret);
        }
        match class {
            ExecClass::Load | ExecClass::VecLoad => self.lsu.lq.commit(ret),
            ExecClass::Store | ExecClass::VecStore => {
                self.lsu.sq.commit(ret + 1);
                self.lsu.drain_before(ret);
            }
            _ => {}
        }

        // ---- trace record (only when a tracer is attached) ----
        if let Some(tracer) = self.tracer.as_mut() {
            let ex1 = exec_start;
            let ex4 = exec_start.max(complete.saturating_sub(1));
            let span = ex4 - ex1;
            // IF/IP/IB share the fetch cycle, EX2/EX3 interpolate the
            // execution span, RT1/RT2 share the retire cycle — see
            // docs/PIPELINE.md for the modeled-vs-synthesized split.
            let rec = InstRecord::new(
                self.perf.instructions - 1,
                d.pc,
                xt_isa::disasm::disasm(&d.inst),
                [
                    fetched,
                    fetched,
                    fetched,
                    dec,
                    ren,
                    rob_at,
                    ready,
                    ex1,
                    ex1 + span / 3,
                    ex1 + 2 * span / 3,
                    ex4,
                    ret,
                    ret,
                ],
            );
            tracer.record(rec);
        }

        // ---- redirects ----
        let flush_pen = cfg.flush_penalty;
        let mispredict_pen = cfg.mispredict_penalty;
        if d.trapped {
            // Fig. 8: exception flushes the younger speculative work
            self.perf.exception_flushes += 1;
            self.note_flush(d.pc, complete, FlushCause::Exception, StallCause::OrderFlush);
            self.redirect_fetch(complete + flush_pen);
        } else if violation {
            self.perf.mem_order_flushes += 1;
            self.note_flush(d.pc, complete, FlushCause::MemOrder, StallCause::OrderFlush);
            self.redirect_fetch(complete + flush_pen);
        } else {
            match fo.redirect {
                Redirect::None => {}
                Redirect::TakenAtIf => {
                    if !fo.from_lbuf {
                        self.new_fetch_group(0);
                        // a taken branch ends the decode group; only the
                        // loop buffer can issue the loop-back edge
                        // together with the next iteration (SIII-C)
                        self.decode_bw.break_group();
                    }
                }
                Redirect::TakenAtIp => {
                    self.new_fetch_group(self.cfg.ip_jump_bubble);
                    self.decode_bw.break_group();
                }
                Redirect::Mispredict => {
                    self.note_flush(
                        d.pc,
                        complete,
                        FlushCause::Mispredict,
                        StallCause::MispredictFlush,
                    );
                    self.redirect_fetch(complete + mispredict_pen)
                }
            }
        }
    }

    fn new_fetch_group(&mut self, bubble: u64) {
        self.fetch_cycle += 1 + bubble;
        self.fetch_bytes = 0;
    }

    fn redirect_fetch(&mut self, at: u64) {
        self.fetch_cycle = self.fetch_cycle.max(at);
        self.fetch_bytes = 0;
        self.cur_fetch_line = u64::MAX;
    }
}

impl xt_snapshot::SnapshotState for OooCore {
    /// The configuration (`cfg`, `vec_cfg`) is construction-time data:
    /// only the machine name and vector geometry are written, and
    /// restore [`Mismatch`](xt_snapshot::SnapshotError::Mismatch)es
    /// against the live instance rather than overwriting it. Every
    /// sub-resource additionally checks its own width/capacity.
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.str(self.cfg.name);
        e.usize(self.core_id);
        e.u32(self.vec_cfg.vlen_bits);
        e.u32(self.vec_cfg.slen_bits);
        self.fe.save(e);
        self.lsu.save(e);
        e.u64(self.fetch_cycle);
        e.u64(self.fetch_bytes);
        e.u64(self.cur_fetch_line);
        self.decode_bw.save(e);
        self.rename_bw.save(e);
        self.retire_bw.save(e);
        self.issue_slots.save(e);
        self.rob.save(e);
        self.iq.save(e);
        for w in &self.phys {
            w.save(e);
        }
        self.alu.save(e);
        self.bju.save(e);
        self.mdu.save(e);
        self.fpvec.save(e);
        for file in &self.reg_ready {
            e.u64_seq(file);
        }
        for v in &self.vreg {
            e.u64(v.first);
            e.u64(v.last);
            e.bool(v.chainable);
        }
        e.u64(self.serialize_point);
        e.u64(self.max_complete);
        e.u64(self.last_retire);
        crate::perf::save_pending_flush(e, self.pending_flush);
        crate::perf::save_opt_tracer(e, self.tracer.as_ref());
        match self.last_vset_imm {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                e.i64(v);
            }
        }
        e.u64(self.vset_spec_fails);
        self.perf.save(e);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.string()? != self.cfg.name {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "core config name",
            });
        }
        if d.usize()? != self.core_id {
            return Err(xt_snapshot::SnapshotError::Mismatch { what: "core id" });
        }
        if d.u32()? != self.vec_cfg.vlen_bits || d.u32()? != self.vec_cfg.slen_bits {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "vector geometry",
            });
        }
        self.fe.restore(d)?;
        self.lsu.restore(d)?;
        self.fetch_cycle = d.u64()?;
        self.fetch_bytes = d.u64()?;
        self.cur_fetch_line = d.u64()?;
        self.decode_bw.restore(d)?;
        self.rename_bw.restore(d)?;
        self.retire_bw.restore(d)?;
        self.issue_slots.restore(d)?;
        self.rob.restore(d)?;
        self.iq.restore(d)?;
        for w in &mut self.phys {
            w.restore(d)?;
        }
        self.alu.restore(d)?;
        self.bju.restore(d)?;
        self.mdu.restore(d)?;
        self.fpvec.restore(d)?;
        for file in &mut self.reg_ready {
            let v = d.u64_seq()?;
            if v.len() != file.len() {
                return Err(xt_snapshot::SnapshotError::Corrupt {
                    what: "scoreboard size",
                });
            }
            file.copy_from_slice(&v);
        }
        for v in &mut self.vreg {
            v.first = d.u64()?;
            v.last = d.u64()?;
            v.chainable = d.bool()?;
        }
        self.serialize_point = d.u64()?;
        self.max_complete = d.u64()?;
        self.last_retire = d.u64()?;
        self.pending_flush = crate::perf::restore_pending_flush(d)?;
        self.tracer = crate::perf::restore_opt_tracer(d)?;
        self.last_vset_imm = match d.u8()? {
            0 => None,
            1 => Some(d.i64()?),
            _ => {
                return Err(xt_snapshot::SnapshotError::Corrupt {
                    what: "vset imm tag",
                })
            }
        };
        self.vset_spec_fails = d.u64()?;
        self.perf.restore(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_asm::Asm;
    use xt_isa::reg::Gpr;
    use xt_mem::{MemConfig, PrefetchConfig};

    fn report(cfg: CoreConfig, build: impl FnOnce(&mut Asm)) -> RunReport {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.finish().unwrap();
        crate::run_ooo(&p, &cfg, 10_000_000)
    }

    #[test]
    fn independent_alu_ops_superscalar() {
        // warm loop of independent adds: IPC should approach the
        // narrower of decode width (3) and ALU+branch pipe supply
        let r = report(CoreConfig::xt910(), |a| {
            a.li(Gpr::S0, 2000);
            let top = a.here();
            a.addi(Gpr::A1, Gpr::A1, 1);
            a.addi(Gpr::A2, Gpr::A2, 1);
            a.addi(Gpr::A3, Gpr::A3, 1);
            a.addi(Gpr::A4, Gpr::A4, 1);
            a.addi(Gpr::A5, Gpr::A5, 1);
            a.addi(Gpr::A6, Gpr::A6, 1);
            a.addi(Gpr::S0, Gpr::S0, -1);
            a.bnez(Gpr::S0, top);
        });
        let ipc = r.perf.ipc();
        assert!(ipc > 1.8, "superscalar ALU loop, got IPC {ipc}");
    }

    #[test]
    fn dependent_chain_is_serial() {
        // a loop whose body is one long dependent chain: bounded by the
        // chain, not the 3-wide front end
        let r = report(CoreConfig::xt910(), |a| {
            a.li(Gpr::S0, 500);
            let top = a.here();
            for _ in 0..16 {
                a.addi(Gpr::A1, Gpr::A1, 1);
            }
            a.addi(Gpr::S0, Gpr::S0, -1);
            a.bnez(Gpr::S0, top);
        });
        let ipc = r.perf.ipc();
        assert!(ipc < 1.35, "dependent chain bounds IPC near 1, got {ipc}");
        assert!(ipc > 0.8, "but should sustain ~1, got {ipc}");
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // data-dependent unpredictable branches (LCG parity)
        let build = |a: &mut Asm| {
            a.li(Gpr::S0, 12345);
            a.li(Gpr::S1, 1103515245);
            a.li(Gpr::S2, 12345);
            a.li(Gpr::A2, 0);
            a.li(Gpr::A3, 2000);
            let top = a.new_label();
            a.bind(top).unwrap();
            a.mul(Gpr::S0, Gpr::S0, Gpr::S1);
            a.add(Gpr::S0, Gpr::S0, Gpr::S2);
            a.srli(Gpr::T0, Gpr::S0, 17);
            a.andi(Gpr::T0, Gpr::T0, 1);
            let skip = a.new_label();
            a.beqz(Gpr::T0, skip);
            a.addi(Gpr::A2, Gpr::A2, 1);
            a.bind(skip).unwrap();
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        };
        let r = report(CoreConfig::xt910(), build);
        assert!(
            r.perf.branch_accuracy() < 0.95,
            "random branch not predictable: {}",
            r.perf.branch_accuracy()
        );
        // the same loop with a predictable branch is much faster
        let r2 = report(CoreConfig::xt910(), |a| {
            a.li(Gpr::A3, 2000);
            let top = a.here();
            a.addi(Gpr::A2, Gpr::A2, 1);
            a.addi(Gpr::A2, Gpr::A2, 1);
            a.addi(Gpr::A2, Gpr::A2, 1);
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        });
        assert!(r2.perf.branch_accuracy() > 0.99);
    }

    #[test]
    fn loop_buffer_feeds_small_loops() {
        let r = report(CoreConfig::xt910(), |a| {
            a.li(Gpr::A3, 3000);
            let top = a.here();
            a.addi(Gpr::A1, Gpr::A1, 1);
            a.addi(Gpr::A2, Gpr::A2, 2);
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        });
        assert!(
            r.perf.lbuf_insts > 8000,
            "loop streamed from LBUF: {}",
            r.perf.lbuf_insts
        );
        let mut no_lbuf = CoreConfig::xt910();
        no_lbuf.loop_buffer = false;
        let r2 = report(no_lbuf, |a| {
            a.li(Gpr::A3, 3000);
            let top = a.here();
            a.addi(Gpr::A1, Gpr::A1, 1);
            a.addi(Gpr::A2, Gpr::A2, 2);
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        });
        assert!(
            r.perf.cycles <= r2.perf.cycles,
            "LBUF never slower: {} vs {}",
            r.perf.cycles,
            r2.perf.cycles
        );
    }

    #[test]
    fn cache_misses_visible_in_pointer_chase() {
        // build a pointer chain with 4 KiB hops (every load misses L1)
        let r = report(CoreConfig::xt910(), |a| {
            // first symbol lands exactly at the data base (8-aligned)
            let n = 512u64;
            let base_addr = xt_asm::DEFAULT_DATA_BASE;
            let mut chain = vec![0u64; n as usize * 512];
            for k in 0..n {
                let next_idx = ((k + 1) % n) * 512;
                chain[(k * 512) as usize] = base_addr + next_idx * 8;
            }
            let base = a.data_u64("chain", &chain);
            assert_eq!(base, base_addr);
            a.la(Gpr::A1, base);
            a.li(Gpr::A3, 2000);
            let top = a.here();
            a.ld(Gpr::A1, Gpr::A1, 0);
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        });
        let cpi = r.perf.cpi();
        assert!(cpi > 5.0, "memory-bound chase should be slow: CPI {cpi}");
    }

    #[test]
    fn store_forwarding_counted() {
        let r = report(CoreConfig::xt910(), |a| {
            let buf = a.data_zeros("buf", 64);
            a.la(Gpr::A1, buf);
            a.li(Gpr::A3, 1000);
            let top = a.here();
            a.sd(Gpr::A3, Gpr::A1, 0);
            a.ld(Gpr::A2, Gpr::A1, 0); // immediately reload
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        });
        assert!(
            r.perf.store_forwards > 900,
            "store->load forwards: {}",
            r.perf.store_forwards
        );
    }

    #[test]
    fn prefetch_accelerates_streaming_in_core() {
        let stream = |pf: PrefetchConfig| {
            let mut a = Asm::new();
            let buf = a.data_zeros("buf", 512 * 1024);
            a.la(Gpr::A1, buf);
            a.li(Gpr::A2, 64 * 1024 / 8);
            let top = a.here();
            a.ld(Gpr::A4, Gpr::A1, 0);
            a.addi(Gpr::A1, Gpr::A1, 8);
            a.addi(Gpr::A2, Gpr::A2, -1);
            a.bnez(Gpr::A2, top);
            a.halt();
            let p = a.finish().unwrap();
            let mem_cfg = MemConfig {
                prefetch: pf,
                ..MemConfig::default()
            };
            crate::run_ooo_with_mem(&p, &CoreConfig::xt910(), mem_cfg, 10_000_000)
        };
        let off = stream(PrefetchConfig::off());
        let on = stream(PrefetchConfig::all_large());
        assert!(
            on.perf.cycles * 2 < off.perf.cycles,
            "prefetch >2x on stream: {} vs {}",
            on.perf.cycles,
            off.perf.cycles
        );
    }

    #[test]
    fn stall_attribution_conserved_under_rob_pressure() {
        // A cache-missing pointer chase with a deep tail of independent
        // ALU work: the chase head blocks retirement while the back end
        // keeps allocating, so the ROB fills and every younger
        // instruction waits out the *same* stall cycles. The old
        // per-instruction accounting summed those overlapping waits and
        // overflowed total cycles by orders of magnitude.
        // shrink the windows so back-pressure is easy to provoke
        let mut cfg = CoreConfig::xt910();
        cfg.rob_entries = 16;
        cfg.iq_entries = 8;
        let r = report(cfg, |a| {
            let n = 256u64;
            let base_addr = xt_asm::DEFAULT_DATA_BASE;
            let mut chain = vec![0u64; n as usize * 512];
            for k in 0..n {
                let next_idx = ((k + 1) % n) * 512;
                chain[(k * 512) as usize] = base_addr + next_idx * 8;
            }
            let base = a.data_u64("chain", &chain);
            assert_eq!(base, base_addr);
            a.la(Gpr::A1, base);
            a.li(Gpr::A3, 500);
            let top = a.here();
            a.ld(Gpr::A1, Gpr::A1, 0); // L1-missing chase head
            for _ in 0..32 {
                a.addi(Gpr::A2, Gpr::A2, 1); // independent fill
            }
            a.addi(Gpr::A3, Gpr::A3, -1);
            a.bnez(Gpr::A3, top);
        });
        let p = &r.perf;
        assert!(
            p.rob_stall_cycles() > 0,
            "workload must actually exercise ROB back-pressure"
        );
        assert!(
            p.stalls_conserved(),
            "attributed {} must fit in {} cycles",
            p.attributed_stall_cycles(),
            p.cycles
        );
    }

    #[test]
    fn exit_code_propagates() {
        let r = report(CoreConfig::xt910(), |a| {
            a.li(Gpr::A0, 55);
        });
        assert_eq!(r.exit_code, Some(55));
    }
}
