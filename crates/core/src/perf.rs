//! Performance counters, per-cause stall attribution, and run reports.
//!
//! ## Stall accounting (the conservation property)
//!
//! The timing models attribute lost wall-clock cycles to a
//! [`StallCause`] through [`PerfCounters::charge`]. Attribution is
//! **frontier-based**: the counters keep a private high-water mark of
//! wall-clock cycles already attributed, and a charge only counts the
//! part of its `[from, to)` interval that lies beyond the frontier.
//! Overlapping waits — several in-flight instructions stuck behind the
//! same full ROB, a D-cache miss shadowing an I-cache miss — are
//! therefore charged exactly once, to the cause that reached the cycles
//! first ("first blocker wins"). Two consequences:
//!
//! * **conservation** — `sum(stall(c) for c) ≤ cycles` holds for every
//!   program, provided every charge's `to` endpoint is a cycle some
//!   instruction is still in flight at (the models only charge
//!   endpoints bounded by a completion or retirement cycle). The
//!   predicate is [`PerfCounters::stalls_conserved`], debug-asserted at
//!   the end of every run and checked by the `xt-check` invariant
//!   suite on random programs.
//! * **under-attribution is possible** — a cause fully shadowed by an
//!   earlier-charged cause records nothing. The *unattributed* residue
//!   `cycles - attributed_stall_cycles()` is useful work plus shadowed
//!   stalls, not an error term.
//!
//! The stall counters are deliberately **not** public fields: arbitrary
//! writes could violate conservation silently. All mutation funnels
//! through [`PerfCounters::charge`], which maintains the invariant by
//! construction; `stalls_conserved` exists so tests and checkers can
//! still catch bookkeeping regressions (see the unit test that forges a
//! violating counter through the test-only back door).

use xt_mem::MemStats;

/// Causes a wall-clock cycle can be attributed to when the pipeline is
/// not retiring at full width. See the module docs for the accounting
/// discipline; `docs/PIPELINE.md` maps each cause to the pipeline stage
/// where it is charged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum StallCause {
    /// Dispatch waited for a re-order-buffer entry (§IV).
    RobFull = 0,
    /// Dispatch waited for an issue-queue slot (§IV).
    IqFull = 1,
    /// A memory µop waited for a load-queue / store-queue entry (§V-A).
    LsuQueueFull = 2,
    /// Fetch waited on an instruction-cache miss.
    ICacheMiss = 3,
    /// A load's dependents waited beyond the L1 load-to-use latency
    /// (D-cache/TLB miss service time).
    DCacheMiss = 4,
    /// Front-end refill bubble after a branch or indirect-target
    /// misprediction (resolved at the branch-jump unit, §III-A).
    MispredictFlush = 5,
    /// Front-end refill bubble after a memory-order violation or
    /// exception flush (§V-A, Fig. 8).
    OrderFlush = 6,
    /// A ready vector µop waited for a vector execution pipe or for
    /// lane-slice occupancy of an older vector op to drain (§VII).
    VecBusy = 7,
}

/// Number of stall causes.
pub const NUM_STALL_CAUSES: usize = 8;

impl StallCause {
    /// All causes, in charge-priority order.
    pub const ALL: [StallCause; NUM_STALL_CAUSES] = [
        StallCause::RobFull,
        StallCause::IqFull,
        StallCause::LsuQueueFull,
        StallCause::ICacheMiss,
        StallCause::DCacheMiss,
        StallCause::MispredictFlush,
        StallCause::OrderFlush,
        StallCause::VecBusy,
    ];

    /// Stable snake_case name (used in JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::RobFull => "rob_full",
            StallCause::IqFull => "iq_full",
            StallCause::LsuQueueFull => "lsu_queue_full",
            StallCause::ICacheMiss => "icache_miss",
            StallCause::DCacheMiss => "dcache_miss",
            StallCause::MispredictFlush => "mispredict_flush",
            StallCause::OrderFlush => "order_flush",
            StallCause::VecBusy => "vec_busy",
        }
    }
}

/// Hardware-style performance counters maintained by the timing models.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// µops dispatched (stores split into st.addr/st.data count as 2).
    pub uops: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Conditional-branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Taken control transfers whose target came from the L0 BTB
    /// (zero-bubble IF-stage jumps).
    pub l0_btb_jumps: u64,
    /// Taken control transfers redirected at the IP stage (1-bubble).
    pub ip_jumps: u64,
    /// Indirect-target / RAS mispredictions.
    pub target_mispredicts: u64,
    /// Instructions delivered from the loop buffer (no I$ access).
    pub lbuf_insts: u64,
    /// Memory-order violations (load before conflicting older store).
    pub mem_order_flushes: u64,
    /// Loads that received forwarded store data.
    pub store_forwards: u64,
    /// Pipeline flushes due to exceptions/traps.
    pub exception_flushes: u64,
    /// Useful prefetches: demand hits on prefetched lines, copied from
    /// the memory system at the end of a run.
    pub prefetch_hits: u64,
    /// Attributed stall cycles, indexed by `StallCause as usize`.
    /// Private: mutate only through [`Self::charge`] (see module docs).
    stall: [u64; NUM_STALL_CAUSES],
    /// Wall-clock high-water mark of cycles already attributed to some
    /// stall cause; makes overlapping waits charge at most once.
    frontier: u64,
}

impl PerfCounters {
    /// Attributes the wall-clock interval `[from, to)` to `cause`,
    /// counting only the part beyond the attribution frontier. Callers
    /// must only pass `to` endpoints bounded by a cycle the program is
    /// still executing at (a completion/retire/fetch cycle of some
    /// instruction) — that is what makes conservation a theorem rather
    /// than a hope.
    pub fn charge(&mut self, cause: StallCause, from: u64, to: u64) {
        let start = from.max(self.frontier);
        if to > start {
            self.stall[cause as usize] += to - start;
            self.frontier = to;
        }
    }

    /// Attributed stall cycles for one cause.
    pub fn stall(&self, cause: StallCause) -> u64 {
        self.stall[cause as usize]
    }

    /// Cycles lost waiting on a full ROB.
    pub fn rob_stall_cycles(&self) -> u64 {
        self.stall(StallCause::RobFull)
    }

    /// Cycles lost waiting on issue-queue space.
    pub fn iq_stall_cycles(&self) -> u64 {
        self.stall(StallCause::IqFull)
    }

    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Direction-prediction accuracy over conditional branches.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Wall-clock cycles attributed to any stall cause.
    pub fn attributed_stall_cycles(&self) -> u64 {
        self.stall.iter().sum()
    }

    /// Counter conservation: attributed stall cycles can never exceed
    /// total cycles. Attribution is frontier-based (each wall-clock
    /// cycle is charged at most once across all causes), so a violation
    /// means the bookkeeping double-counted.
    pub fn stalls_conserved(&self) -> bool {
        self.attributed_stall_cycles() <= self.cycles
    }

    /// Test-only back door that writes a raw stall counter, bypassing
    /// the [`Self::charge`] discipline. Exists so tests can prove
    /// [`Self::stalls_conserved`] actually detects corrupted
    /// bookkeeping; never call it from model code.
    #[doc(hidden)]
    pub fn force_raw_stall_for_tests(&mut self, cause: StallCause, cycles: u64) {
        self.stall[cause as usize] = cycles;
    }
}

impl xt_snapshot::SnapshotState for PerfCounters {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.u64(self.cycles);
        e.u64(self.instructions);
        e.u64(self.uops);
        e.u64(self.branches);
        e.u64(self.branch_mispredicts);
        e.u64(self.l0_btb_jumps);
        e.u64(self.ip_jumps);
        e.u64(self.target_mispredicts);
        e.u64(self.lbuf_insts);
        e.u64(self.mem_order_flushes);
        e.u64(self.store_forwards);
        e.u64(self.exception_flushes);
        e.u64(self.prefetch_hits);
        e.u64_seq(&self.stall);
        e.u64(self.frontier);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        self.cycles = d.u64()?;
        self.instructions = d.u64()?;
        self.uops = d.u64()?;
        self.branches = d.u64()?;
        self.branch_mispredicts = d.u64()?;
        self.l0_btb_jumps = d.u64()?;
        self.ip_jumps = d.u64()?;
        self.target_mispredicts = d.u64()?;
        self.lbuf_insts = d.u64()?;
        self.mem_order_flushes = d.u64()?;
        self.store_forwards = d.u64()?;
        self.exception_flushes = d.u64()?;
        self.prefetch_hits = d.u64()?;
        let stall = d.u64_seq()?;
        if stall.len() != NUM_STALL_CAUSES {
            return Err(xt_snapshot::SnapshotError::Corrupt {
                what: "stall cause count",
            });
        }
        self.stall.copy_from_slice(&stall);
        self.frontier = d.u64()?;
        Ok(())
    }
}

/// Serializes a pending-flush slot (`Option<(from_cycle, cause)>`),
/// shared by the two core models.
pub(crate) fn save_pending_flush(e: &mut xt_snapshot::Enc, v: Option<(u64, StallCause)>) {
    match v {
        None => e.u8(0),
        Some((from, cause)) => {
            e.u8(1);
            e.u64(from);
            e.u8(cause as u8);
        }
    }
}

/// Inverse of [`save_pending_flush`]; rejects unknown cause tags.
pub(crate) fn restore_pending_flush(
    d: &mut xt_snapshot::Dec,
) -> xt_snapshot::Result<Option<(u64, StallCause)>> {
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let from = d.u64()?;
            let idx = d.u8()? as usize;
            if idx >= NUM_STALL_CAUSES {
                return Err(xt_snapshot::SnapshotError::Corrupt {
                    what: "stall cause tag",
                });
            }
            Ok(Some((from, StallCause::ALL[idx])))
        }
        _ => Err(xt_snapshot::SnapshotError::Corrupt {
            what: "pending flush tag",
        }),
    }
}

/// Serializes an optional attached tracer, shared by the two core models.
pub(crate) fn save_opt_tracer(e: &mut xt_snapshot::Enc, t: Option<&xt_trace::TraceBuffer>) {
    use xt_snapshot::SnapshotState;
    match t {
        None => e.u8(0),
        Some(buf) => {
            e.u8(1);
            buf.save(e);
        }
    }
}

/// Inverse of [`save_opt_tracer`]: tracer attachment follows the
/// snapshot, so a resumed core reproduces the same Konata bytes.
pub(crate) fn restore_opt_tracer(
    d: &mut xt_snapshot::Dec,
) -> xt_snapshot::Result<Option<xt_trace::TraceBuffer>> {
    use xt_snapshot::SnapshotState;
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let mut buf = xt_trace::TraceBuffer::new();
            buf.restore(d)?;
            Ok(Some(buf))
        }
        _ => Err(xt_snapshot::SnapshotError::Corrupt {
            what: "tracer tag",
        }),
    }
}

/// Result of running one program on one core model.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Machine name (from the configuration).
    pub machine: &'static str,
    /// Core counters.
    pub perf: PerfCounters,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Guest exit code, if the program halted.
    pub exit_code: Option<u64>,
}

impl RunReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} insts, {} cycles, IPC {:.3}, br-acc {:.2}%, L1D-miss {}",
            self.machine,
            self.perf.instructions,
            self.perf.cycles,
            self.perf.ipc(),
            self.perf.branch_accuracy() * 100.0,
            self.mem.l1d.first().map(|(_, m)| *m).unwrap_or(0),
        )
    }

    /// Multi-line per-cause stall breakdown (cycles and share of total),
    /// ending with the unattributed residue.
    pub fn stall_breakdown(&self) -> String {
        let total = self.perf.cycles.max(1);
        let mut out = String::new();
        for cause in StallCause::ALL {
            let c = self.perf.stall(cause);
            out.push_str(&format!(
                "  {:<16} {:>12} cycles ({:>5.1}%)\n",
                cause.name(),
                c,
                c as f64 * 100.0 / total as f64
            ));
        }
        let attr = self.perf.attributed_stall_cycles();
        out.push_str(&format!(
            "  {:<16} {:>12} cycles ({:>5.1}%)",
            "unattributed",
            self.perf.cycles - attr,
            (self.perf.cycles - attr) as f64 * 100.0 / total as f64
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let p = PerfCounters::default();
        assert_eq!(p.ipc(), 0.0);
        assert_eq!(p.cpi(), 0.0);
        assert_eq!(p.branch_accuracy(), 1.0);
    }

    #[test]
    fn charge_respects_frontier() {
        let mut p = PerfCounters {
            cycles: 100,
            ..Default::default()
        };
        p.charge(StallCause::RobFull, 10, 40);
        assert_eq!(p.rob_stall_cycles(), 30);
        // overlapping interval: only the part past the frontier counts
        p.charge(StallCause::IqFull, 20, 50);
        assert_eq!(p.iq_stall_cycles(), 10);
        // fully shadowed interval: charges nothing
        p.charge(StallCause::DCacheMiss, 0, 45);
        assert_eq!(p.stall(StallCause::DCacheMiss), 0);
        assert_eq!(p.attributed_stall_cycles(), 40);
        assert!(p.stalls_conserved());
    }

    #[test]
    fn charge_can_never_violate_conservation() {
        // charge() is conservation-by-construction: wildly overlapping
        // charges to every cause still sum to the covered wall-clock span
        let mut p = PerfCounters {
            cycles: 1000,
            ..Default::default()
        };
        for k in 0..200u64 {
            let cause = StallCause::ALL[(k as usize) % NUM_STALL_CAUSES];
            p.charge(cause, k * 3, k * 3 + 40); // heavily overlapping
        }
        assert!(p.attributed_stall_cycles() <= 200 * 3 + 40);
        assert!(p.stalls_conserved());
    }

    #[test]
    fn conservation_predicate_catches_forged_counters() {
        // Deliberately violate the invariant through the test-only back
        // door: the predicate must catch what charge() makes impossible.
        let mut p = PerfCounters {
            cycles: 100,
            ..Default::default()
        };
        p.force_raw_stall_for_tests(StallCause::RobFull, 60);
        p.force_raw_stall_for_tests(StallCause::IqFull, 40);
        assert!(p.stalls_conserved(), "60+40 fits in 100");
        p.force_raw_stall_for_tests(StallCause::IqFull, 41);
        assert!(!p.stalls_conserved(), "101 attributed in 100 cycles");
    }

    #[test]
    fn ipc_math() {
        let p = PerfCounters {
            cycles: 100,
            instructions: 250,
            ..Default::default()
        };
        assert!((p.ipc() - 2.5).abs() < 1e-9);
        assert!((p.cpi() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn cause_names_are_stable() {
        assert_eq!(StallCause::ALL.len(), NUM_STALL_CAUSES);
        let names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "rob_full",
                "iq_full",
                "lsu_queue_full",
                "icache_miss",
                "dcache_miss",
                "mispredict_flush",
                "order_flush",
                "vec_busy"
            ]
        );
    }

    #[test]
    fn breakdown_renders_every_cause() {
        let mut p = PerfCounters {
            cycles: 50,
            instructions: 10,
            ..Default::default()
        };
        p.charge(StallCause::DCacheMiss, 0, 20);
        let r = RunReport {
            machine: "test",
            perf: p,
            mem: MemStats::default(),
            exit_code: Some(0),
        };
        let b = r.stall_breakdown();
        for cause in StallCause::ALL {
            assert!(b.contains(cause.name()), "missing {}", cause.name());
        }
        assert!(b.contains("unattributed"));
    }
}
