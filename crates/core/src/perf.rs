//! Performance counters and run reports.

use xt_mem::MemStats;

/// Hardware-style performance counters maintained by the timing models.
#[derive(Clone, Debug, Default)]
pub struct PerfCounters {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// µops dispatched (stores split into st.addr/st.data count as 2).
    pub uops: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Conditional-branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Taken control transfers whose target came from the L0 BTB
    /// (zero-bubble IF-stage jumps).
    pub l0_btb_jumps: u64,
    /// Taken control transfers redirected at the IP stage (1-bubble).
    pub ip_jumps: u64,
    /// Indirect-target / RAS mispredictions.
    pub target_mispredicts: u64,
    /// Instructions delivered from the loop buffer (no I$ access).
    pub lbuf_insts: u64,
    /// Memory-order violations (load before conflicting older store).
    pub mem_order_flushes: u64,
    /// Loads that received forwarded store data.
    pub store_forwards: u64,
    /// Pipeline flushes due to exceptions/traps.
    pub exception_flushes: u64,
    /// Cycles lost waiting on a full ROB.
    pub rob_stall_cycles: u64,
    /// Cycles lost waiting on issue-queue space.
    pub iq_stall_cycles: u64,
}

impl PerfCounters {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Direction-prediction accuracy over conditional branches.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Wall-clock cycles attributed to back-end stalls.
    pub fn attributed_stall_cycles(&self) -> u64 {
        self.rob_stall_cycles + self.iq_stall_cycles
    }

    /// Counter conservation: attributed stall cycles can never exceed
    /// total cycles. Stall attribution is frontier-based (each wall-clock
    /// cycle is charged at most once across both counters), so a
    /// violation means the bookkeeping double-counted.
    pub fn stalls_conserved(&self) -> bool {
        self.attributed_stall_cycles() <= self.cycles
    }
}

/// Result of running one program on one core model.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Machine name (from the configuration).
    pub machine: &'static str,
    /// Core counters.
    pub perf: PerfCounters,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Guest exit code, if the program halted.
    pub exit_code: Option<u64>,
}

impl RunReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} insts, {} cycles, IPC {:.3}, br-acc {:.2}%, L1D-miss {}",
            self.machine,
            self.perf.instructions,
            self.perf.cycles,
            self.perf.ipc(),
            self.perf.branch_accuracy() * 100.0,
            self.mem.l1d.first().map(|(_, m)| *m).unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let p = PerfCounters::default();
        assert_eq!(p.ipc(), 0.0);
        assert_eq!(p.cpi(), 0.0);
        assert_eq!(p.branch_accuracy(), 1.0);
    }

    #[test]
    fn stall_conservation_predicate() {
        let mut p = PerfCounters {
            cycles: 100,
            rob_stall_cycles: 60,
            iq_stall_cycles: 40,
            ..Default::default()
        };
        assert!(p.stalls_conserved(), "60+40 fits in 100");
        p.iq_stall_cycles = 41;
        assert!(!p.stalls_conserved(), "101 attributed in 100 cycles");
    }

    #[test]
    fn ipc_math() {
        let p = PerfCounters {
            cycles: 100,
            instructions: 250,
            ..Default::default()
        };
        assert!((p.ipc() - 2.5).abs() < 1e-9);
        assert!((p.cpi() - 0.4).abs() < 1e-9);
    }
}
