//! Core timing-model configuration and the paper's machine presets.

use xt_mem::MemConfig;

/// Every structural parameter of the core models. Defaults are the
/// XT-910 values from the paper (§II, §IV).
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Human-readable machine name (for reports).
    pub name: &'static str,
    /// Fetch width in bytes per cycle (128-bit line, §III).
    pub fetch_bytes: u64,
    /// Instruction-buffer (IBUF) capacity in instructions.
    pub ibuf_entries: usize,
    /// Decode width (3 on XT-910).
    pub decode_width: u64,
    /// Rename width in µops (4 on XT-910).
    pub rename_width: u64,
    /// Out-of-order issue width — "the out-of-order issue engine can
    /// issue up to 8 instructions" (§II).
    pub issue_width: u64,
    /// Retire width per cycle.
    pub retire_width: u64,
    /// Re-order buffer capacity (192, §IV).
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Unified issue-queue capacity (instruction slots feeding the pipes).
    pub iq_entries: usize,
    /// Physical integer registers beyond the 32 architectural.
    pub phys_int: usize,
    /// Physical FP registers beyond architectural.
    pub phys_fp: usize,
    /// Physical vector registers beyond architectural.
    pub phys_vec: usize,
    /// Number of single-cycle ALU pipes (2).
    pub alu_pipes: usize,
    /// Number of scalar FP / vector pipes (2).
    pub fp_pipes: usize,
    /// Number of vector execution pipes (2, sharing the FP slots).
    pub vec_pipes: usize,
    /// Branch mispredict redirect penalty in cycles (front-end refill
    /// after resolution in the branch-jump unit; ≥7 per §III-A).
    pub mispredict_penalty: u64,
    /// Pipeline flush penalty (memory-order violation, exception).
    pub flush_penalty: u64,
    /// Taken-branch bubble when the target comes from the IP stage
    /// (hidden by the IBUF when it holds instructions).
    pub ip_jump_bubble: u64,
    /// Latencies.
    pub lat: Latencies,
    /// Enable the 16-entry loop buffer (§III-C). Ablation switch.
    pub loop_buffer: bool,
    /// Enable the L0 BTB (zero-bubble taken branches at IF). Ablation.
    pub l0_btb: bool,
    /// Enable the two-level prediction-value prefetch buffers (Fig. 6):
    /// when off, back-to-back branches predict with stale history.
    pub two_level_buf: bool,
    /// Enable the pseudo-double-store decomposition (§V-B). Ablation.
    pub split_stores: bool,
    /// Enable the memory-dependence predictor (§V-A). Ablation.
    pub mem_dep_predict: bool,
    /// Dual-issue LSU: one load + one store per cycle (§V-A). When off,
    /// a single AGU is shared. Ablation.
    pub dual_issue_lsu: bool,
    /// Memory-system configuration used by the convenience runners.
    pub mem: MemConfig,
}

/// Execution latencies in cycles.
#[derive(Clone, Copy, Debug)]
pub struct Latencies {
    /// Single-cycle ALU.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide (fixed-cost model).
    pub div: u64,
    /// Scalar FP add.
    pub fadd: u64,
    /// Scalar FP multiply / FMA.
    pub fmul: u64,
    /// Scalar FP divide.
    pub fdiv: u64,
    /// FP<->int conversions and moves.
    pub fcvt: u64,
    /// Vector integer ALU (3-4 per §VII; we use 3).
    pub valu: u64,
    /// Vector integer multiply / MAC.
    pub vmul: u64,
    /// Vector FP multiply ("multiplying single and double precision
    /// floating point vectors takes 5 clock cycles", §VII).
    pub vfmul: u64,
    /// Vector divide, min..max of the 6-25 range; we use the midpoint.
    pub vdiv: u64,
    /// Vector permutation / reduction (crosses slices).
    pub vperm: u64,
    /// CSR access (serializing).
    pub csr: u64,
    /// Address-generation stage of the LSU.
    pub agu: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            alu: 1,
            mul: 3,
            div: 20,
            fadd: 3,
            fmul: 4,
            fdiv: 12,
            fcvt: 2,
            valu: 3,
            vmul: 4,
            vfmul: 5,
            vdiv: 15,
            vperm: 4,
            csr: 4,
            agu: 1,
        }
    }
}

impl CoreConfig {
    /// The XT-910 as described in the paper.
    pub fn xt910() -> Self {
        CoreConfig {
            name: "XT-910",
            fetch_bytes: 16,
            ibuf_entries: 32,
            decode_width: 3,
            rename_width: 4,
            issue_width: 8,
            retire_width: 4,
            rob_entries: 192,
            lq_entries: 32,
            sq_entries: 24,
            iq_entries: 48,
            phys_int: 96,
            phys_fp: 64,
            phys_vec: 64,
            alu_pipes: 2,
            fp_pipes: 2,
            vec_pipes: 2,
            mispredict_penalty: 7,
            flush_penalty: 12,
            ip_jump_bubble: 1,
            lat: Latencies::default(),
            loop_buffer: true,
            l0_btb: true,
            two_level_buf: true,
            split_stores: true,
            mem_dep_predict: true,
            dual_issue_lsu: true,
            mem: MemConfig::default(),
        }
    }

    /// A Cortex-A73-class reference machine: 2-wide decode out-of-order,
    /// comparable caches (64 KiB L1s, 2 MiB L2 — §X), no RISC-V custom
    /// extensions or loop buffer. Used as the normalization baseline of
    /// Figs. 18/19.
    pub fn a73_like() -> Self {
        CoreConfig {
            name: "A73-like reference",
            decode_width: 2,
            rename_width: 3,
            issue_width: 6,
            retire_width: 3,
            rob_entries: 128,
            lq_entries: 24,
            sq_entries: 16,
            iq_entries: 40,
            phys_int: 80,
            phys_fp: 64,
            mispredict_penalty: 8,
            loop_buffer: false,
            l0_btb: true,
            split_stores: false,
            ..Self::xt910()
        }
    }

    /// A SiFive-U74-class dual-issue in-order machine (Fig. 17 baseline).
    /// Use with [`crate::InOrderCore`].
    pub fn u74_like() -> Self {
        CoreConfig {
            name: "U74-like in-order",
            fetch_bytes: 8,
            decode_width: 2,
            rename_width: 2,
            issue_width: 2,
            retire_width: 2,
            rob_entries: 8, // nominal; the in-order model ignores it
            mispredict_penalty: 5,
            loop_buffer: false,
            l0_btb: false,
            two_level_buf: false,
            split_stores: false,
            mem_dep_predict: false,
            dual_issue_lsu: false,
            ..Self::xt910()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_follow_paper_parameters() {
        let x = CoreConfig::xt910();
        assert_eq!(x.decode_width, 3);
        assert_eq!(x.rename_width, 4);
        assert_eq!(x.issue_width, 8);
        assert_eq!(x.rob_entries, 192);
        assert!(x.mispredict_penalty >= 7, "§III-A: at least 7 cycles");
        assert_eq!(x.lat.vfmul, 5, "§VII: FP vector multiply 5 cycles");
        assert!((6..=25).contains(&x.lat.vdiv));
    }

    #[test]
    fn baselines_are_narrower() {
        let x = CoreConfig::xt910();
        let a = CoreConfig::a73_like();
        let u = CoreConfig::u74_like();
        assert!(a.decode_width < x.decode_width);
        assert!(u.issue_width < a.issue_width);
        assert!(!u.loop_buffer && !u.split_stores);
    }
}
