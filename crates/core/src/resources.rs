//! Structural-resource primitives shared by the timing models:
//! capacity-limited windows (ROB, queues, physical registers),
//! per-cycle bandwidth limiters (decode/rename/retire), and execution
//! pipes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A capacity-limited window (ROB, LQ, SQ, issue queue, physical-register
/// pool). `alloc` returns the earliest cycle at or after `want` when a
/// slot is free; `commit` records when the allocated slot releases.
#[derive(Clone, Debug)]
pub struct Window {
    cap: usize,
    releases: BinaryHeap<Reverse<u64>>,
    /// Total cycles callers were delayed waiting for a slot.
    pub stall_cycles: u64,
}

impl Window {
    /// Creates a window with `cap` entries.
    pub fn new(cap: usize) -> Self {
        Window {
            cap,
            releases: BinaryHeap::new(),
            stall_cycles: 0,
        }
    }

    /// Earliest cycle ≥ `want` with a free slot.
    pub fn alloc(&mut self, want: u64) -> u64 {
        let mut t = want;
        // drop entries that have already released
        while self.releases.peek().is_some_and(|&Reverse(r)| r <= t) {
            self.releases.pop();
        }
        // still at capacity: wait for the earliest releases
        while self.releases.len() >= self.cap {
            let Reverse(r) = self.releases.pop().expect("non-empty at capacity");
            t = t.max(r);
        }
        self.stall_cycles += t - want;
        t
    }

    /// Records the release cycle of the slot just allocated.
    pub fn commit(&mut self, release: u64) {
        self.releases.push(Reverse(release));
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.releases.len()
    }
}

/// A per-cycle bandwidth limiter for in-order stages (decode, rename,
/// retire). Requests must arrive with non-decreasing `min_cycle`.
#[derive(Clone, Copy, Debug)]
pub struct Bandwidth {
    width: u64,
    cycle: u64,
    used: u64,
}

impl Bandwidth {
    /// Creates a limiter of `width` slots per cycle.
    pub fn new(width: u64) -> Self {
        Bandwidth {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Takes one slot at the earliest cycle ≥ `min_cycle`.
    pub fn take(&mut self, min_cycle: u64) -> u64 {
        self.take_n(min_cycle, 1)
    }

    /// Ends the current group: the remaining slots of this cycle are
    /// discarded (decode-group fragmentation at a taken branch).
    pub fn break_group(&mut self) {
        self.used = self.width;
    }

    /// Takes `n` slots (they may spill into following cycles); returns
    /// the cycle of the first slot.
    pub fn take_n(&mut self, min_cycle: u64, n: u64) -> u64 {
        if min_cycle > self.cycle {
            self.cycle = min_cycle;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1 + (self.used - self.width) / self.width;
            self.used %= self.width;
            if self.used >= self.width {
                self.used = 0;
            }
        }
        let first = self.cycle;
        self.used += n;
        first
    }
}

/// A group of identical execution pipes. Pipelined units accept one µop
/// per cycle per pipe; unpipelined units (dividers) block the pipe for
/// the full occupancy.
#[derive(Clone, Debug)]
pub struct PipeGroup {
    next_free: Vec<u64>,
}

impl PipeGroup {
    /// Creates `n` pipes.
    pub fn new(n: usize) -> Self {
        PipeGroup {
            next_free: vec![0; n.max(1)],
        }
    }

    /// Issues a µop that becomes ready at `ready`; the pipe is then busy
    /// for `occupancy` cycles (1 for fully-pipelined units). Returns the
    /// actual issue cycle.
    pub fn issue(&mut self, ready: u64, occupancy: u64) -> u64 {
        let slot = self
            .next_free
            .iter_mut()
            .min()
            .expect("at least one pipe");
        let start = (*slot).max(ready);
        *slot = start + occupancy.max(1);
        start
    }
}

/// An out-of-order per-cycle slot limiter (global issue width): unlike
/// [`Bandwidth`], requests arrive in any cycle order.
#[derive(Clone, Debug)]
pub struct SlotLimiter {
    width: u32,
    // (cycle, used) ring of recent cycles
    recent: VecDeque<(u64, u32)>,
}

impl SlotLimiter {
    /// Creates a limiter of `width` slots per cycle.
    pub fn new(width: u32) -> Self {
        SlotLimiter {
            width,
            recent: VecDeque::new(),
        }
    }

    /// Takes a slot at the first cycle ≥ `want` with spare width.
    pub fn take(&mut self, want: u64) -> u64 {
        let mut t = want;
        loop {
            match self.recent.iter_mut().find(|(c, _)| *c == t) {
                Some((_, used)) if *used < self.width => {
                    *used += 1;
                    break;
                }
                Some(_) => t += 1,
                None => {
                    self.recent.push_back((t, 1));
                    if self.recent.len() > 64 {
                        self.recent.pop_front();
                    }
                    break;
                }
            }
        }
        t
    }
}

impl xt_snapshot::SnapshotState for Window {
    /// The release heap is serialized as a sorted vector so the encoding
    /// is canonical regardless of the heap's internal layout.
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.usize(self.cap);
        let mut rel: Vec<u64> = self.releases.iter().map(|&Reverse(r)| r).collect();
        rel.sort_unstable();
        e.u64_seq(&rel);
        e.u64(self.stall_cycles);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.usize()? != self.cap {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "window capacity",
            });
        }
        let rel = d.u64_seq()?;
        self.releases.clear();
        for r in rel {
            self.releases.push(Reverse(r));
        }
        self.stall_cycles = d.u64()?;
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for Bandwidth {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.u64(self.width);
        e.u64(self.cycle);
        e.u64(self.used);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.u64()? != self.width {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "bandwidth width",
            });
        }
        self.cycle = d.u64()?;
        self.used = d.u64()?;
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for PipeGroup {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.u64_seq(&self.next_free);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        let nf = d.u64_seq()?;
        if nf.len() != self.next_free.len() {
            return Err(xt_snapshot::SnapshotError::Mismatch { what: "pipe count" });
        }
        self.next_free = nf;
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for SlotLimiter {
    /// The ring preserves insertion order (it is part of the limiter's
    /// behavior: full cycles are probed in ring order), so entries are
    /// serialized verbatim, not sorted.
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.u32(self.width);
        e.seq(self.recent.len());
        for &(cycle, used) in &self.recent {
            e.u64(cycle);
            e.u32(used);
        }
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.u32()? != self.width {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "slot limiter width",
            });
        }
        let n = d.len(12)?;
        self.recent.clear();
        for _ in 0..n {
            let cycle = d.u64()?;
            let used = d.u32()?;
            self.recent.push_back((cycle, used));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stalls_when_full() {
        let mut w = Window::new(2);
        assert_eq!(w.alloc(10), 10);
        w.commit(20);
        assert_eq!(w.alloc(10), 10);
        w.commit(30);
        // full: next alloc waits for the earliest release (20)
        assert_eq!(w.alloc(12), 20);
        w.commit(40);
        assert!(w.stall_cycles >= 8);
    }

    #[test]
    fn window_free_slot_no_stall() {
        let mut w = Window::new(4);
        for k in 0..4 {
            assert_eq!(w.alloc(k), k);
            w.commit(k + 100);
        }
        // released entries free slots for later allocs
        assert_eq!(w.alloc(100), 100);
    }

    #[test]
    fn bandwidth_packs_width_per_cycle() {
        let mut b = Bandwidth::new(3);
        assert_eq!(b.take(5), 5);
        assert_eq!(b.take(5), 5);
        assert_eq!(b.take(5), 5);
        assert_eq!(b.take(5), 6, "fourth spills to the next cycle");
        assert_eq!(b.take(10), 10);
    }

    #[test]
    fn bandwidth_take_n() {
        let mut b = Bandwidth::new(4);
        assert_eq!(b.take_n(0, 2), 0);
        assert_eq!(b.take_n(0, 2), 0);
        assert_eq!(b.take(0), 1);
    }

    #[test]
    fn pipes_pick_least_busy() {
        let mut p = PipeGroup::new(2);
        assert_eq!(p.issue(0, 1), 0);
        assert_eq!(p.issue(0, 1), 0, "second pipe");
        assert_eq!(p.issue(0, 1), 1, "both busy");
    }

    #[test]
    fn unpipelined_divider_blocks() {
        let mut p = PipeGroup::new(1);
        assert_eq!(p.issue(0, 20), 0);
        assert_eq!(p.issue(1, 20), 20, "divider busy");
    }

    #[test]
    fn slot_limiter_out_of_order() {
        let mut s = SlotLimiter::new(2);
        assert_eq!(s.take(10), 10);
        assert_eq!(s.take(5), 5);
        assert_eq!(s.take(10), 10);
        assert_eq!(s.take(10), 11, "cycle 10 full");
    }
}
