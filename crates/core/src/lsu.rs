//! The dual-issue out-of-order load/store unit (§V-A/§V-B, Figs. 9/10).
//!
//! * dedicated load and store pipes, each AG → DC → DA → WB;
//! * stores decomposed into `st.addr` and `st.data` µops ("pseudo double
//!   store", Fig. 10) so address generation and disambiguation happen
//!   before the data operand is ready;
//! * a load queue / store queue pair: loads search older stores for
//!   forwarding; stores finding a younger completed load at the same
//!   address trigger a speculative-failure global flush;
//! * a memory-dependence predictor that tags loads which have violated
//!   before and blocks them until older store addresses resolve (§V-A).

use crate::config::CoreConfig;
use crate::resources::{PipeGroup, Window};
use std::collections::{HashSet, VecDeque};
use xt_mem::MemSystem;

/// Store-to-load forwarding latency (SQ read + align).
const FWD_LATENCY: u64 = 2;

#[derive(Clone, Copy, Debug)]
struct PendingStore {
    start: u64,
    end: u64,
    addr_ready: u64,
    data_ready: u64,
}

/// Result of scheduling a load.
#[derive(Clone, Copy, Debug)]
pub struct LoadResult {
    /// Cycle the loaded value is available to dependents.
    pub complete: u64,
    /// A memory-order violation occurred: the core must charge a global
    /// flush (§V-A: "the speculative execution fails and a global flush
    /// is generated").
    pub violation: bool,
    /// The load was satisfied by store-to-load forwarding.
    pub forwarded: bool,
    /// Wall-clock interval the load waited for a load-queue entry
    /// (`None` if a slot was free on arrival). For
    /// `StallCause::LsuQueueFull` attribution.
    pub queue_wait: Option<(u64, u64)>,
    /// Wall-clock interval the result took beyond the L1 load-to-use
    /// latency (`None` on an L1 hit or forwarded load). For
    /// `StallCause::DCacheMiss` attribution.
    pub miss_wait: Option<(u64, u64)>,
}

/// Result of scheduling a store's two µops.
#[derive(Clone, Copy, Debug)]
pub struct StoreResult {
    /// Cycle the store address is known (end of the st.addr pipe).
    pub addr_ready: u64,
    /// Cycle the store data is staged (end of the st.data pipe).
    pub data_ready: u64,
    /// Cycle the store is complete for retirement purposes.
    pub complete: u64,
    /// Wall-clock interval the store waited for a store-queue entry
    /// (`None` if a slot was free on arrival). For
    /// `StallCause::LsuQueueFull` attribution.
    pub queue_wait: Option<(u64, u64)>,
}

/// The LSU timing model.
#[derive(Debug)]
pub struct Lsu {
    load_pipe: PipeGroup,
    st_addr_pipe: PipeGroup,
    st_data_pipe: PipeGroup,
    /// Load queue (entries held to retirement).
    pub lq: Window,
    /// Store queue (entries held to drain).
    pub sq: Window,
    stores: VecDeque<PendingStore>,
    dep_pred: HashSet<u64>,
    sq_track: usize,
    split_stores: bool,
    mem_dep_predict: bool,
    dual_issue: bool,
    agu: u64,
    /// Loads that received forwarded data.
    pub forwards: u64,
    /// Memory-order violations.
    pub violations: u64,
}

impl Lsu {
    /// Builds the LSU for `cfg`.
    pub fn new(cfg: &CoreConfig) -> Self {
        Lsu {
            load_pipe: PipeGroup::new(1),
            st_addr_pipe: PipeGroup::new(1),
            st_data_pipe: PipeGroup::new(1),
            lq: Window::new(cfg.lq_entries),
            sq: Window::new(cfg.sq_entries),
            stores: VecDeque::new(),
            dep_pred: HashSet::new(),
            sq_track: cfg.sq_entries,
            split_stores: cfg.split_stores,
            mem_dep_predict: cfg.mem_dep_predict,
            dual_issue: cfg.dual_issue_lsu,
            agu: cfg.lat.agu,
            forwards: 0,
            violations: 0,
        }
    }

    fn overlap(s: &PendingStore, start: u64, end: u64) -> bool {
        s.start < end && start < s.end
    }

    /// Schedules a load at `ready` (operands available, dispatched).
    /// `pc` keys the memory-dependence predictor; (`va`, `pa`, `size`)
    /// describe the access.
    #[allow(clippy::too_many_arguments)] // mirrors the load port: pc/addr/size/timing inputs
    pub fn load(
        &mut self,
        core: usize,
        pc: u64,
        va: u64,
        pa: u64,
        size: u64,
        ready: u64,
        mem: &mut MemSystem,
    ) -> LoadResult {
        let slot = self.lq.alloc(ready);
        let queue_wait = (slot > ready).then_some((ready, slot));
        let issue = if self.dual_issue {
            self.load_pipe.issue(slot, 1)
        } else {
            // shared single AGU: loads contend with store-address µops
            self.st_addr_pipe.issue(slot, 1)
        };
        let mut addr_known = issue + self.agu;
        let (start, end) = (pa, pa + size.max(1));

        // §V-A: predicted-dependent loads block until older store
        // addresses resolve.
        if self.mem_dep_predict && self.dep_pred.contains(&pc) {
            if let Some(max_addr) = self.stores.iter().map(|s| s.addr_ready).max() {
                addr_known = addr_known.max(max_addr);
            }
        }

        // search older stores (youngest first) for an overlap
        let mut conflict: Option<PendingStore> = None;
        for s in self.stores.iter().rev() {
            if Self::overlap(s, start, end) {
                conflict = Some(*s);
                break;
            }
        }

        match conflict {
            Some(s) if s.addr_ready <= addr_known => {
                // disambiguated in time: forward from the SQ
                self.forwards += 1;
                LoadResult {
                    complete: addr_known.max(s.data_ready) + FWD_LATENCY,
                    violation: false,
                    forwarded: true,
                    queue_wait,
                    miss_wait: None,
                }
            }
            Some(s) => {
                // store address resolves *after* the load would issue:
                // the load speculated ahead of a conflicting store
                self.violations += 1;
                self.dep_pred.insert(pc);
                LoadResult {
                    complete: s.addr_ready.max(s.data_ready) + FWD_LATENCY,
                    violation: true,
                    forwarded: false,
                    queue_wait,
                    miss_wait: None,
                }
            }
            None => {
                let hit_by = addr_known + mem.config().l1_hit;
                let complete = mem.dload(core, addr_known, va, pa);
                LoadResult {
                    complete,
                    violation: false,
                    forwarded: false,
                    queue_wait,
                    miss_wait: (complete > hit_by).then_some((hit_by, complete)),
                }
            }
        }
    }

    /// Schedules a store: `base_ready` gates the st.addr µop,
    /// `data_ready` the st.data µop; both must be past `dispatch`.
    pub fn store(
        &mut self,
        pa: u64,
        size: u64,
        dispatch: u64,
        base_ready: u64,
        data_ready: u64,
    ) -> StoreResult {
        let slot = self.sq.alloc(dispatch);
        let queue_wait = (slot > dispatch).then_some((dispatch, slot));
        let (addr_known, data_done) = if self.split_stores {
            // Fig. 10: independent address and data flows
            let a = self.st_addr_pipe.issue(slot.max(base_ready), 1) + self.agu;
            let d = self.st_data_pipe.issue(slot.max(data_ready), 1) + 1;
            (a, d)
        } else {
            // unified store µop: waits for *both* operands before AG
            let issue_ready = slot.max(base_ready).max(data_ready);
            let a = self.st_addr_pipe.issue(issue_ready, 1) + self.agu;
            (a, a)
        };
        self.stores.push_back(PendingStore {
            start: pa,
            end: pa + size.max(1),
            addr_ready: addr_known,
            data_ready: data_done,
        });
        while self.stores.len() > self.sq_track {
            self.stores.pop_front();
        }
        StoreResult {
            addr_ready: addr_known,
            data_ready: data_done,
            complete: addr_known.max(data_done),
            queue_wait,
        }
    }

    /// Retires stores up to `retire`: entries older than the SQ horizon
    /// are dropped (their data has drained to the cache).
    pub fn drain_before(&mut self, retire: u64) {
        while let Some(front) = self.stores.front() {
            if front.data_ready + 4 < retire && self.stores.len() > 4 {
                self.stores.pop_front();
            } else {
                break;
            }
        }
    }
}

impl xt_snapshot::SnapshotState for Lsu {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        self.load_pipe.save(e);
        self.st_addr_pipe.save(e);
        self.st_data_pipe.save(e);
        self.lq.save(e);
        self.sq.save(e);
        e.seq(self.stores.len());
        for s in &self.stores {
            e.u64(s.start);
            e.u64(s.end);
            e.u64(s.addr_ready);
            e.u64(s.data_ready);
        }
        let mut preds: Vec<u64> = self.dep_pred.iter().copied().collect();
        preds.sort_unstable();
        e.u64_seq(&preds);
        e.u64(self.forwards);
        e.u64(self.violations);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        self.load_pipe.restore(d)?;
        self.st_addr_pipe.restore(d)?;
        self.st_data_pipe.restore(d)?;
        self.lq.restore(d)?;
        self.sq.restore(d)?;
        let n = d.len(32)?;
        self.stores.clear();
        for _ in 0..n {
            self.stores.push_back(PendingStore {
                start: d.u64()?,
                end: d.u64()?,
                addr_ready: d.u64()?,
                data_ready: d.u64()?,
            });
        }
        self.dep_pred = d.u64_seq()?.into_iter().collect();
        self.forwards = d.u64()?;
        self.violations = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_mem::{MemConfig, MemSystem, PrefetchConfig};

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig {
            prefetch: PrefetchConfig::off(),
            ..MemConfig::default()
        })
    }

    fn lsu() -> Lsu {
        Lsu::new(&crate::CoreConfig::xt910())
    }

    #[test]
    fn plain_load_goes_to_cache() {
        let mut l = lsu();
        let mut m = mem();
        let r = l.load(0, 0x100, 0x9000, 0x9000, 8, 10, &mut m);
        assert!(!r.violation && !r.forwarded);
        assert!(r.complete >= 10 + m.config().dram_latency, "cold miss");
    }

    #[test]
    fn forwarding_from_older_store() {
        let mut l = lsu();
        let mut m = mem();
        let s = l.store(0x9000, 8, 5, 5, 5);
        let r = l.load(0, 0x100, 0x9000, 0x9000, 8, s.complete + 1, &mut m);
        assert!(r.forwarded, "same-address load forwards");
        assert!(r.complete < 100, "no DRAM access: {}", r.complete);
        assert_eq!(l.forwards, 1);
    }

    #[test]
    fn early_load_past_slow_store_violates_then_learns() {
        let mut l = lsu();
        let mut m = mem();
        // store whose address resolves late (base register at cycle 100)
        let _s = l.store(0x9000, 8, 0, 100, 100);
        // load at the same address tries to issue at cycle 1
        let r = l.load(0, 0xAB, 0x9000, 0x9000, 8, 1, &mut m);
        assert!(r.violation, "speculation failed");
        assert_eq!(l.violations, 1);
        // second encounter: the dependence predictor blocks the load
        let _s2 = l.store(0x9100, 8, 200, 300, 300);
        let r2 = l.load(0, 0xAB, 0x9100, 0x9100, 8, 201, &mut m);
        assert!(!r2.violation, "predictor prevented the re-violation");
        assert!(r2.forwarded);
    }

    #[test]
    fn disjoint_addresses_no_conflict() {
        let mut l = lsu();
        let mut m = mem();
        let _s = l.store(0x9000, 8, 0, 100, 100);
        let r = l.load(0, 0xCD, 0xA000, 0xA000, 8, 1, &mut m);
        assert!(!r.violation && !r.forwarded);
    }

    #[test]
    fn split_store_address_resolves_before_data() {
        let mut l = lsu();
        // base ready at 5, data not until 50
        let s = l.store(0x9000, 8, 0, 5, 50);
        assert!(s.addr_ready < s.data_ready);
        assert!(s.addr_ready <= 10, "address flow independent of data");
    }

    #[test]
    fn unified_store_waits_for_data() {
        let mut cfg = crate::CoreConfig::xt910();
        cfg.split_stores = false;
        let mut l = Lsu::new(&cfg);
        let s = l.store(0x9000, 8, 0, 5, 50);
        assert!(s.addr_ready >= 50, "no split: AG waits for the data");
    }

    #[test]
    fn byte_overlap_detected() {
        let mut l = lsu();
        let mut m = mem();
        let s = l.store(0x9007, 1, 0, 0, 0);
        // 8-byte load covering 0x9000..0x9008 overlaps the byte store
        let r = l.load(0, 0x1, 0x9000, 0x9000, 8, s.complete + 1, &mut m);
        assert!(r.forwarded);
    }
}
