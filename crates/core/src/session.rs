//! Resumable single-core simulation sessions.
//!
//! A [`Session`] bundles the three pieces a single-core run owns — the
//! functional [`TraceSource`] (emulator), a timing core, and its
//! [`MemSystem`] — behind one stepping surface with whole-run
//! [`Session::save`]/[`Session::restore`]. Snapshots are
//! [`xt_snapshot::KIND_CORE`] frames; the resume-identity argument
//! (restore at cycle *c*, continue, get bit-identical results) is laid
//! out in `docs/SNAPSHOT.md` and enforced by the `snapshot_resume`
//! integration suite and the `xt-check` snapshot phase.

use crate::inorder::InOrderCore;
use crate::ooo::OooCore;
use crate::perf::RunReport;
use xt_asm::Program;
use xt_emu::{DynInst, Emulator, TraceEvent, TraceSource};
use xt_mem::{MemConfig, MemSystem};
use xt_snapshot::SnapshotState;
use xt_trace::TraceBuffer;

use crate::config::CoreConfig;

/// The stepping surface shared by the two core models, so [`Session`]
/// can wrap either.
pub trait CoreModel: SnapshotState {
    /// Advances the timing model by one committed instruction.
    fn step_inst(&mut self, d: &DynInst, mem: &mut MemSystem);
    /// Seals the counters and produces the run report.
    fn report(&mut self, mem: &MemSystem, exit_code: Option<u64>) -> RunReport;
    /// Attaches a fresh per-instruction pipeline tracer.
    fn enable_tracer(&mut self);
    /// Detaches and returns the tracer, if one was attached.
    fn take_tracer_buf(&mut self) -> Option<TraceBuffer>;
    /// Current cycle count.
    fn cycle(&self) -> u64;
}

impl CoreModel for OooCore {
    fn step_inst(&mut self, d: &DynInst, mem: &mut MemSystem) {
        self.step(d, mem);
    }
    fn report(&mut self, mem: &MemSystem, exit_code: Option<u64>) -> RunReport {
        self.finish_report(mem, exit_code)
    }
    fn enable_tracer(&mut self) {
        self.attach_tracer();
    }
    fn take_tracer_buf(&mut self) -> Option<TraceBuffer> {
        self.take_tracer()
    }
    fn cycle(&self) -> u64 {
        self.cycles()
    }
}

impl CoreModel for InOrderCore {
    fn step_inst(&mut self, d: &DynInst, mem: &mut MemSystem) {
        self.step(d, mem);
    }
    fn report(&mut self, mem: &MemSystem, exit_code: Option<u64>) -> RunReport {
        self.finish_report(mem, exit_code)
    }
    fn enable_tracer(&mut self) {
        self.attach_tracer();
    }
    fn take_tracer_buf(&mut self) -> Option<TraceBuffer> {
        self.take_tracer()
    }
    fn cycle(&self) -> u64 {
        self.cycles()
    }
}

/// A resumable single-core run: emulator trace + timing core + memory
/// system, with [`save`](Self::save)/[`restore`](Self::restore).
#[derive(Debug)]
pub struct Session<C: CoreModel> {
    trace: TraceSource,
    core: C,
    mem: MemSystem,
}

/// A resumable out-of-order (XT-910) run.
pub type OooSession = Session<OooCore>;
/// A resumable in-order-baseline run.
pub type InOrderSession = Session<InOrderCore>;

impl OooSession {
    /// Loads `prog` into a fresh out-of-order session.
    pub fn new_ooo(prog: &Program, cfg: &CoreConfig, max_insts: u64) -> Self {
        Self::ooo_with_mem(prog, cfg, cfg.mem, max_insts)
    }

    /// Loads `prog` with an explicit memory configuration.
    pub fn ooo_with_mem(
        prog: &Program,
        cfg: &CoreConfig,
        mem_cfg: MemConfig,
        max_insts: u64,
    ) -> Self {
        let mut emu = Emulator::new();
        emu.load(prog);
        Session {
            trace: TraceSource::new(emu, max_insts),
            core: OooCore::new(cfg.clone(), 0),
            mem: MemSystem::new(mem_cfg),
        }
    }
}

impl InOrderSession {
    /// Loads `prog` into a fresh in-order session.
    pub fn new_inorder(prog: &Program, cfg: &CoreConfig, max_insts: u64) -> Self {
        Self::inorder_with_mem(prog, cfg, cfg.mem, max_insts)
    }

    /// Loads `prog` with an explicit memory configuration.
    pub fn inorder_with_mem(
        prog: &Program,
        cfg: &CoreConfig,
        mem_cfg: MemConfig,
        max_insts: u64,
    ) -> Self {
        let mut emu = Emulator::new();
        emu.load(prog);
        Session {
            trace: TraceSource::new(emu, max_insts),
            core: InOrderCore::new(cfg.clone(), 0),
            mem: MemSystem::new(mem_cfg),
        }
    }
}

impl<C: CoreModel> Session<C> {
    /// Assembles a session from already-built parts (e.g. a core with
    /// ablation knobs or a pre-warmed emulator).
    pub fn from_parts(trace: TraceSource, core: C, mem: MemSystem) -> Self {
        Session { trace, core, mem }
    }

    /// Attaches a per-instruction pipeline tracer to the core.
    pub fn attach_tracer(&mut self) {
        self.core.enable_tracer();
    }

    /// Detaches and returns the tracer, if attached.
    pub fn take_tracer(&mut self) -> Option<TraceBuffer> {
        self.core.take_tracer_buf()
    }

    /// Advances by one committed instruction. Returns `false` once the
    /// trace is exhausted (halt, error, or instruction limit).
    pub fn step(&mut self) -> bool {
        match self.trace.try_next() {
            TraceEvent::Inst(d) => {
                self.core.step_inst(&d, &mut self.mem);
                true
            }
            // single-core sessions never run gated cluster guests
            TraceEvent::Barrier | TraceEvent::Done => false,
        }
    }

    /// Runs at most `n` further instructions; returns how many actually
    /// retired (less than `n` only at end of trace).
    pub fn run_insts(&mut self, n: u64) -> u64 {
        let mut done = 0;
        while done < n && self.step() {
            done += 1;
        }
        done
    }

    /// Runs to the end of the trace and produces the report.
    pub fn run_to_end(&mut self) -> RunReport {
        while self.step() {}
        self.finish_report()
    }

    /// Seals the counters and produces the report for the instructions
    /// consumed so far.
    pub fn finish_report(&mut self) -> RunReport {
        self.core.report(&self.mem, self.trace.exit_code)
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.trace.retired()
    }

    /// Current core cycle.
    pub fn cycles(&self) -> u64 {
        self.core.cycle()
    }

    /// Guest exit code, once halted.
    pub fn exit_code(&self) -> Option<u64> {
        self.trace.exit_code
    }

    /// The timing core.
    pub fn core(&self) -> &C {
        &self.core
    }

    /// The memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// The underlying trace source / emulator.
    pub fn trace(&self) -> &TraceSource {
        &self.trace
    }

    /// Serializes the whole session into a [`xt_snapshot::KIND_CORE`]
    /// frame.
    pub fn save(&self) -> Vec<u8> {
        let mut e = xt_snapshot::Enc::new();
        self.trace.save(&mut e);
        self.core.save(&mut e);
        self.mem.save(&mut e);
        xt_snapshot::seal(xt_snapshot::KIND_CORE, e.bytes())
    }

    /// Restores a [`save`](Self::save)d frame into this session. The
    /// session must have been built with the same program-independent
    /// configuration (core config, memory geometry, instruction limit
    /// is restored); on any mismatch the session is left partially
    /// restored and must be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> xt_snapshot::Result<()> {
        let payload = xt_snapshot::open(bytes, xt_snapshot::KIND_CORE)?;
        let mut d = xt_snapshot::Dec::new(payload);
        self.trace.restore(&mut d)?;
        self.core.restore(&mut d)?;
        self.mem.restore(&mut d)?;
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_asm::Asm;
    use xt_isa::reg::Gpr;

    fn loop_prog(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(Gpr::A0, iters);
        let top = a.here();
        a.addi(Gpr::A0, Gpr::A0, -1);
        a.bnez(Gpr::A0, top);
        a.li(Gpr::A0, 42);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn session_matches_run_ooo() {
        let p = loop_prog(500);
        let cfg = CoreConfig::xt910();
        let direct = crate::run_ooo(&p, &cfg, 100_000);
        let mut s = OooSession::new_ooo(&p, &cfg, 100_000);
        let viasession = s.run_to_end();
        assert_eq!(direct.perf, viasession.perf);
        assert_eq!(viasession.exit_code, Some(42));
    }

    #[test]
    fn save_restore_roundtrip_is_byte_stable() {
        let p = loop_prog(300);
        let cfg = CoreConfig::xt910();
        let mut s = OooSession::new_ooo(&p, &cfg, 100_000);
        s.run_insts(100);
        let snap = s.save();
        let mut fresh = OooSession::new_ooo(&p, &cfg, 100_000);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.save(), snap, "save∘restore∘save byte-equal");
    }

    #[test]
    fn resumed_run_is_identical() {
        let p = loop_prog(400);
        let cfg = CoreConfig::xt910();

        let mut whole = OooSession::new_ooo(&p, &cfg, 100_000);
        let ref_report = whole.run_to_end();

        let mut first = OooSession::new_ooo(&p, &cfg, 100_000);
        first.run_insts(137);
        let snap = first.save();

        let mut resumed = OooSession::new_ooo(&p, &cfg, 100_000);
        resumed.restore(&snap).unwrap();
        let resumed_report = resumed.run_to_end();

        assert_eq!(ref_report.perf, resumed_report.perf);
        assert_eq!(ref_report.exit_code, resumed_report.exit_code);
        assert_eq!(ref_report.mem, resumed_report.mem);
    }

    #[test]
    fn restore_rejects_wrong_config() {
        let p = loop_prog(100);
        let mut a = OooSession::new_ooo(&p, &CoreConfig::xt910(), 100_000);
        a.run_insts(50);
        let snap = a.save();
        let mut b = OooSession::new_ooo(&p, &CoreConfig::a73_like(), 100_000);
        assert!(matches!(
            b.restore(&snap),
            Err(xt_snapshot::SnapshotError::Mismatch { .. })
        ));
    }

    #[test]
    fn inorder_session_resumes() {
        let p = loop_prog(200);
        let cfg = CoreConfig::u74_like();
        let mut whole = InOrderSession::new_inorder(&p, &cfg, 100_000);
        let ref_report = whole.run_to_end();

        let mut first = InOrderSession::new_inorder(&p, &cfg, 100_000);
        first.run_insts(77);
        let snap = first.save();
        let mut resumed = InOrderSession::new_inorder(&p, &cfg, 100_000);
        resumed.restore(&snap).unwrap();
        let r = resumed.run_to_end();
        assert_eq!(ref_report.perf, r.perf);
        assert_eq!(ref_report.exit_code, r.exit_code);
    }
}
