//! # xt-snapshot — versioned, hermetic snapshot codec (ROADMAP item 2)
//!
//! A hand-rolled binary codec (no serde; hermetic-build policy) for
//! capturing and restoring every stateful structure of the simulator:
//! the functional `xt-emu` architectural state, the `xt-core` timing
//! models, the `xt-mem` hierarchy, the `xt-soc` devices and cluster
//! engine. Each owning crate implements [`SnapshotState`] for its types;
//! the driver-level aggregates (`CoreSnapshot` in `xt-core`,
//! `ClusterSnapshot` in `xt-soc`) wrap the payload in the framed
//! container produced by [`seal`] / opened by [`open`]:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"XTSN"
//! 4       2     format version (little-endian u16; see [`VERSION`])
//! 6       1     kind byte (CORE / CLUSTER / GOLDEN — the aggregate)
//! 7       8     payload length in bytes (little-endian u64)
//! 15      n     payload (concatenated SnapshotState encodings)
//! 15+n    8     FNV-1a 64 checksum of bytes [0, 15+n)
//! ```
//!
//! Every decoder path returns a typed [`SnapshotError`] — truncated
//! input, wrong magic, wrong version, corrupted counts and checksums are
//! errors, never panics. `save ∘ restore ∘ save` is byte-equal by
//! construction: every container-order collection round-trips verbatim,
//! and the owning crates serialize unordered collections (hash maps,
//! binary heaps) in sorted order. `docs/SNAPSHOT.md` documents the
//! format, the versioning policy, and the resume-identity argument.
//!
//! A small hand-rolled JSON *manifest* ([`describe`]) renders the frame
//! header for tooling and error reports without decoding the payload.

#![warn(missing_docs)]

use std::fmt;

/// Magic bytes at the start of every snapshot frame.
pub const MAGIC: [u8; 4] = *b"XTSN";

/// Snapshot format version. Bump **deliberately** whenever any
/// [`SnapshotState`] encoding changes shape; the golden-fixture test
/// (`tests/snapshot_golden.rs`) exists to make accidental layout drift
/// a test failure instead of a silent corruption.
pub const VERSION: u16 = 2;

/// Kind byte: a single-core timing session (`CoreSnapshot`).
pub const KIND_CORE: u8 = 1;
/// Kind byte: a whole-cluster snapshot (`ClusterSnapshot`).
pub const KIND_CLUSTER: u8 = 2;

/// Typed decode/restore failures. Every error path in the codec and in
/// the `SnapshotState` implementations reports through this enum —
/// malformed bytes must never panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame's format version does not match this build's
    /// [`VERSION`] (layouts are not compatible across versions).
    BadVersion {
        /// Version found in the frame.
        found: u16,
        /// Version this build writes.
        expect: u16,
    },
    /// A structurally invalid value: impossible enum tag, count that
    /// exceeds the remaining payload, checksum mismatch, wrong kind.
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
    /// The payload decoded cleanly but bytes were left over — the frame
    /// was produced by a different layout.
    TrailingBytes {
        /// Number of undecoded bytes.
        extra: usize,
    },
    /// The restore target was built with a different configuration than
    /// the snapshot (restore is into a same-config instance).
    Mismatch {
        /// The configuration field that disagreed.
        what: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, {have} left")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:02x?} (expected \"XTSN\")")
            }
            SnapshotError::BadVersion { found, expect } => {
                write!(f, "snapshot version {found} incompatible with {expect}")
            }
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot field: {what}"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot payload")
            }
            SnapshotError::Mismatch { what } => {
                write!(f, "restore target configuration mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Shorthand for codec results.
pub type Result<T> = std::result::Result<T, SnapshotError>;

/// FNV-1a 64-bit hash (the frame checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Binary encoder: little-endian, append-only.
#[derive(Clone, Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a collection length (u64) — pair with [`Dec::len`].
    pub fn seq(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Appends raw bytes, length-prefixed.
    pub fn bytes_seq(&mut self, b: &[u8]) {
        self.seq(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a UTF-8 string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.bytes_seq(s.as_bytes());
    }

    /// Appends an `Option<u64>` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends a slice of `u64`s, length-prefixed.
    pub fn u64_seq(&mut self, xs: &[u64]) {
        self.seq(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }

    /// Appends a slice of `bool`s, length-prefixed.
    pub fn bool_seq(&mut self, xs: &[bool]) {
        self.seq(xs.len());
        for &x in xs {
            self.bool(x);
        }
    }
}

/// Binary decoder over a byte slice. Every read is bounds-checked and
/// returns [`SnapshotError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { what: "bool" }),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `usize` (stored as u64); values that do not fit are
    /// corrupt.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt { what: "usize" })
    }

    /// Reads a collection length and validates it against the bytes
    /// remaining: a count that could not possibly be satisfied (even at
    /// one byte per element) is reported as corrupt rather than driving
    /// a huge allocation or a confusing truncation later.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.usize()?;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(SnapshotError::Corrupt {
                what: "collection count exceeds payload",
            });
        }
        Ok(n)
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed byte sequence.
    pub fn bytes_seq(&mut self) -> Result<&'a [u8]> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let b = self.bytes_seq()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapshotError::Corrupt { what: "utf-8" })
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed `Vec<u64>`.
    pub fn u64_seq(&mut self) -> Result<Vec<u64>> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `Vec<bool>`.
    pub fn bool_seq(&mut self) -> Result<Vec<bool>> {
        let n = self.len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.bool()?);
        }
        Ok(out)
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// State that can be captured into an [`Enc`] and restored from a
/// [`Dec`].
///
/// `restore` writes **into an existing instance built with the same
/// configuration** as the one that was saved (timing structures need
/// their construction parameters); implementations must verify any
/// embedded shape against the target and report
/// [`SnapshotError::Mismatch`] on disagreement. Anything derived or
/// host-only (decoded-block caches, host-time stats) is *recomputed*
/// rather than captured — docs/SNAPSHOT.md keeps the captured/recomputed
/// inventory.
pub trait SnapshotState {
    /// Appends this value's state to `e`.
    fn save(&self, e: &mut Enc);
    /// Overwrites this value's state from `d`.
    fn restore(&mut self, d: &mut Dec) -> Result<()>;
}

/// Frames `payload` into a versioned container: magic, version, `kind`,
/// length, payload, FNV-1a checksum.
pub fn seal(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 23);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Opens a framed container, validating magic, version, kind, payload
/// length, and checksum. Returns the payload slice.
pub fn open(bytes: &[u8], kind: u8) -> Result<&[u8]> {
    if bytes.len() < 15 + 8 {
        return Err(SnapshotError::Truncated {
            need: 23,
            have: bytes.len(),
        });
    }
    let found = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if found != MAGIC {
        return Err(SnapshotError::BadMagic { found });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(SnapshotError::BadVersion {
            found: version,
            expect: VERSION,
        });
    }
    if bytes[6] != kind {
        return Err(SnapshotError::Corrupt {
            what: "snapshot kind",
        });
    }
    let plen = u64::from_le_bytes([
        bytes[7], bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14],
    ]);
    let plen = usize::try_from(plen).map_err(|_| SnapshotError::Corrupt {
        what: "payload length",
    })?;
    let total = 15usize
        .checked_add(plen)
        .and_then(|t| t.checked_add(8))
        .ok_or(SnapshotError::Corrupt {
            what: "payload length",
        })?;
    if bytes.len() < total {
        return Err(SnapshotError::Truncated {
            need: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let body = &bytes[..15 + plen];
    let sum = u64::from_le_bytes(bytes[15 + plen..].try_into().expect("8 bytes"));
    if fnv1a(body) != sum {
        return Err(SnapshotError::Corrupt { what: "checksum" });
    }
    Ok(&bytes[15..15 + plen])
}

/// Renders the frame header as a small JSON manifest (hand-rolled; no
/// payload decode): magic validity, version, kind, payload byte count,
/// checksum. Useful for tooling and failure artifacts.
pub fn describe(bytes: &[u8]) -> String {
    let magic_ok = bytes.len() >= 4 && bytes[..4] == MAGIC;
    let version = if bytes.len() >= 6 {
        u16::from_le_bytes([bytes[4], bytes[5]]) as i64
    } else {
        -1
    };
    let kind = if bytes.len() >= 7 { bytes[6] as i64 } else { -1 };
    let plen = if bytes.len() >= 15 {
        u64::from_le_bytes([
            bytes[7], bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14],
        ]) as i64
    } else {
        -1
    };
    format!(
        "{{\"schema\":\"xt-snapshot/v{VERSION}\",\"magic_ok\":{magic_ok},\
         \"version\":{version},\"kind\":{kind},\"payload_bytes\":{plen},\
         \"total_bytes\":{}}}",
        bytes.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.usize(123_456);
        e.str("héllo");
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.u64_seq(&[1, 2, 3]);
        e.bool_seq(&[true, false]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 123_456);
        assert_eq!(d.string().unwrap(), "héllo");
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.u64_seq().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.bool_seq().unwrap(), vec![true, false]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(
            d.u64(),
            Err(SnapshotError::Truncated { need: 8, have: 2 })
        ));
        // the failed read consumed nothing
        assert_eq!(d.u16().unwrap(), 0x0201);
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut d = Dec::new(&[2]);
        assert!(matches!(d.bool(), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn absurd_count_is_corrupt_not_alloc() {
        let mut e = Enc::new();
        e.seq(usize::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.len(8), Err(SnapshotError::Corrupt { .. })));
        let mut d2 = Dec::new(&bytes);
        assert!(matches!(d2.u64_seq(), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert!(matches!(
            d.finish(),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn frame_seal_open_roundtrip() {
        let framed = seal(KIND_CORE, b"payload");
        assert_eq!(open(&framed, KIND_CORE).unwrap(), b"payload");
    }

    #[test]
    fn frame_rejects_wrong_magic() {
        let mut framed = seal(KIND_CORE, b"x");
        framed[0] = b'Y';
        assert!(matches!(
            open(&framed, KIND_CORE),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn frame_rejects_wrong_version() {
        let mut framed = seal(KIND_CORE, b"x");
        framed[4] = 0xff;
        // version is checked before the checksum so the error is typed
        assert!(matches!(
            open(&framed, KIND_CORE),
            Err(SnapshotError::BadVersion { found: 0x00ff, .. })
        ));
    }

    #[test]
    fn frame_rejects_wrong_kind() {
        let framed = seal(KIND_CORE, b"x");
        assert!(matches!(
            open(&framed, KIND_CLUSTER),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn frame_rejects_truncation_and_trailing() {
        let framed = seal(KIND_CORE, b"some payload");
        assert!(matches!(
            open(&framed[..framed.len() - 3], KIND_CORE),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut longer = framed.clone();
        longer.push(0);
        assert!(matches!(
            open(&longer, KIND_CORE),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
        assert!(matches!(
            open(&[], KIND_CORE),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_detects_payload_flip() {
        let mut framed = seal(KIND_CORE, b"some payload");
        framed[17] ^= 0x40;
        assert!(matches!(
            open(&framed, KIND_CORE),
            Err(SnapshotError::Corrupt { what: "checksum" })
        ));
    }

    #[test]
    fn frame_rejects_absurd_payload_length() {
        let mut framed = seal(KIND_CORE, b"x");
        // corrupt the length field to a value larger than the buffer
        framed[7..15].copy_from_slice(&u64::MAX.to_le_bytes());
        let r = open(&framed, KIND_CORE);
        assert!(
            matches!(r, Err(SnapshotError::Corrupt { .. }))
                || matches!(r, Err(SnapshotError::Truncated { .. })),
            "absurd length must be typed: {r:?}"
        );
    }

    #[test]
    fn describe_is_parseable_json_shape() {
        let framed = seal(KIND_CLUSTER, &[0u8; 10]);
        let j = describe(&framed);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"magic_ok\":true"));
        assert!(j.contains("\"kind\":2"));
        assert!(j.contains("\"payload_bytes\":10"));
        let j2 = describe(b"no");
        assert!(j2.contains("\"magic_ok\":false"));
    }

    #[test]
    fn errors_display() {
        for e in [
            SnapshotError::Truncated { need: 8, have: 0 },
            SnapshotError::BadMagic { found: *b"ABCD" },
            SnapshotError::BadVersion {
                found: 9,
                expect: VERSION,
            },
            SnapshotError::Corrupt { what: "x" },
            SnapshotError::TrailingBytes { extra: 1 },
            SnapshotError::Mismatch { what: "cores" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
