//! # xt-vector — the XT-910 vector execution unit timing model (§VII)
//!
//! The XT-910's vector pipeline is built from identical **vector
//! slices**, each with a complete 64-bit datapath: a multi-port 64-bit
//! vector register file and *two* out-of-order execution pipelines. Each
//! pipeline computes one 64-bit (or two 32-bit) operations per cycle, so
//! the recommended two-slice configuration (`VLEN = SLEN = 128`)
//! produces up to **256 bits of results per cycle** while the LSU moves
//! 128 bits per cycle. Only widening/narrowing and permutation
//! operations exchange data across slices.
//!
//! This crate supplies the slice geometry ([`VectorConfig`]), the
//! per-operation latency table the paper quotes (most operations 3-4
//! cycles, FP multiply 5, divides 6-25 — [`mod@latency`]), the
//! occupancy model ([`occupancy`]), and the lane-slice crack/chaining
//! plan ([`VecPlan`], [`mod@chain`]) used by the `xt-core` pipeline.
//! `docs/VECTOR.md` describes how the pieces compose.

#![warn(missing_docs)]

pub mod chain;
pub mod latency;
pub mod slice;

pub use chain::{consumer_chains, producer_chains, source_ready, VecPlan, VregReady};
pub use latency::{latency, LatencyClass};
pub use slice::{crosses_slices, occupancy, result_bits_per_cycle, VectorConfig};
