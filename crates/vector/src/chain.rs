//! Lane-slice cracking and vector-register chaining (§VII).
//!
//! The XT-910 cracks each vector instruction into **lane slices**: with
//! `VLEN = SLEN = 128` the two 64-bit slices (four pipes) retire up to
//! 256 result bits per cycle, so an op over `vl` elements occupies the
//! pipes for `ceil(vl * dest_bits / 256)` cycles. Results are written
//! back slice by slice, which enables **chaining**: a dependent vector
//! op that also consumes its operands in element order may start as
//! soon as the producer's *first* slice result is ready instead of
//! waiting for the whole register group.
//!
//! This module supplies the per-instruction crack plan ([`VecPlan`]),
//! the per-register readiness triple the core's vector scoreboard keeps
//! ([`VregReady`]), and the chaining admission rules
//! ([`producer_chains`], [`consumer_chains`], [`source_ready`]).
//!
//! Chaining is admitted conservatively:
//!
//! * **producers** forward element-ordered results only if they neither
//!   cross slices (widening/reduction/permutation results arrive after
//!   the inter-slice exchange) nor iterate (divides produce out of
//!   order with respect to the slice clock);
//! * **consumers** may start early only if they also read operands in
//!   element order — crossing ops (reductions, slides, scalar moves)
//!   need every element before their exchange step.

use crate::latency::{class_of, latency, LatencyClass};
use crate::slice::{crosses_slices, occupancy, VectorConfig};
use xt_isa::vector::Sew;
use xt_isa::Op;

/// Readiness of one architectural vector register, tracked by the
/// core's vector scoreboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VregReady {
    /// Cycle the first lane-slice result is written (chain-in point).
    pub first: u64,
    /// Cycle the whole register group is architecturally complete.
    pub last: u64,
    /// Whether the producing op wrote element-ordered results a
    /// chaining consumer may pick up at [`Self::first`].
    pub chainable: bool,
}

impl VregReady {
    /// A register whose whole group completes at `cycle` with no
    /// chain-in point (serialising producer).
    pub fn at(cycle: u64) -> Self {
        VregReady {
            first: cycle,
            last: cycle,
            chainable: false,
        }
    }
}

/// Whether `op` produces its destination elements in element order, so
/// a dependent op can chain off the first completed slice.
pub fn producer_chains(op: Op) -> bool {
    !crosses_slices(op) && class_of(op) != LatencyClass::Divide
}

/// Whether `op` consumes its vector sources in element order, so it may
/// start once a chainable producer's first slice is ready.
pub fn consumer_chains(op: Op) -> bool {
    !crosses_slices(op) && class_of(op) != LatencyClass::Config
}

/// Cycle at which `consumer` can read the vector source described by
/// `src`: the producer's first-slice cycle when both sides admit
/// chaining, else the whole-group completion cycle.
pub fn source_ready(consumer: Op, src: &VregReady) -> u64 {
    if src.chainable && consumer_chains(consumer) {
        src.first
    } else {
        src.last
    }
}

/// Number of architectural registers an operand group spans: the
/// effective LMUL, recovered from `vl * sew` against VLEN (the trace
/// carries `vl`/`sew` but not the vtype LMUL field).
pub fn group_regs(cfg: &VectorConfig, vl: u64, sew: Sew) -> u64 {
    (vl * sew.bits() as u64)
        .div_ceil(cfg.vlen_bits as u64)
        .clamp(1, 8)
}

/// The crack plan for one vector instruction: how long the slice pipes
/// stay occupied, when the first and last results arrive, and whether
/// consumers may chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VecPlan {
    /// Cycles the slice pipes are busy (issue-to-issue back pressure).
    pub occupancy: u64,
    /// Latency from issue to the first slice's result.
    pub latency: u64,
    /// Whether this op's destination admits chaining consumers.
    pub chainable: bool,
}

impl VecPlan {
    /// Cracks `op` over `vl` elements of width `sew` on geometry `cfg`.
    pub fn crack(cfg: &VectorConfig, op: Op, vl: u64, sew: Sew) -> Self {
        let lat = latency(op, sew);
        let occ = if class_of(op) == LatencyClass::Divide {
            // iterative divider: unpipelined, busy for the full latency
            lat
        } else {
            occupancy(cfg, op, vl, sew)
        };
        VecPlan {
            occupancy: occ,
            latency: lat,
            chainable: producer_chains(op),
        }
    }

    /// Cycle the first slice result is available after issuing at
    /// `start`.
    pub fn first_done(&self, start: u64) -> u64 {
        start + self.latency
    }

    /// Cycle the last slice result is available: the first result plus
    /// one cycle per additional occupancy beat.
    pub fn last_done(&self, start: u64) -> u64 {
        start + self.latency + self.occupancy.saturating_sub(1)
    }

    /// The destination's scoreboard entry for an issue at `start`.
    pub fn dest_ready(&self, start: u64) -> VregReady {
        VregReady {
            first: self.first_done(start),
            last: self.last_done(start),
            chainable: self.chainable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops_chain_end_to_end() {
        assert!(producer_chains(Op::VaddVV));
        assert!(consumer_chains(Op::VmaccVV));
        assert!(producer_chains(Op::Vle), "loads forward beat by beat");
    }

    #[test]
    fn crossing_and_iterative_ops_do_not_chain() {
        // reductions exchange across slices: no element-ordered output
        assert!(!producer_chains(Op::VredsumVS));
        assert!(!consumer_chains(Op::VredsumVS));
        // widening MACs produce in order only after the exchange
        assert!(!producer_chains(Op::VwmaccVV));
        // divides iterate
        assert!(!producer_chains(Op::VdivVV));
    }

    #[test]
    fn chained_consumer_starts_at_first_slice() {
        let src = VregReady {
            first: 10,
            last: 13,
            chainable: true,
        };
        assert_eq!(source_ready(Op::VaddVV, &src), 10);
        assert_eq!(source_ready(Op::VredsumVS, &src), 13, "crossing waits");
        let serial = VregReady {
            chainable: false,
            ..src
        };
        assert_eq!(source_ready(Op::VaddVV, &serial), 13);
    }

    #[test]
    fn crack_spreads_long_groups_over_beats() {
        let cfg = VectorConfig::default();
        // LMUL=4 of e32: 16 elements = 512 result bits = 2 beats
        let p = VecPlan::crack(&cfg, Op::VaddVV, 16, Sew::E32);
        assert_eq!(p.occupancy, 2);
        assert_eq!(p.first_done(100), 103);
        assert_eq!(p.last_done(100), 104);
        assert!(p.chainable);
        // one-beat op: first == last
        let q = VecPlan::crack(&cfg, Op::VaddVV, 4, Sew::E32);
        assert_eq!(q.first_done(0), q.last_done(0));
    }

    #[test]
    fn divide_occupies_for_full_latency() {
        let cfg = VectorConfig::default();
        let p = VecPlan::crack(&cfg, Op::VdivVV, 4, Sew::E32);
        assert_eq!(p.occupancy, p.latency);
        assert!(!p.chainable);
    }

    #[test]
    fn group_size_recovers_lmul() {
        let cfg = VectorConfig::default();
        assert_eq!(group_regs(&cfg, 4, Sew::E32), 1); // LMUL=1
        assert_eq!(group_regs(&cfg, 8, Sew::E32), 2); // LMUL=2
        assert_eq!(group_regs(&cfg, 16, Sew::E32), 4); // LMUL=4
        assert_eq!(group_regs(&cfg, 0, Sew::E64), 1, "vl=0 still one reg");
    }
}
