//! Per-operation vector latencies (§VII):
//!
//! > "Most vector operations can be completed within 3-4 clock cycles.
//! > Multiplying single and double precision floating point vectors
//! > takes 5 clock cycles. Integer division and floating-point division
//! > take 6 to 25 clock cycles."

use xt_isa::vector::Sew;
use xt_isa::Op;

/// Latency class of a vector operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LatencyClass {
    /// Simple integer/logic (3 cycles).
    Simple,
    /// Integer multiply / MAC and FP add (4 cycles).
    MulLike,
    /// FP multiply / FMA (5 cycles).
    FpMul,
    /// Iterative divide/sqrt (6-25 cycles by element width).
    Divide,
    /// Cross-slice permutation/reduction (4 cycles).
    Permute,
    /// Configuration (1 cycle, speculated).
    Config,
    /// Memory (latency comes from the cache hierarchy).
    Memory,
}

/// Classifies `op`.
pub fn class_of(op: Op) -> LatencyClass {
    use Op::*;
    match op {
        Vsetvl | Vsetvli => LatencyClass::Config,
        Vle | Vse | Vlse | Vsse | Vlxe | Vsxe => LatencyClass::Memory,
        VdivVV | VdivuVV | VremVV | VfdivVV | VfsqrtV => LatencyClass::Divide,
        VfmulVV | VfmulVF | VfmaccVV | VfmaccVF | VfnmsacVV => LatencyClass::FpMul,
        VmulVV | VmulVX | VmulhVV | VmaccVV | VmaccVX | VnmsacVV | VwmulVV | VwmuluVV
        | VwmaccVV | VwmaccuVV | VfaddVV | VfaddVF | VfsubVV | VfminVV | VfmaxVV => {
            LatencyClass::MulLike
        }
        VredsumVS | VredmaxVS | VfredsumVS | VmvXS | VmvSX | Vslidedown | Vslideup => {
            LatencyClass::Permute
        }
        _ => LatencyClass::Simple,
    }
}

/// Execution latency in cycles for `op` on elements of width `sew`.
pub fn latency(op: Op, sew: Sew) -> u64 {
    match class_of(op) {
        LatencyClass::Config => 1,
        LatencyClass::Simple => 3,
        LatencyClass::MulLike => 4,
        LatencyClass::FpMul => 5,
        LatencyClass::Permute => 4,
        LatencyClass::Memory => 3, // address phase; cache adds the rest
        LatencyClass::Divide => match sew {
            // iterative dividers: wider elements take more iterations
            Sew::E8 => 6,
            Sew::E16 => 10,
            Sew::E32 => 16,
            Sew::E64 => 25,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_latencies() {
        // most ops 3-4 cycles
        assert!((3..=4).contains(&latency(Op::VaddVV, Sew::E32)));
        assert!((3..=4).contains(&latency(Op::VmaccVV, Sew::E16)));
        assert!((3..=4).contains(&latency(Op::VandVV, Sew::E64)));
        // FP multiply exactly 5
        assert_eq!(latency(Op::VfmulVV, Sew::E32), 5);
        assert_eq!(latency(Op::VfmaccVV, Sew::E64), 5);
        // divides within 6..=25
        for sew in [Sew::E8, Sew::E16, Sew::E32, Sew::E64] {
            let l = latency(Op::VdivVV, sew);
            assert!((6..=25).contains(&l), "div e{} = {l}", sew.bits());
            let f = latency(Op::VfdivVV, sew);
            assert!((6..=25).contains(&f));
        }
        // the extremes of the quoted range are hit
        assert_eq!(latency(Op::VdivVV, Sew::E8), 6);
        assert_eq!(latency(Op::VdivVV, Sew::E64), 25);
    }

    #[test]
    fn wider_divides_slower() {
        assert!(latency(Op::VdivVV, Sew::E64) > latency(Op::VdivVV, Sew::E16));
    }

    #[test]
    fn classes_cover_vector_ops() {
        assert_eq!(class_of(Op::Vsetvli), LatencyClass::Config);
        assert_eq!(class_of(Op::Vle), LatencyClass::Memory);
        assert_eq!(class_of(Op::VredsumVS), LatencyClass::Permute);
        assert_eq!(class_of(Op::VxorVV), LatencyClass::Simple);
    }
}
