//! Vector slice geometry and occupancy (paper Fig. 14).

use xt_isa::vector::Sew;
use xt_isa::Op;

/// Geometry of the vector unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VectorConfig {
    /// Vector register length in bits (64..=1024, §VII).
    pub vlen_bits: u32,
    /// Striping unit; the paper recommends `SLEN = VLEN = 128`.
    pub slen_bits: u32,
}

impl Default for VectorConfig {
    fn default() -> Self {
        VectorConfig {
            vlen_bits: 128,
            slen_bits: 128,
        }
    }
}

impl VectorConfig {
    /// Creates a configuration, validating the supported range.
    ///
    /// # Panics
    ///
    /// Panics if `vlen_bits` is not a power of two in 64..=1024.
    pub fn new(vlen_bits: u32) -> Self {
        assert!(
            (64..=1024).contains(&vlen_bits) && vlen_bits.is_power_of_two(),
            "VLEN must be a power of two in 64..=1024 (§VII)"
        );
        VectorConfig {
            vlen_bits,
            slen_bits: vlen_bits.min(128),
        }
    }

    /// Number of 64-bit slices.
    pub fn slices(&self) -> u32 {
        (self.vlen_bits / 64).max(1)
    }

    /// Execution pipelines (two per slice).
    pub fn pipes(&self) -> u32 {
        self.slices() * 2
    }
}

/// Peak result bits produced per cycle: `pipes x 64` (256 for the
/// two-slice configuration, matching §VII).
pub fn result_bits_per_cycle(cfg: &VectorConfig) -> u32 {
    cfg.pipes() * 64
}

/// Whether `op` must exchange data across slices (widening, reductions,
/// permutations, scalar moves).
pub fn crosses_slices(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        VwmulVV
            | VwmuluVV
            | VwmaccVV
            | VwmaccuVV
            | VredsumVS
            | VredmaxVS
            | VfredsumVS
            | VmvXS
            | VmvSX
            | Vslidedown
            | Vslideup
    )
}

/// Cycles the slice pipes are occupied by one instruction operating on
/// `vl` elements of width `sew`: total result bits over the per-cycle
/// capacity, plus one inter-slice exchange cycle for crossing ops.
pub fn occupancy(cfg: &VectorConfig, op: Op, vl: u64, sew: Sew) -> u64 {
    if vl == 0 {
        return 1;
    }
    // widening ops write 2*SEW results
    let dest_bits = if matches!(op, Op::VwmulVV | Op::VwmuluVV | Op::VwmaccVV | Op::VwmaccuVV) {
        sew.bits() as u64 * 2
    } else {
        sew.bits() as u64
    };
    let total = vl * dest_bits;
    let per_cycle = result_bits_per_cycle(cfg) as u64;
    let mut cycles = total.div_ceil(per_cycle).max(1);
    if crosses_slices(op) {
        cycles += 1;
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_slice_default_produces_256_bits() {
        let cfg = VectorConfig::default();
        assert_eq!(cfg.slices(), 2);
        assert_eq!(cfg.pipes(), 4);
        assert_eq!(result_bits_per_cycle(&cfg), 256);
    }

    #[test]
    fn vlen_range_enforced() {
        let wide = VectorConfig::new(1024);
        assert_eq!(wide.slices(), 16);
        assert_eq!(wide.slen_bits, 128, "SLEN capped at the recommended 128");
    }

    #[test]
    #[should_panic]
    fn vlen_too_small_rejected() {
        VectorConfig::new(32);
    }

    #[test]
    fn full_register_op_single_cycle_occupancy() {
        // 128-bit of e32 results = 4 elements -> within 256 bits/cycle
        let cfg = VectorConfig::default();
        assert_eq!(occupancy(&cfg, Op::VaddVV, 4, Sew::E32), 1);
        // LMUL=2 (8 x e32 = 256 bits) still one cycle
        assert_eq!(occupancy(&cfg, Op::VaddVV, 8, Sew::E32), 1);
        // LMUL=4 takes two
        assert_eq!(occupancy(&cfg, Op::VaddVV, 16, Sew::E32), 2);
    }

    #[test]
    fn widening_mac_doubles_result_width() {
        let cfg = VectorConfig::default();
        // 8 x e16 widening MAC -> 8 x 32-bit results = 256 bits, 1 cycle
        // + 1 cross-slice exchange
        assert_eq!(occupancy(&cfg, Op::VwmaccVV, 8, Sew::E16), 2);
        // plain e16 MAC has no crossing
        assert_eq!(occupancy(&cfg, Op::VmaccVV, 8, Sew::E16), 1);
    }

    #[test]
    fn sixteen_macs_per_cycle_at_e16() {
        // §X: "the computing power of XT-910 is 16X 16-bit MACs".
        // Per cycle the two slices produce 256 result bits; at 16-bit
        // that is 16 MAC results.
        let cfg = VectorConfig::default();
        let macs_per_cycle = result_bits_per_cycle(&cfg) / 16;
        assert_eq!(macs_per_cycle, 16);
    }

    #[test]
    fn cross_slice_classification() {
        assert!(crosses_slices(Op::VredsumVS));
        assert!(crosses_slices(Op::VwmaccVV));
        assert!(!crosses_slices(Op::VaddVV));
        assert!(!crosses_slices(Op::VfmaccVV));
    }
}
