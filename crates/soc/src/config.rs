//! SoC-level configuration (paper Table I and §VI).

use xt_mem::MemConfig;

/// Multi-cluster SoC configuration.
#[derive(Clone, Debug)]
pub struct SocConfig {
    /// Number of clusters connected through Ncore (1..=4, §VI).
    pub clusters: usize,
    /// Cores per cluster (1, 2 or 4 — Table I).
    pub cores_per_cluster: usize,
    /// Per-cluster memory configuration.
    pub mem: MemConfig,
    /// Vector extension present (Table I allows yes/no).
    pub vector: bool,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            clusters: 1,
            cores_per_cluster: 4,
            mem: MemConfig {
                cores: 4,
                ..MemConfig::default()
            },
            vector: true,
        }
    }
}

impl SocConfig {
    /// Validates against the supported configuration space.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=4).contains(&self.clusters) {
            return Err(format!("clusters must be 1..=4 (got {})", self.clusters));
        }
        if !matches!(self.cores_per_cluster, 1 | 2 | 4) {
            return Err(format!(
                "cores per cluster must be 1, 2 or 4 (got {})",
                self.cores_per_cluster
            ));
        }
        if self.mem.cores != self.cores_per_cluster {
            return Err("mem.cores must match cores_per_cluster".into());
        }
        self.mem.validate()
    }

    /// Total cores in the SoC (up to 16: "a 12nm 64-bit RISC-V processor
    /// with 16 cores", §I).
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_valid() {
        SocConfig::default().validate().unwrap();
    }

    #[test]
    fn sixteen_core_max() {
        let c = SocConfig {
            clusters: 4,
            ..SocConfig::default()
        };
        assert_eq!(c.total_cores(), 16);
        c.validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = SocConfig {
            clusters: 5,
            ..SocConfig::default()
        };
        assert!(c.validate().is_err());
        c.clusters = 1;
        c.cores_per_cluster = 3;
        assert!(c.validate().is_err());
    }
}
