//! CLINT — the core-local interruptor (software and timer interrupts).
//!
//! Standard register map (as in the RISC-V privileged platform), with
//! offsets shared with guest programs via [`xt_emu::platform::clint_map`]:
//!
//! * `msip[hart]`    at `0x0000 + 4*hart` — software interrupt pending
//! * `mtimecmp[hart]` at `0x4000 + 8*hart` — timer compare
//! * `mtime`         at `0xBFF8` — free-running timer
//!
//! Access widths are architectural: `msip` registers are 32-bit and
//! reject 64-bit accesses (a 64-bit store at `msip[i]` would otherwise
//! alias `msip[i+1]` — the IPI-to-the-wrong-hart bug), while
//! `mtimecmp`/`mtime` accept aligned 64-bit accesses or 32-bit halves.
//! Denied accesses surface as bus faults (guest access faults).

use crate::bus::MmioDevice;
use xt_emu::platform::clint_map::{MSIP_BASE, MTIMECMP_BASE, MTIME};
use xt_emu::BusFault;

/// The CLINT model for up to `harts` harts.
#[derive(Clone, Debug)]
pub struct Clint {
    msip: Vec<bool>,
    mtimecmp: Vec<u64>,
    mtime: u64,
}

/// Merges a 32-bit half-write into a 64-bit register (`offset8` is the
/// byte offset within the register: 0 = low half, 4 = high half).
fn merge_half(cur: u64, offset8: u64, value: u64) -> u64 {
    if offset8 == 0 {
        (cur & 0xffff_ffff_0000_0000) | (value & 0xffff_ffff)
    } else {
        (cur & 0xffff_ffff) | (value << 32)
    }
}

/// Extracts the 32-bit half of a 64-bit register selected by `offset8`.
fn read_half(cur: u64, offset8: u64) -> u64 {
    if offset8 == 0 {
        cur & 0xffff_ffff
    } else {
        cur >> 32
    }
}

impl Clint {
    /// Creates a CLINT for `harts` harts with all compares at max
    /// (disarmed; see [`Clint::ticks_to_timer`]).
    pub fn new(harts: usize) -> Self {
        Clint {
            msip: vec![false; harts],
            mtimecmp: vec![u64::MAX; harts],
            mtime: 0,
        }
    }

    /// Advances the timer by `ticks`.
    pub fn tick(&mut self, ticks: u64) {
        self.mtime = self.mtime.wrapping_add(ticks);
    }

    /// Current `mtime`.
    pub fn mtime(&self) -> u64 {
        self.mtime
    }

    /// Overwrites `mtime` (cluster barrier resync).
    pub fn set_mtime(&mut self, v: u64) {
        self.mtime = v;
    }

    /// Software-interrupt pending for `hart` (MSIP bit).
    pub fn software_pending(&self, hart: usize) -> bool {
        self.msip.get(hart).copied().unwrap_or(false)
    }

    /// Timer-interrupt pending for `hart` (`mtime >= mtimecmp`).
    pub fn timer_pending(&self, hart: usize) -> bool {
        self.mtimecmp
            .get(hart)
            .is_some_and(|&cmp| self.mtime >= cmp)
    }

    /// Ticks until `hart`'s timer interrupt asserts: `Some(n)` when the
    /// compare is armed `n > 0` ticks ahead, `None` when already pending
    /// or disarmed (`mtimecmp == u64::MAX`). Drives WFI fast-forward.
    pub fn ticks_to_timer(&self, hart: usize) -> Option<u64> {
        let cmp = *self.mtimecmp.get(hart)?;
        if cmp == u64::MAX || self.mtime >= cmp {
            None
        } else {
            Some(cmp - self.mtime)
        }
    }

    /// Locates the 64-bit timer register (compare or mtime) containing
    /// `offset`, returning (register base offset, a mutable-less view is
    /// handled by callers). `None` when `offset` maps to no register.
    fn timer_reg(&self, offset: u64) -> Option<(u64, u64)> {
        if (MTIME..MTIME + 8).contains(&offset) {
            return Some((MTIME, self.mtime));
        }
        if (MTIMECMP_BASE..MTIME).contains(&offset) {
            let hart = ((offset - MTIMECMP_BASE) / 8) as usize;
            let base = MTIMECMP_BASE + 8 * hart as u64;
            return self.mtimecmp.get(hart).map(|&v| (base, v));
        }
        None
    }

    /// Width-checked MMIO read at `offset` within the CLINT region.
    ///
    /// # Errors
    ///
    /// [`BusFault`] on a bad width, misalignment, or unmapped offset.
    pub fn read(&self, offset: u64, size: usize) -> Result<u64, BusFault> {
        if (MSIP_BASE..MTIMECMP_BASE).contains(&offset) {
            // msip: 32-bit registers, 32-bit aligned access only
            if size != 4 || !offset.is_multiple_of(4) {
                return Err(BusFault);
            }
            let hart = ((offset - MSIP_BASE) / 4) as usize;
            return match self.msip.get(hart) {
                Some(&b) => Ok(b as u64),
                None => Err(BusFault),
            };
        }
        let (base, cur) = self.timer_reg(offset).ok_or(BusFault)?;
        match size {
            8 if offset == base => Ok(cur),
            4 if offset == base || offset == base + 4 => Ok(read_half(cur, offset - base)),
            _ => Err(BusFault),
        }
    }

    /// Width-checked MMIO write at `offset`.
    ///
    /// # Errors
    ///
    /// [`BusFault`] on a bad width, misalignment, or unmapped offset.
    pub fn write(&mut self, offset: u64, value: u64, size: usize) -> Result<(), BusFault> {
        if (MSIP_BASE..MTIMECMP_BASE).contains(&offset) {
            if size != 4 || !offset.is_multiple_of(4) {
                return Err(BusFault);
            }
            let hart = ((offset - MSIP_BASE) / 4) as usize;
            return match self.msip.get_mut(hart) {
                Some(b) => {
                    *b = value & 1 != 0;
                    Ok(())
                }
                None => Err(BusFault),
            };
        }
        let (base, cur) = self.timer_reg(offset).ok_or(BusFault)?;
        let new = match size {
            8 if offset == base => value,
            4 if offset == base || offset == base + 4 => merge_half(cur, offset - base, value),
            _ => return Err(BusFault),
        };
        if base == MTIME {
            self.mtime = new;
        } else {
            let hart = ((base - MTIMECMP_BASE) / 8) as usize;
            self.mtimecmp[hart] = new;
        }
        Ok(())
    }
}

impl xt_snapshot::SnapshotState for Clint {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.bool_seq(&self.msip);
        e.u64_seq(&self.mtimecmp);
        e.u64(self.mtime);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        let msip = d.bool_seq()?;
        let mtimecmp = d.u64_seq()?;
        if msip.len() != self.msip.len() || mtimecmp.len() != self.mtimecmp.len() {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "clint hart count",
            });
        }
        self.msip = msip;
        self.mtimecmp = mtimecmp;
        self.mtime = d.u64()?;
        Ok(())
    }
}

impl MmioDevice for Clint {
    fn read(&mut self, offset: u64, size: usize) -> Result<u64, BusFault> {
        Clint::read(self, offset, size)
    }

    fn write(&mut self, offset: u64, value: u64, size: usize) -> Result<(), BusFault> {
        Clint::write(self, offset, value, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_interrupt_via_msip() {
        let mut c = Clint::new(4);
        assert!(!c.software_pending(2));
        c.write(MSIP_BASE + 8, 1, 4).unwrap(); // hart 2
        assert!(c.software_pending(2));
        assert!(!c.software_pending(1));
        c.write(MSIP_BASE + 8, 0, 4).unwrap();
        assert!(!c.software_pending(2));
    }

    #[test]
    fn timer_fires_at_compare() {
        let mut c = Clint::new(1);
        c.write(MTIMECMP_BASE, 100, 8).unwrap();
        assert!(!c.timer_pending(0));
        assert_eq!(c.ticks_to_timer(0), Some(100));
        c.tick(99);
        assert!(!c.timer_pending(0));
        c.tick(1);
        assert!(c.timer_pending(0));
        assert_eq!(c.ticks_to_timer(0), None, "already pending");
        // rearm
        c.write(MTIMECMP_BASE, 200, 8).unwrap();
        assert!(!c.timer_pending(0));
    }

    #[test]
    fn mtime_read_write() {
        let mut c = Clint::new(1);
        c.write(MTIME, 12345, 8).unwrap();
        assert_eq!(c.read(MTIME, 8).unwrap(), 12345);
        c.tick(5);
        assert_eq!(c.read(MTIME, 8).unwrap(), 12350);
    }

    #[test]
    fn per_hart_compare_registers() {
        let mut c = Clint::new(2);
        c.write(MTIMECMP_BASE, 10, 8).unwrap();
        c.write(MTIMECMP_BASE + 8, 20, 8).unwrap();
        c.tick(15);
        assert!(c.timer_pending(0));
        assert!(!c.timer_pending(1));
        assert_eq!(c.read(MTIMECMP_BASE + 8, 8).unwrap(), 20);
    }

    /// Regression (ISSUE 7 satellite): a 64-bit store at `msip[i]` must
    /// fault, not alias `msip[i+1]` — an IPI to hart 0 must never also
    /// wake hart 1.
    #[test]
    fn msip_rejects_wide_access() {
        let mut c = Clint::new(4);
        assert_eq!(c.write(MSIP_BASE, 1, 8), Err(BusFault));
        assert!(!c.software_pending(0), "denied store has no effect");
        assert!(!c.software_pending(1), "and no aliasing into msip[1]");
        assert_eq!(c.read(MSIP_BASE, 8), Err(BusFault));
        // misaligned 32-bit access straddling msip[0]/msip[1]
        assert_eq!(c.write(MSIP_BASE + 2, 1, 4), Err(BusFault));
        // out-of-range hart
        assert_eq!(c.write(MSIP_BASE + 4 * 4, 1, 4), Err(BusFault));
    }

    /// `mtimecmp` takes 64-bit accesses or 32-bit halves, nothing else.
    #[test]
    fn timer_registers_width_rules() {
        let mut c = Clint::new(1);
        c.write(MTIMECMP_BASE, 0x1111_2222_3333_4444, 8).unwrap();
        // 32-bit halves read back the split value
        assert_eq!(c.read(MTIMECMP_BASE, 4).unwrap(), 0x3333_4444);
        assert_eq!(c.read(MTIMECMP_BASE + 4, 4).unwrap(), 0x1111_2222);
        // half-writes merge
        c.write(MTIMECMP_BASE + 4, 0xAAAA_BBBB, 4).unwrap();
        assert_eq!(c.read(MTIMECMP_BASE, 8).unwrap(), 0xAAAA_BBBB_3333_4444);
        // denied: misaligned 64-bit, byte access, unmapped hole
        assert_eq!(c.write(MTIMECMP_BASE + 4, 0, 8), Err(BusFault));
        assert_eq!(c.read(MTIME, 1), Err(BusFault));
        assert_eq!(c.read(0x3000, 4), Err(BusFault));
    }
}
