//! CLINT — the core-local interruptor (software and timer interrupts).
//!
//! Standard register map (as in the RISC-V privileged platform):
//!
//! * `msip[hart]`    at `0x0000 + 4*hart` — software interrupt pending
//! * `mtimecmp[hart]` at `0x4000 + 8*hart` — timer compare
//! * `mtime`         at `0xBFF8` — free-running timer

/// Base offsets within the CLINT region.
const MSIP_BASE: u64 = 0x0000;
const MTIMECMP_BASE: u64 = 0x4000;
const MTIME: u64 = 0xBFF8;

/// The CLINT model for up to `harts` harts.
#[derive(Clone, Debug)]
pub struct Clint {
    msip: Vec<bool>,
    mtimecmp: Vec<u64>,
    mtime: u64,
}

impl Clint {
    /// Creates a CLINT for `harts` harts with all compares at max.
    pub fn new(harts: usize) -> Self {
        Clint {
            msip: vec![false; harts],
            mtimecmp: vec![u64::MAX; harts],
            mtime: 0,
        }
    }

    /// Advances the timer by `ticks`.
    pub fn tick(&mut self, ticks: u64) {
        self.mtime = self.mtime.wrapping_add(ticks);
    }

    /// Software-interrupt pending for `hart` (MSIP bit).
    pub fn software_pending(&self, hart: usize) -> bool {
        self.msip[hart]
    }

    /// Timer-interrupt pending for `hart` (`mtime >= mtimecmp`).
    pub fn timer_pending(&self, hart: usize) -> bool {
        self.mtime >= self.mtimecmp[hart]
    }

    /// MMIO read at `offset` within the CLINT region.
    pub fn read(&self, offset: u64) -> u64 {
        if offset == MTIME {
            return self.mtime;
        }
        if (MSIP_BASE..MTIMECMP_BASE).contains(&offset) {
            let hart = ((offset - MSIP_BASE) / 4) as usize;
            return self.msip.get(hart).map(|b| *b as u64).unwrap_or(0);
        }
        if (MTIMECMP_BASE..MTIME).contains(&offset) {
            let hart = ((offset - MTIMECMP_BASE) / 8) as usize;
            return self.mtimecmp.get(hart).copied().unwrap_or(u64::MAX);
        }
        0
    }

    /// MMIO write at `offset`.
    pub fn write(&mut self, offset: u64, value: u64) {
        if offset == MTIME {
            self.mtime = value;
            return;
        }
        if (MSIP_BASE..MTIMECMP_BASE).contains(&offset) {
            let hart = ((offset - MSIP_BASE) / 4) as usize;
            if let Some(b) = self.msip.get_mut(hart) {
                *b = value & 1 != 0;
            }
            return;
        }
        if (MTIMECMP_BASE..MTIME).contains(&offset) {
            let hart = ((offset - MTIMECMP_BASE) / 8) as usize;
            if let Some(c) = self.mtimecmp.get_mut(hart) {
                *c = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_interrupt_via_msip() {
        let mut c = Clint::new(4);
        assert!(!c.software_pending(2));
        c.write(MSIP_BASE + 8, 1); // hart 2
        assert!(c.software_pending(2));
        assert!(!c.software_pending(1));
        c.write(MSIP_BASE + 8, 0);
        assert!(!c.software_pending(2));
    }

    #[test]
    fn timer_fires_at_compare() {
        let mut c = Clint::new(1);
        c.write(MTIMECMP_BASE, 100);
        assert!(!c.timer_pending(0));
        c.tick(99);
        assert!(!c.timer_pending(0));
        c.tick(1);
        assert!(c.timer_pending(0));
        // rearm
        c.write(MTIMECMP_BASE, 200);
        assert!(!c.timer_pending(0));
    }

    #[test]
    fn mtime_read_write() {
        let mut c = Clint::new(1);
        c.write(MTIME, 12345);
        assert_eq!(c.read(MTIME), 12345);
        c.tick(5);
        assert_eq!(c.read(MTIME), 12350);
    }

    #[test]
    fn per_hart_compare_registers() {
        let mut c = Clint::new(2);
        c.write(MTIMECMP_BASE, 10);
        c.write(MTIMECMP_BASE + 8, 20);
        c.tick(15);
        assert!(c.timer_pending(0));
        assert!(!c.timer_pending(1));
        assert_eq!(c.read(MTIMECMP_BASE + 8), 20);
    }
}
