//! PLIC — the platform-level interrupt controller, with the XT-910's
//! permission-control extension hook (§II mentions an interrupt
//! controller extension "to support permission control").
//!
//! Besides the method API, the PLIC exposes the standard MMIO register
//! map (offsets in [`xt_emu::platform::plic_map`], context = hart):
//! source priorities, read-only pending words, per-context enable
//! words, thresholds, and the claim/complete register — plus the XT-910
//! extension's per-context permission words at `0x3000` (1 = granted).
//! All registers are 32-bit; any other width faults.

use crate::bus::MmioDevice;
use xt_emu::platform::plic_map;
use xt_emu::BusFault;

/// The PLIC model: `sources` interrupt lines fanned out to `contexts`
/// (hart x privilege) targets.
#[derive(Clone, Debug)]
pub struct Plic {
    priority: Vec<u32>,
    pending: Vec<bool>,
    /// enables[context][source]
    enables: Vec<Vec<bool>>,
    threshold: Vec<u32>,
    claimed: Vec<Option<u32>>,
    /// XT-910 extension: per-context permission mask — a context may only
    /// claim sources it has been granted (secure-world partitioning).
    permission: Vec<Vec<bool>>,
}

impl Plic {
    /// Creates a PLIC with `sources` lines (1-indexed, 0 reserved) and
    /// `contexts` targets. All permissions granted by default.
    pub fn new(sources: usize, contexts: usize) -> Self {
        Plic {
            priority: vec![0; sources + 1],
            pending: vec![false; sources + 1],
            enables: vec![vec![false; sources + 1]; contexts],
            threshold: vec![0; contexts],
            claimed: vec![None; contexts],
            permission: vec![vec![true; sources + 1]; contexts],
        }
    }

    /// Sets the priority of `source` (0 disables it).
    pub fn set_priority(&mut self, source: u32, prio: u32) {
        self.priority[source as usize] = prio;
    }

    /// Enables `source` for `context`.
    pub fn enable(&mut self, context: usize, source: u32) {
        self.enables[context][source as usize] = true;
    }

    /// Sets the claim threshold of `context`.
    pub fn set_threshold(&mut self, context: usize, t: u32) {
        self.threshold[context] = t;
    }

    /// XT-910 extension: revokes `context`'s permission to see `source`.
    pub fn revoke_permission(&mut self, context: usize, source: u32) {
        self.permission[context][source as usize] = false;
    }

    /// Raises an interrupt line.
    pub fn raise(&mut self, source: u32) {
        self.pending[source as usize] = true;
    }

    fn best_for(&self, context: usize) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None; // (prio, source)
        for s in 1..self.pending.len() {
            if !self.pending[s]
                || !self.enables[context][s]
                || !self.permission[context][s]
                || self.priority[s] == 0
                || self.priority[s] <= self.threshold[context]
            {
                continue;
            }
            let cand = (self.priority[s], s as u32);
            // higher priority wins; ties broken by lower source id
            best = match best {
                Some((bp, bs)) if bp > cand.0 || (bp == cand.0 && bs < cand.1) => Some((bp, bs)),
                _ => Some(cand),
            };
        }
        best.map(|(_, s)| s)
    }

    /// Whether an interrupt is asserted to `context`.
    pub fn pending_for(&self, context: usize) -> bool {
        self.best_for(context).is_some()
    }

    /// Claim: returns and acknowledges the highest-priority pending
    /// source for `context`, or 0.
    pub fn claim(&mut self, context: usize) -> u32 {
        match self.best_for(context) {
            Some(s) => {
                self.pending[s as usize] = false;
                self.claimed[context] = Some(s);
                s
            }
            None => 0,
        }
    }

    /// Complete: signals end of handling for `source`.
    pub fn complete(&mut self, context: usize, source: u32) {
        if self.claimed[context] == Some(source) {
            self.claimed[context] = None;
        }
    }

    /// Number of sources (excluding the reserved source 0).
    pub fn sources(&self) -> usize {
        self.priority.len() - 1
    }

    /// Number of contexts.
    pub fn contexts(&self) -> usize {
        self.threshold.len()
    }

    /// Whether `source` is enabled for `context`.
    pub fn enabled(&self, context: usize, source: u32) -> bool {
        self.enables[context][source as usize]
    }

    /// The priority of `source`.
    pub fn priority(&self, source: u32) -> u32 {
        self.priority[source as usize]
    }

    /// The claim threshold of `context`.
    pub fn threshold(&self, context: usize) -> u32 {
        self.threshold[context]
    }

    /// Whether `source`'s line is raised (gateway pending bit).
    pub fn is_pending(&self, source: u32) -> bool {
        self.pending[source as usize]
    }

    /// Reads a 32-bit word of per-source bits (bit = source id).
    fn bit_word(bits: &[bool], word: u64) -> u64 {
        let mut v = 0u64;
        for b in 0..32 {
            let s = word as usize * 32 + b;
            if s < bits.len() && bits[s] {
                v |= 1 << b;
            }
        }
        v
    }

    /// Writes a 32-bit word of per-source bits (source 0 stays fixed:
    /// it is reserved).
    fn set_bit_word(bits: &mut [bool], word: u64, value: u64) {
        for b in 0..32 {
            let s = word as usize * 32 + b;
            if s >= 1 && s < bits.len() {
                bits[s] = value & (1 << b) != 0;
            }
        }
    }

    /// MMIO read at `offset` (see [`plic_map`]). The claim register
    /// read *claims*: it acknowledges and returns the best source.
    ///
    /// # Errors
    ///
    /// [`BusFault`] on a bad width/alignment or unmapped offset.
    pub fn mmio_read(&mut self, offset: u64, size: usize) -> Result<u64, BusFault> {
        if size != 4 || !offset.is_multiple_of(4) {
            return Err(BusFault);
        }
        let nwords = self.priority.len().div_ceil(32) as u64;
        match offset {
            o if o < plic_map::PENDING_BASE => {
                let s = (o / 4) as usize;
                match self.priority.get(s) {
                    Some(&p) => Ok(p as u64),
                    None => Err(BusFault),
                }
            }
            o if (plic_map::PENDING_BASE..plic_map::ENABLE_BASE).contains(&o) => {
                let w = (o - plic_map::PENDING_BASE) / 4;
                if w >= nwords {
                    return Err(BusFault);
                }
                Ok(Self::bit_word(&self.pending, w))
            }
            o if (plic_map::ENABLE_BASE..plic_map::PERMISSION_BASE).contains(&o) => {
                let ctx = ((o - plic_map::ENABLE_BASE) / plic_map::ENABLE_STRIDE) as usize;
                let w = (o - plic_map::ENABLE_BASE) % plic_map::ENABLE_STRIDE / 4;
                match self.enables.get(ctx) {
                    Some(e) if w < nwords => Ok(Self::bit_word(e, w)),
                    _ => Err(BusFault),
                }
            }
            o if (plic_map::PERMISSION_BASE..plic_map::PERMISSION_BASE + 0x1000)
                .contains(&o) =>
            {
                let ctx = ((o - plic_map::PERMISSION_BASE) / plic_map::PERMISSION_STRIDE) as usize;
                let w = (o - plic_map::PERMISSION_BASE) % plic_map::PERMISSION_STRIDE / 4;
                match self.permission.get(ctx) {
                    Some(p) if w < nwords => Ok(Self::bit_word(p, w)),
                    _ => Err(BusFault),
                }
            }
            o if o >= plic_map::CONTEXT_BASE => {
                let ctx = ((o - plic_map::CONTEXT_BASE) / plic_map::CONTEXT_STRIDE) as usize;
                if ctx >= self.contexts() {
                    return Err(BusFault);
                }
                match (o - plic_map::CONTEXT_BASE) % plic_map::CONTEXT_STRIDE {
                    0 => Ok(self.threshold[ctx] as u64),
                    plic_map::CLAIM_OFFSET => Ok(self.claim(ctx) as u64),
                    _ => Err(BusFault),
                }
            }
            _ => Err(BusFault),
        }
    }

    /// MMIO write at `offset`. Writing the claim register *completes*
    /// handling of the written source id; pending words are read-only.
    ///
    /// # Errors
    ///
    /// [`BusFault`] on a bad width/alignment, a read-only register, or
    /// an unmapped offset.
    pub fn mmio_write(&mut self, offset: u64, value: u64, size: usize) -> Result<(), BusFault> {
        if size != 4 || !offset.is_multiple_of(4) {
            return Err(BusFault);
        }
        let nwords = self.priority.len().div_ceil(32) as u64;
        match offset {
            o if o < plic_map::PENDING_BASE => {
                let s = (o / 4) as usize;
                match self.priority.get_mut(s) {
                    // source 0 is reserved: accept and ignore
                    Some(p) => {
                        if s != 0 {
                            *p = value as u32;
                        }
                        Ok(())
                    }
                    None => Err(BusFault),
                }
            }
            o if (plic_map::ENABLE_BASE..plic_map::PERMISSION_BASE).contains(&o) => {
                let ctx = ((o - plic_map::ENABLE_BASE) / plic_map::ENABLE_STRIDE) as usize;
                let w = (o - plic_map::ENABLE_BASE) % plic_map::ENABLE_STRIDE / 4;
                match self.enables.get_mut(ctx) {
                    Some(e) if w < nwords => {
                        Self::set_bit_word(e, w, value);
                        Ok(())
                    }
                    _ => Err(BusFault),
                }
            }
            o if (plic_map::PERMISSION_BASE..plic_map::PERMISSION_BASE + 0x1000)
                .contains(&o) =>
            {
                let ctx = ((o - plic_map::PERMISSION_BASE) / plic_map::PERMISSION_STRIDE) as usize;
                let w = (o - plic_map::PERMISSION_BASE) % plic_map::PERMISSION_STRIDE / 4;
                match self.permission.get_mut(ctx) {
                    Some(p) if w < nwords => {
                        Self::set_bit_word(p, w, value);
                        Ok(())
                    }
                    _ => Err(BusFault),
                }
            }
            o if o >= plic_map::CONTEXT_BASE => {
                let ctx = ((o - plic_map::CONTEXT_BASE) / plic_map::CONTEXT_STRIDE) as usize;
                if ctx >= self.contexts() {
                    return Err(BusFault);
                }
                match (o - plic_map::CONTEXT_BASE) % plic_map::CONTEXT_STRIDE {
                    0 => {
                        self.threshold[ctx] = value as u32;
                        Ok(())
                    }
                    plic_map::CLAIM_OFFSET => {
                        self.complete(ctx, value as u32);
                        Ok(())
                    }
                    _ => Err(BusFault),
                }
            }
            _ => Err(BusFault),
        }
    }
}

impl xt_snapshot::SnapshotState for Plic {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.seq(self.priority.len());
        for &p in &self.priority {
            e.u32(p);
        }
        e.bool_seq(&self.pending);
        e.seq(self.enables.len());
        for en in &self.enables {
            e.bool_seq(en);
        }
        e.seq(self.threshold.len());
        for &t in &self.threshold {
            e.u32(t);
        }
        e.seq(self.claimed.len());
        for &c in &self.claimed {
            e.opt_u64(c.map(u64::from));
        }
        e.seq(self.permission.len());
        for p in &self.permission {
            e.bool_seq(p);
        }
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        let mismatch = |what| xt_snapshot::SnapshotError::Mismatch { what };
        let corrupt = |what| xt_snapshot::SnapshotError::Corrupt { what };
        let n_prio = d.len(4)?;
        if n_prio != self.priority.len() {
            return Err(mismatch("plic source count"));
        }
        for p in &mut self.priority {
            *p = d.u32()?;
        }
        let pending = d.bool_seq()?;
        if pending.len() != self.pending.len() {
            return Err(mismatch("plic source count"));
        }
        self.pending = pending;
        let n_en = d.len(8)?;
        if n_en != self.enables.len() {
            return Err(mismatch("plic context count"));
        }
        for en in &mut self.enables {
            let v = d.bool_seq()?;
            if v.len() != en.len() {
                return Err(mismatch("plic source count"));
            }
            *en = v;
        }
        let n_thr = d.len(4)?;
        if n_thr != self.threshold.len() {
            return Err(mismatch("plic context count"));
        }
        for t in &mut self.threshold {
            *t = d.u32()?;
        }
        let n_cl = d.len(1)?;
        if n_cl != self.claimed.len() {
            return Err(mismatch("plic context count"));
        }
        for c in &mut self.claimed {
            *c = match d.opt_u64()? {
                Some(v) => {
                    Some(u32::try_from(v).map_err(|_| corrupt("plic claimed source"))?)
                }
                None => None,
            };
        }
        let n_perm = d.len(8)?;
        if n_perm != self.permission.len() {
            return Err(mismatch("plic context count"));
        }
        for p in &mut self.permission {
            let v = d.bool_seq()?;
            if v.len() != p.len() {
                return Err(mismatch("plic source count"));
            }
            *p = v;
        }
        Ok(())
    }
}

impl MmioDevice for Plic {
    fn read(&mut self, offset: u64, size: usize) -> Result<u64, BusFault> {
        self.mmio_read(offset, size)
    }

    fn write(&mut self, offset: u64, value: u64, size: usize) -> Result<(), BusFault> {
        self.mmio_write(offset, value, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plic() -> Plic {
        let mut p = Plic::new(8, 2);
        for s in 1..=8 {
            p.set_priority(s, s); // priority = id
            p.enable(0, s);
            p.enable(1, s);
        }
        p
    }

    #[test]
    fn highest_priority_claimed_first() {
        let mut p = plic();
        p.raise(3);
        p.raise(7);
        p.raise(5);
        assert_eq!(p.claim(0), 7);
        assert_eq!(p.claim(0), 5);
        assert_eq!(p.claim(0), 3);
        assert_eq!(p.claim(0), 0, "nothing left");
    }

    #[test]
    fn threshold_masks_low_priority() {
        let mut p = plic();
        p.set_threshold(0, 5);
        p.raise(3);
        assert!(!p.pending_for(0));
        p.raise(6);
        assert_eq!(p.claim(0), 6);
    }

    #[test]
    fn disabled_context_sees_nothing() {
        let mut p = Plic::new(4, 2);
        p.set_priority(1, 1);
        p.enable(0, 1);
        p.raise(1);
        assert!(p.pending_for(0));
        assert!(!p.pending_for(1), "context 1 never enabled source 1");
    }

    #[test]
    fn permission_control_extension() {
        let mut p = plic();
        p.revoke_permission(1, 7);
        p.raise(7);
        assert!(p.pending_for(0), "context 0 still allowed");
        assert!(!p.pending_for(1), "context 1 revoked");
        assert_eq!(p.claim(1), 0);
        assert_eq!(p.claim(0), 7);
    }

    #[test]
    fn claim_complete_cycle() {
        let mut p = plic();
        p.raise(2);
        let s = p.claim(0);
        assert_eq!(s, 2);
        p.complete(0, s);
        assert!(!p.pending_for(0));
    }
}
