//! `MmioBus` — the synchronous, strongly-ordered device bus.
//!
//! The bus owns the platform devices and routes physical addresses
//! through fixed, disjoint windows (the map lives in
//! [`xt_emu::platform`] so guest programs share it):
//!
//! | window | base | device |
//! |---|---|---|
//! | CLINT | `0x0200_0000` | [`Clint`] — msip / mtimecmp / mtime |
//! | PLIC  | `0x0C00_0000` | [`Plic`] — priorities, claim/complete |
//! | UART  | `0x1000_0000` | [`Uart`] — TX-only console |
//!
//! Extra devices can be added with [`MmioBus::add_device`]. Every
//! access is synchronous and strongly ordered: the device observes it
//! before the next instruction executes, in program order — there is no
//! posted-write buffering, which is what makes interrupt delivery a
//! deterministic function of the retired-instruction stream
//! (docs/INTERRUPTS.md).
//!
//! A denied access (bad width, unmapped hole, read-only register) makes
//! the guest take a load/store access fault *and* is recorded in
//! [`MmioBus::denied`] with the window name — the diagnostics that turn
//! "my IPI vanished" into "64-bit store at CLINT+0x0 denied".
//!
//! The bus implements [`xt_emu::Platform`]; attach with
//! [`attach_bus`] and inspect after a run with [`bus_of`].

use crate::clint::Clint;
use crate::plic::Plic;
use crate::uart::Uart;
use xt_emu::platform::{
    CLINT_BASE, CLINT_SIZE, PLIC_BASE, PLIC_SIZE, UART_BASE, UART_SIZE,
};
use xt_emu::{BusFault, Emulator, IrqLines, Platform};

/// Default number of PLIC sources on the bus (ids 1..=31).
pub const DEFAULT_PLIC_SOURCES: usize = 31;

/// Ceiling on retained denied-access diagnostics (a guest wedged in a
/// faulting loop must not grow the log unboundedly).
pub const MAX_DENIED: usize = 64;

/// A device as the bus sees it: width-checked reads and writes at
/// window-relative offsets.
pub trait MmioDevice: std::fmt::Debug + Send {
    /// Reads `size` bytes at `offset` within the device window.
    ///
    /// # Errors
    ///
    /// [`BusFault`] for a denied access (width, alignment, unmapped).
    fn read(&mut self, offset: u64, size: usize) -> Result<u64, BusFault>;

    /// Writes the low `size` bytes of `value` at `offset`.
    ///
    /// # Errors
    ///
    /// [`BusFault`] for a denied access.
    fn write(&mut self, offset: u64, value: u64, size: usize) -> Result<(), BusFault>;
}

/// One denied device access, for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeniedAccess {
    /// Faulting physical address.
    pub pa: u64,
    /// Access size in bytes.
    pub size: usize,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Name of the window hit.
    pub window: &'static str,
}

/// An extra (non-standard) device window.
#[derive(Debug)]
struct ExtraWindow {
    base: u64,
    size: u64,
    name: &'static str,
    dev: Box<dyn MmioDevice>,
}

/// The standard XT-910 device bus: CLINT + PLIC + UART, plus any extra
/// windows. See the [module docs](self).
#[derive(Debug)]
pub struct MmioBus {
    /// The core-local interruptor (timer + software interrupts).
    pub clint: Clint,
    /// The platform interrupt controller (context = hart).
    pub plic: Plic,
    /// The console UART.
    pub uart: Uart,
    /// Denied-access diagnostics, oldest first (capped at
    /// [`MAX_DENIED`]; later denials only bump
    /// [`MmioBus::denied_dropped`]).
    pub denied: Vec<DeniedAccess>,
    /// Denied accesses dropped after the log filled — the log plus this
    /// counter account for every denial.
    pub denied_dropped: u64,
    extra: Vec<ExtraWindow>,
    harts: usize,
}

impl MmioBus {
    /// Creates the standard bus for `harts` harts (PLIC contexts map
    /// 1:1 to harts; [`DEFAULT_PLIC_SOURCES`] sources).
    pub fn new(harts: usize) -> Self {
        MmioBus {
            clint: Clint::new(harts),
            plic: Plic::new(DEFAULT_PLIC_SOURCES, harts),
            uart: Uart::new(),
            denied: Vec::new(),
            denied_dropped: 0,
            extra: Vec::new(),
            harts,
        }
    }

    /// Number of harts the bus serves.
    pub fn harts(&self) -> usize {
        self.harts
    }

    /// Maps an extra device at `[base, base+size)`.
    ///
    /// # Panics
    ///
    /// Panics if the window overlaps an existing one or guest RAM
    /// (anything at or above the halt MMIO page).
    pub fn add_device(
        &mut self,
        base: u64,
        size: u64,
        name: &'static str,
        dev: Box<dyn MmioDevice>,
    ) {
        assert!(size > 0, "empty device window");
        assert!(
            base + size <= xt_asm::HALT_ADDR,
            "device window collides with the halt page or RAM"
        );
        let overlaps = |b: u64, s: u64| base < b + s && b < base + size;
        assert!(
            !overlaps(CLINT_BASE, CLINT_SIZE)
                && !overlaps(PLIC_BASE, PLIC_SIZE)
                && !overlaps(UART_BASE, UART_SIZE)
                && !self.extra.iter().any(|w| overlaps(w.base, w.size)),
            "device window {name} overlaps an existing window"
        );
        self.extra.push(ExtraWindow {
            base,
            size,
            name,
            dev,
        });
    }

    /// Routes `pa` to (window name, window base, device).
    fn route(&mut self, pa: u64) -> Option<(&'static str, u64, &mut dyn MmioDevice)> {
        if (CLINT_BASE..CLINT_BASE + CLINT_SIZE).contains(&pa) {
            return Some(("clint", CLINT_BASE, &mut self.clint));
        }
        if (PLIC_BASE..PLIC_BASE + PLIC_SIZE).contains(&pa) {
            return Some(("plic", PLIC_BASE, &mut self.plic));
        }
        if (UART_BASE..UART_BASE + UART_SIZE).contains(&pa) {
            return Some(("uart", UART_BASE, &mut self.uart));
        }
        self.extra
            .iter_mut()
            .find(|w| (w.base..w.base + w.size).contains(&pa))
            .map(|w| (w.name, w.base, &mut *w.dev as &mut dyn MmioDevice))
    }

    fn record_denied(&mut self, pa: u64, size: usize, is_write: bool, window: &'static str) {
        if self.denied.len() < MAX_DENIED {
            self.denied.push(DeniedAccess {
                pa,
                size,
                is_write,
                window,
            });
        } else {
            self.denied_dropped += 1;
        }
    }
}

/// Bus snapshots capture the three standard devices and the
/// denied-access log. Extra windows ([`MmioBus::add_device`]) are
/// *not* captured — their device state is opaque to the codec; a
/// snapshot of a bus with extra windows restores the standard devices
/// and leaves the extra devices' state untouched (docs/SNAPSHOT.md).
impl xt_snapshot::SnapshotState for MmioBus {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.usize(self.harts);
        self.clint.save(e);
        self.plic.save(e);
        self.uart.save(e);
        e.seq(self.denied.len());
        for a in &self.denied {
            e.u64(a.pa);
            e.usize(a.size);
            e.bool(a.is_write);
            e.str(a.window);
        }
        e.u64(self.denied_dropped);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        if d.usize()? != self.harts {
            return Err(xt_snapshot::SnapshotError::Mismatch {
                what: "bus hart count",
            });
        }
        self.clint.restore(d)?;
        self.plic.restore(d)?;
        self.uart.restore(d)?;
        let n = d.len(19)?; // 8 pa + 8 size + 1 is_write + ≥2 window name
        let mut denied = Vec::with_capacity(n);
        for _ in 0..n {
            let pa = d.u64()?;
            let size = d.usize()?;
            let is_write = d.bool()?;
            // window names round-trip through the known static names
            // (standard windows plus any extra windows on the target)
            let name = d.string()?;
            let window = match name.as_str() {
                "clint" => "clint",
                "plic" => "plic",
                "uart" => "uart",
                other => self
                    .extra
                    .iter()
                    .map(|w| w.name)
                    .find(|n| *n == other)
                    .ok_or(xt_snapshot::SnapshotError::Corrupt {
                        what: "denied-access window name",
                    })?,
            };
            denied.push(DeniedAccess {
                pa,
                size,
                is_write,
                window,
            });
        }
        self.denied = denied;
        self.denied_dropped = d.u64()?;
        Ok(())
    }
}

impl Platform for MmioBus {
    fn contains(&self, pa: u64) -> bool {
        (CLINT_BASE..CLINT_BASE + CLINT_SIZE).contains(&pa)
            || (PLIC_BASE..PLIC_BASE + PLIC_SIZE).contains(&pa)
            || (UART_BASE..UART_BASE + UART_SIZE).contains(&pa)
            || self
                .extra
                .iter()
                .any(|w| (w.base..w.base + w.size).contains(&pa))
    }

    fn read(&mut self, pa: u64, size: usize) -> Result<u64, BusFault> {
        let (name, base, dev) = self.route(pa).ok_or(BusFault)?;
        match dev.read(pa - base, size) {
            Ok(v) => Ok(v),
            Err(f) => {
                self.record_denied(pa, size, false, name);
                Err(f)
            }
        }
    }

    fn write(&mut self, pa: u64, val: u64, size: usize) -> Result<(), BusFault> {
        let (name, base, dev) = self.route(pa).ok_or(BusFault)?;
        match dev.write(pa - base, val, size) {
            Ok(()) => Ok(()),
            Err(f) => {
                self.record_denied(pa, size, true, name);
                Err(f)
            }
        }
    }

    fn tick(&mut self, ticks: u64) {
        self.clint.tick(ticks);
    }

    fn irq_lines(&self, hart: u64) -> IrqLines {
        let h = hart as usize;
        IrqLines {
            msip: self.clint.software_pending(h),
            mtip: self.clint.timer_pending(h),
            meip: h < self.plic.contexts() && self.plic.pending_for(h),
        }
    }

    fn ticks_to_timer(&self, hart: u64) -> Option<u64> {
        self.clint.ticks_to_timer(hart as usize)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Attaches a standard bus for `harts` harts to `emu` and returns a
/// mutable borrow of it (configure devices, then run).
pub fn attach_bus(emu: &mut Emulator, harts: usize) -> &mut MmioBus {
    emu.attach_platform(Box::new(MmioBus::new(harts)));
    bus_of_mut(emu).expect("just attached")
}

/// The emulator's attached [`MmioBus`], if any.
pub fn bus_of(emu: &Emulator) -> Option<&MmioBus> {
    emu.platform
        .as_ref()
        .and_then(|p| p.as_any().downcast_ref::<MmioBus>())
}

/// Mutable access to the emulator's attached [`MmioBus`], if any.
pub fn bus_of_mut(emu: &mut Emulator) -> Option<&mut MmioBus> {
    emu.platform
        .as_mut()
        .and_then(|p| p.as_any_mut().downcast_mut::<MmioBus>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_emu::platform::{clint_map, plic_map};

    #[test]
    fn routes_to_standard_windows() {
        let mut bus = MmioBus::new(2);
        // CLINT msip[1]
        bus.write(CLINT_BASE + clint_map::MSIP_BASE + 4, 1, 4).unwrap();
        assert!(bus.clint.software_pending(1));
        assert!(bus.irq_lines(1).msip);
        // UART TX
        bus.write(UART_BASE, b'x' as u64, 1).unwrap();
        assert_eq!(bus.uart.tx, b"x");
        // PLIC priority for source 3
        bus.write(PLIC_BASE + 3 * 4, 5, 4).unwrap();
        assert_eq!(bus.plic.priority(3), 5);
    }

    #[test]
    fn plic_claim_complete_over_mmio() {
        let mut bus = MmioBus::new(1);
        bus.write(PLIC_BASE + 7 * 4, 3, 4).unwrap(); // priority[7] = 3
        bus.write(PLIC_BASE + plic_map::ENABLE_BASE, 1 << 7, 4).unwrap();
        bus.plic.raise(7);
        assert!(bus.irq_lines(0).meip);
        // pending word shows the raised line
        assert_eq!(bus.read(PLIC_BASE + plic_map::PENDING_BASE, 4).unwrap(), 1 << 7);
        // claim by read, line drops, complete by write
        let claim_addr = PLIC_BASE + plic_map::CONTEXT_BASE + plic_map::CLAIM_OFFSET;
        assert_eq!(bus.read(claim_addr, 4).unwrap(), 7);
        assert!(!bus.irq_lines(0).meip);
        bus.write(claim_addr, 7, 4).unwrap();
    }

    #[test]
    fn denied_accesses_are_diagnosed() {
        let mut bus = MmioBus::new(1);
        assert_eq!(bus.write(CLINT_BASE + clint_map::MSIP_BASE, 1, 8), Err(BusFault));
        assert_eq!(bus.read(PLIC_BASE + 2, 4), Err(BusFault)); // misaligned
        assert_eq!(
            bus.denied,
            vec![
                DeniedAccess {
                    pa: CLINT_BASE,
                    size: 8,
                    is_write: true,
                    window: "clint"
                },
                DeniedAccess {
                    pa: PLIC_BASE + 2,
                    size: 4,
                    is_write: false,
                    window: "plic"
                },
            ]
        );
    }

    #[test]
    fn denied_log_caps_and_counts_drops() {
        let mut bus = MmioBus::new(1);
        // a guest wedged in a faulting loop: way more denials than the cap
        for _ in 0..(MAX_DENIED + 50) {
            assert_eq!(bus.read(PLIC_BASE + 2, 4), Err(BusFault));
        }
        assert_eq!(bus.denied.len(), MAX_DENIED, "log capped");
        assert_eq!(bus.denied_dropped, 50, "overflow denials counted");
        // snapshot round-trips the drop counter
        use xt_snapshot::SnapshotState;
        let mut e = xt_snapshot::Enc::new();
        bus.save(&mut e);
        let bytes = e.into_bytes();
        let mut r = MmioBus::new(1);
        let mut d = xt_snapshot::Dec::new(&bytes);
        r.restore(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(r.denied.len(), MAX_DENIED);
        assert_eq!(r.denied_dropped, 50);
    }

    #[test]
    fn extra_windows_route_and_reject_overlap() {
        #[derive(Debug)]
        struct Doorbell(u64);
        impl MmioDevice for Doorbell {
            fn read(&mut self, _o: u64, _s: usize) -> Result<u64, BusFault> {
                Ok(self.0)
            }
            fn write(&mut self, _o: u64, v: u64, _s: usize) -> Result<(), BusFault> {
                self.0 = v;
                Ok(())
            }
        }
        let mut bus = MmioBus::new(1);
        bus.add_device(0x1100_0000, 0x10, "bell", Box::new(Doorbell(0)));
        assert!(bus.contains(0x1100_0008));
        bus.write(0x1100_0000, 42, 8).unwrap();
        assert_eq!(bus.read(0x1100_0004, 4).unwrap(), 42);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b = MmioBus::new(1);
            b.add_device(UART_BASE + 8, 0x10, "bad", Box::new(Doorbell(0)));
        }));
        assert!(r.is_err(), "overlap with the UART window must panic");
    }
}
