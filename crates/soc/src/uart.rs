//! A minimal TX-only UART (8250-flavored register subset).
//!
//! Byte-wide registers at the [`xt_emu::platform::UART_BASE`] window:
//!
//! * `0x0` THR (write): transmit a byte — appended to [`Uart::tx`];
//!   reading returns 0 (the receive FIFO is always empty).
//! * `0x5` LSR (read): line status — always `0x60` (transmit holding
//!   register empty + transmitter idle), so guest polling loops
//!   terminate immediately.
//!
//! All accesses must be 1 byte wide; writes to any register but THR and
//! accesses outside the 8-byte register file fault (and land in the
//! bus's denied-access diagnostics).

use crate::bus::MmioDevice;
use xt_emu::BusFault;

/// LSR value: THR empty | transmitter idle.
const LSR_IDLE: u64 = 0x60;

/// Ceiling on retained TX bytes (a guest wedged in a print loop must
/// not grow host memory unboundedly). 64 KiB holds any test program's
/// full console output.
pub const MAX_TX: usize = 64 * 1024;

/// The UART device model.
#[derive(Clone, Debug, Default)]
pub struct Uart {
    /// Transmitted bytes, in order, capped at [`MAX_TX`]; overflow
    /// bytes are counted in [`Uart::tx_dropped`] instead. The write
    /// itself still succeeds — a full host-side buffer is not a guest
    /// bus fault.
    pub tx: Vec<u8>,
    /// Bytes transmitted after the buffer filled (dropped, not stored).
    pub tx_dropped: u64,
}

impl Uart {
    /// Creates an idle UART.
    pub fn new() -> Self {
        Uart::default()
    }

    /// The transmitted bytes as a lossy string (test convenience).
    pub fn tx_string(&self) -> String {
        String::from_utf8_lossy(&self.tx).into_owned()
    }
}

impl xt_snapshot::SnapshotState for Uart {
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.bytes_seq(&self.tx);
        e.u64(self.tx_dropped);
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        self.tx = d.bytes_seq()?.to_vec();
        self.tx_dropped = d.u64()?;
        Ok(())
    }
}

impl MmioDevice for Uart {
    fn read(&mut self, offset: u64, size: usize) -> Result<u64, BusFault> {
        if size != 1 || offset >= 8 {
            return Err(BusFault);
        }
        Ok(match offset {
            5 => LSR_IDLE,
            _ => 0,
        })
    }

    fn write(&mut self, offset: u64, value: u64, size: usize) -> Result<(), BusFault> {
        if size != 1 || offset != 0 {
            return Err(BusFault);
        }
        if self.tx.len() < MAX_TX {
            self.tx.push(value as u8);
        } else {
            self.tx_dropped += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_and_status() {
        let mut u = Uart::new();
        for b in b"hi" {
            u.write(0, *b as u64, 1).unwrap();
        }
        assert_eq!(u.tx_string(), "hi");
        assert_eq!(u.read(5, 1).unwrap(), LSR_IDLE);
        assert_eq!(u.read(0, 1).unwrap(), 0, "rx empty");
    }

    #[test]
    fn tx_buffer_caps_and_counts_drops() {
        let mut u = Uart::new();
        for i in 0..(MAX_TX + 100) {
            u.write(0, (i & 0x7f) as u64, 1).unwrap();
        }
        assert_eq!(u.tx.len(), MAX_TX, "buffer capped");
        assert_eq!(u.tx_dropped, 100, "overflow bytes counted");
        // snapshot round-trips the cap state
        use xt_snapshot::SnapshotState;
        let mut e = xt_snapshot::Enc::new();
        u.save(&mut e);
        let bytes = e.into_bytes();
        let mut r = Uart::new();
        let mut d = xt_snapshot::Dec::new(&bytes);
        r.restore(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(r.tx.len(), MAX_TX);
        assert_eq!(r.tx_dropped, 100);
    }

    #[test]
    fn width_and_offset_rules() {
        let mut u = Uart::new();
        assert_eq!(u.write(0, 0x41, 4), Err(BusFault), "word-wide THR write");
        assert_eq!(u.write(5, 1, 1), Err(BusFault), "LSR is read-only");
        assert_eq!(u.read(8, 1), Err(BusFault), "past the register file");
        assert!(u.tx.is_empty());
    }
}
