//! Cluster epoch timeline: per-epoch, per-core progress attribution.
//!
//! The epoch-barriered engine ([`crate::cluster::ClusterSim`]) advances
//! every core by a fixed simulated-cycle slice, then runs a serial
//! barrier. This module records, for every epoch, how many guest cycles
//! and instructions each core actually advanced (a parked or finished
//! core advances less than the slice), plus the measured host
//! nanoseconds of the parallel slice phase and the serial barrier.
//!
//! The guest-progress columns are deterministic and participate in
//! snapshots; the host columns are wall-clock measurements — like
//! [`crate::cluster::EngineStats`] they are *excluded* from the
//! determinism contract, zeroed on save, and left out of the pinned
//! chrome fixture ([`EpochTimeline::to_chrome_json`] with
//! `include_host = false`).

use xt_trace::lanes::LaneTrace;

/// One epoch's attribution row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochSample {
    /// Guest cycles each core advanced during this epoch (slice plus
    /// any barrier-released gated instruction).
    pub cycles: Vec<u64>,
    /// Instructions each core consumed during this epoch.
    pub steps: Vec<u64>,
    /// Host nanoseconds of the parallel slice phase (measured,
    /// non-deterministic; zero after a snapshot restore).
    pub parallel_ns: u64,
    /// Host nanoseconds of the serial barrier (measured,
    /// non-deterministic; zero after a snapshot restore).
    pub serial_ns: u64,
}

/// The full per-epoch timeline of a cluster run (opt in with
/// [`crate::cluster::ClusterSim::with_timeline`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochTimeline {
    /// Core count (row width).
    pub cores: usize,
    /// Epoch length in simulated cycles (lane geometry).
    pub epoch_cycles: u64,
    /// One row per executed epoch, in order.
    pub epochs: Vec<EpochSample>,
}

impl EpochTimeline {
    /// An empty timeline for `cores` cores stepping `epoch_cycles`-cycle
    /// epochs.
    pub fn new(cores: usize, epoch_cycles: u64) -> Self {
        EpochTimeline {
            cores,
            epoch_cycles,
            epochs: Vec::new(),
        }
    }

    /// Appends one epoch row.
    pub fn record(&mut self, sample: EpochSample) {
        debug_assert_eq!(sample.cycles.len(), self.cores);
        debug_assert_eq!(sample.steps.len(), self.cores);
        self.epochs.push(sample);
    }

    /// Total guest cycles core `c` advanced across all epochs.
    pub fn core_cycles(&self, c: usize) -> u64 {
        self.epochs.iter().map(|e| e.cycles[c]).sum()
    }

    /// Total instructions core `c` consumed across all epochs.
    pub fn core_steps(&self, c: usize) -> u64 {
        self.epochs.iter().map(|e| e.steps[c]).sum()
    }

    /// Renders the timeline as Chrome `trace_event` JSON.
    ///
    /// Guest lanes (one per core) live on the simulated-cycle axis: each
    /// epoch draws a slice starting at the epoch boundary whose duration
    /// is the cycles the core actually advanced, so a stalled or
    /// finished core visibly empties its lane. With `include_host`, two
    /// extra lanes on a host-nanosecond axis alternate `parallel` /
    /// `serial` slices per epoch — the Amdahl picture of the engine.
    /// Host lanes are non-deterministic; pinned fixtures must render
    /// with `include_host = false` (byte-stable for identical runs).
    pub fn to_chrome_json(&self, include_host: bool) -> String {
        let mut t = LaneTrace::new("xt-910 cluster epochs");
        for c in 0..self.cores {
            t.lane(c as u64, &format!("core {c}"));
        }
        if include_host {
            t.lane(self.cores as u64, "host parallel");
            t.lane(self.cores as u64 + 1, "host serial");
        }
        for (e, row) in self.epochs.iter().enumerate() {
            let start = e as u64 * self.epoch_cycles;
            for c in 0..self.cores {
                t.slice(
                    c as u64,
                    start,
                    row.cycles[c],
                    &format!("epoch {e}"),
                    &[
                        ("cycles", row.cycles[c].to_string()),
                        ("steps", row.steps[c].to_string()),
                    ],
                );
            }
        }
        if include_host {
            let mut at = 0u64;
            for (e, row) in self.epochs.iter().enumerate() {
                t.slice(
                    self.cores as u64,
                    at,
                    row.parallel_ns,
                    &format!("parallel {e}"),
                    &[],
                );
                at += row.parallel_ns;
                t.slice(
                    self.cores as u64 + 1,
                    at,
                    row.serial_ns,
                    &format!("serial {e}"),
                    &[],
                );
                at += row.serial_ns;
            }
        }
        t.finish()
    }
}

impl xt_snapshot::SnapshotState for EpochTimeline {
    /// Saves the deterministic columns only: host nanoseconds are
    /// measurements, not state, and are written as zero so equal
    /// simulated runs produce equal snapshot bytes.
    fn save(&self, e: &mut xt_snapshot::Enc) {
        e.usize(self.cores);
        e.u64(self.epoch_cycles);
        e.seq(self.epochs.len());
        for row in &self.epochs {
            e.u64_seq(&row.cycles);
            e.u64_seq(&row.steps);
        }
    }

    fn restore(&mut self, d: &mut xt_snapshot::Dec) -> xt_snapshot::Result<()> {
        use xt_snapshot::SnapshotError;
        if d.usize()? != self.cores {
            return Err(SnapshotError::Mismatch {
                what: "timeline core count",
            });
        }
        self.epoch_cycles = d.u64()?;
        let n = d.len(2)?;
        self.epochs.clear();
        for _ in 0..n {
            let cycles = d.u64_seq()?;
            let steps = d.u64_seq()?;
            if cycles.len() != self.cores || steps.len() != self.cores {
                return Err(SnapshotError::Mismatch {
                    what: "timeline row width",
                });
            }
            self.epochs.push(EpochSample {
                cycles,
                steps,
                parallel_ns: 0,
                serial_ns: 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_snapshot::SnapshotState;

    fn sample_timeline() -> EpochTimeline {
        let mut tl = EpochTimeline::new(2, 100);
        tl.record(EpochSample {
            cycles: vec![100, 90],
            steps: vec![40, 37],
            parallel_ns: 1234,
            serial_ns: 99,
        });
        tl.record(EpochSample {
            cycles: vec![100, 0],
            steps: vec![41, 0],
            parallel_ns: 1200,
            serial_ns: 80,
        });
        tl
    }

    #[test]
    fn totals_sum_rows() {
        let tl = sample_timeline();
        assert_eq!(tl.core_cycles(0), 200);
        assert_eq!(tl.core_cycles(1), 90);
        assert_eq!(tl.core_steps(0), 81);
        assert_eq!(tl.core_steps(1), 37);
    }

    #[test]
    fn chrome_render_is_deterministic_and_gates_host_lanes() {
        let tl = sample_timeline();
        let guest = tl.to_chrome_json(false);
        assert_eq!(guest, tl.to_chrome_json(false), "byte-stable");
        assert!(guest.contains("\"core 0\"") && guest.contains("\"core 1\""));
        assert!(guest.contains("\"epoch 0\"") && guest.contains("\"epoch 1\""));
        assert!(!guest.contains("host"), "no host lanes unless asked");
        assert_eq!(guest.matches('{').count(), guest.matches('}').count());
        let host = tl.to_chrome_json(true);
        assert!(host.contains("\"host parallel\"") && host.contains("\"host serial\""));
        assert!(host.contains("\"parallel 0\"") && host.contains("\"serial 1\""));
    }

    #[test]
    fn idle_core_draws_no_slice() {
        let tl = sample_timeline();
        let j = tl.to_chrome_json(false);
        // epoch 1 on core 1 advanced 0 cycles: exactly three epoch
        // slices total (2 cores x 2 epochs minus the empty one)
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn snapshot_roundtrip_drops_host_time_only() {
        let tl = sample_timeline();
        let mut e = xt_snapshot::Enc::new();
        tl.save(&mut e);
        let bytes = e.into_bytes();
        let mut r = EpochTimeline::new(2, 1);
        let mut d = xt_snapshot::Dec::new(&bytes);
        r.restore(&mut d).expect("restore");
        d.finish().expect("consumed");
        assert_eq!(r.epoch_cycles, 100);
        assert_eq!(r.epochs.len(), 2);
        for (a, b) in tl.epochs.iter().zip(&r.epochs) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.steps, b.steps);
            assert_eq!(b.parallel_ns, 0, "host time is not state");
            assert_eq!(b.serial_ns, 0);
        }
        // re-save is byte-exact (host ns never serialized)
        let mut e2 = xt_snapshot::Enc::new();
        r.save(&mut e2);
        assert_eq!(bytes, e2.into_bytes());
    }

    #[test]
    fn wrong_width_row_is_mismatch() {
        let tl = sample_timeline();
        let mut e = xt_snapshot::Enc::new();
        tl.save(&mut e);
        let bytes = e.into_bytes();
        let mut r = EpochTimeline::new(3, 1);
        let mut d = xt_snapshot::Dec::new(&bytes);
        assert!(r.restore(&mut d).is_err(), "core-count mismatch detected");
    }
}
