//! Cluster-level simulation: 1-4 cores time-interleaved over one shared
//! coherent memory system (paper Fig. 2).

use xt_asm::Program;
use xt_core::{CoreConfig, OooCore, PerfCounters};
use xt_emu::{Emulator, TraceSource};
use xt_mem::{MemConfig, MemStats, MemSystem};

/// Result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-core counters.
    pub cores: Vec<PerfCounters>,
    /// Shared memory-system statistics.
    pub mem: MemStats,
    /// Per-core exit codes.
    pub exit_codes: Vec<Option<u64>>,
}

impl ClusterReport {
    /// Cluster makespan: the slowest core's cycle count.
    pub fn makespan(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Aggregate instructions retired.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate throughput: total instructions over the makespan.
    pub fn throughput_ipc(&self) -> f64 {
        let m = self.makespan();
        if m == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / m as f64
        }
    }
}

/// A cluster of out-of-order cores sharing one [`MemSystem`].
pub struct ClusterSim {
    cores: Vec<OooCore>,
    traces: Vec<TraceSource>,
    mem: MemSystem,
    max_insts: u64,
}

impl ClusterSim {
    /// Builds a cluster running `programs[i]` on core `i`. The memory
    /// configuration's `cores` field must equal `programs.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the counts disagree or the configuration is invalid.
    pub fn new(programs: &[Program], core_cfg: &CoreConfig, mem_cfg: MemConfig, max_insts: u64) -> Self {
        assert_eq!(
            mem_cfg.cores,
            programs.len(),
            "mem_cfg.cores must match program count"
        );
        let cores = (0..programs.len())
            .map(|i| OooCore::new(core_cfg.clone(), i))
            .collect();
        let traces = programs
            .iter()
            .map(|p| {
                let mut emu = Emulator::new();
                emu.load(p);
                TraceSource::new(emu, max_insts)
            })
            .collect();
        ClusterSim {
            cores,
            traces,
            mem: MemSystem::new(mem_cfg),
            max_insts,
        }
    }

    /// Runs all cores to completion, interleaving by simulated time so
    /// the shared L2/DRAM see a realistic access order.
    pub fn run(mut self) -> ClusterReport {
        let n = self.cores.len();
        let mut done = vec![false; n];
        let mut steps = vec![0u64; n];
        loop {
            // pick the live core that is furthest behind in time
            let next = (0..n)
                .filter(|&i| !done[i])
                .min_by_key(|&i| self.cores[i].cycles());
            let Some(i) = next else { break };
            match self.traces[i].next() {
                Some(d) => {
                    self.cores[i].step(&d, &mut self.mem);
                    steps[i] += 1;
                    if steps[i] >= self.max_insts {
                        done[i] = true;
                    }
                }
                None => done[i] = true,
            }
        }
        let cores: Vec<PerfCounters> = self
            .cores
            .iter_mut()
            .map(|c| {
                let mut p = c.perf().clone();
                p.cycles = c.cycles();
                p
            })
            .collect();
        ClusterReport {
            cores,
            mem: self.mem.stats(),
            exit_codes: self.traces.iter().map(|t| t.exit_code).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_asm::Asm;
    use xt_isa::reg::Gpr;

    /// A private-working-set kernel: each core sums its own array.
    fn private_kernel(id: u64) -> Program {
        let mut a = Asm::new().with_data_base(0x8100_0000 + id * 0x0010_0000);
        let buf = a.data_zeros("buf", 64 * 1024);
        a.la(Gpr::A1, buf);
        a.li(Gpr::A2, 4096);
        let top = a.here();
        a.ld(Gpr::A4, Gpr::A1, 0);
        a.add(Gpr::A5, Gpr::A5, Gpr::A4);
        a.addi(Gpr::A1, Gpr::A1, 8);
        a.addi(Gpr::A2, Gpr::A2, -1);
        a.bnez(Gpr::A2, top);
        a.halt();
        a.finish().unwrap()
    }

    /// A sharing kernel: all cores hammer the same cache line with an
    /// atomic counter (the contended pattern that exposes ping-pong).
    fn sharing_kernel(iters: i64) -> Program {
        let mut a = Asm::new();
        let cell = a.data_u64("cell", &[0]);
        a.la(Gpr::A1, cell);
        a.li(Gpr::A2, iters);
        a.li(Gpr::A3, 1);
        let top = a.here();
        a.amoadd_d(Gpr::A4, Gpr::A3, Gpr::A1);
        a.addi(Gpr::A2, Gpr::A2, -1);
        a.bnez(Gpr::A2, top);
        a.halt();
        a.finish().unwrap()
    }

    /// The same atomic-counter kernel on a private cell.
    fn private_atomic_kernel(id: u64, iters: i64) -> Program {
        let mut a = Asm::new().with_data_base(0x8100_0000 + id * 0x0010_0000);
        let cell = a.data_u64("cell", &[0]);
        a.la(Gpr::A1, cell);
        a.li(Gpr::A2, iters);
        a.li(Gpr::A3, 1);
        let top = a.here();
        a.amoadd_d(Gpr::A4, Gpr::A3, Gpr::A1);
        a.addi(Gpr::A2, Gpr::A2, -1);
        a.bnez(Gpr::A2, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn four_private_cores_scale() {
        let mk = |n: usize| {
            let progs: Vec<Program> = (0..n as u64).map(private_kernel).collect();
            let mem_cfg = MemConfig {
                cores: n,
                ..MemConfig::default()
            };
            ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 10_000_000).run()
        };
        let one = mk(1);
        let four = mk(4);
        assert!(four.total_instructions() > 3 * one.total_instructions());
        // private working sets: near-linear throughput scaling
        assert!(
            four.throughput_ipc() > 2.0 * one.throughput_ipc(),
            "4-core throughput {:.2} vs 1-core {:.2}",
            four.throughput_ipc(),
            one.throughput_ipc()
        );
        // the only shared line is the halt mailbox: a handful of snoops
        assert!(
            four.mem.snoops_sent <= 8,
            "private sets should barely snoop: {}",
            four.mem.snoops_sent
        );
    }

    #[test]
    fn sharing_generates_coherence_traffic() {
        let progs: Vec<Program> = (0..4).map(|_| sharing_kernel(200)).collect();
        let mem_cfg = MemConfig {
            cores: 4,
            ..MemConfig::default()
        };
        let r = ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 1_000_000).run();
        assert!(r.mem.snoops_sent > 0, "line ping-pong produces snoops");
        assert!(r.mem.c2c_transfers > 0, "dirty lines move cache-to-cache");
        for code in &r.exit_codes {
            assert!(code.is_some(), "all cores halted");
        }
    }

    #[test]
    fn contended_atomic_slower_than_private_atomic() {
        let share: Vec<Program> = (0..2).map(|_| sharing_kernel(500)).collect();
        let priv_: Vec<Program> = (0..2u64).map(|i| private_atomic_kernel(i, 500)).collect();
        let mem2 = || MemConfig {
            cores: 2,
            ..MemConfig::default()
        };
        let rs = ClusterSim::new(&share, &CoreConfig::xt910(), mem2(), 1_000_000).run();
        let shared_cpi = rs.makespan() as f64 / rs.total_instructions() as f64;
        let rp = ClusterSim::new(&priv_, &CoreConfig::xt910(), mem2(), 1_000_000).run();
        let priv_cpi = rp.makespan() as f64 / rp.total_instructions() as f64;
        assert!(
            shared_cpi > priv_cpi * 1.2,
            "contended CPI {shared_cpi:.2} vs private {priv_cpi:.2}"
        );
        assert!(rs.mem.c2c_transfers > rp.mem.c2c_transfers);
    }
}
