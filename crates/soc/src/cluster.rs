//! Deterministic epoch-barriered parallel cluster engine (paper Fig. 2;
//! gem5/FireSim-style host parallelism, see PAPERS.md).
//!
//! Each core — its [`OooCore`] timing model, its functional
//! [`xt_emu::Emulator`], and a private *replica* of the full
//! [`MemSystem`] hierarchy — steps independently for a fixed cycle
//! epoch, optionally on its own `std::thread`. At the epoch barrier a
//! single thread arbitrates everything that must be globally ordered,
//! always in **core-index order**:
//!
//! 1. every replica's recorded memory traffic ([`xt_mem::MemOp`] logs)
//!    is replayed into the *master* memory system (the canonical stats),
//!    then cross-applied to the other replicas so each core's next slice
//!    sees the cluster's traffic (coherence with one-epoch lag);
//! 2. functional stores buffered by each emulator propagate to the other
//!    cores' memories in program order (an unbounded store buffer —
//!    RVWMO-legal) and kill matching LR reservations;
//! 3. cores parked in front of a globally visible instruction (AMO,
//!    LR/SC, fence — see [`xt_emu::ClusterCtl`]) execute exactly one
//!    such instruction each, its stores propagating immediately, which
//!    serializes atomics cluster-wide.
//!
//! **Determinism contract:** the slice phase touches only per-core
//! state and the barrier runs serially in a fixed order, so the result
//! — [`PerfCounters`], [`MemStats`], exit codes, pipeline traces — is
//! bit-identical for any host thread count ([`ClusterSim::run_threads`]
//! with 1, 2, 4, … threads, or the inline [`ClusterSim::run_sequential`]
//! oracle). `tests/determinism.rs` and the `xt-check` cluster suite
//! enforce this; docs/CLUSTER.md derives it.

use crate::bus::{bus_of, bus_of_mut, MmioBus};
use crate::timeline::{EpochSample, EpochTimeline};
use std::sync::Arc;
use std::thread;
use std::time::Instant;
use xt_asm::Program;
use xt_core::{CoreConfig, OooCore, PerfCounters};
use xt_emu::{ClusterCtl, Emulator, StoreRec, TraceEvent, TraceSource};
use xt_mem::{MemConfig, MemOp, MemStats, MemSystem, MemTracer};

/// Default epoch length in simulated cycles. Long enough to amortize
/// the serial barrier over thousands of parallel core-steps, short
/// enough that coherence lag stays bounded.
pub const DEFAULT_EPOCH_CYCLES: u64 = 8192;

/// LR/SC reservation granularity for cross-core kills (one cache line).
const RESERVATION_LINE: u64 = 64;

/// Host-time breakdown of the epoch engine for one run: how much wall
/// clock went to the parallelizable slice phase versus the serial
/// barrier. This is *measured host time* — informational, excluded from
/// the determinism contract (every simulated-cycle field stays
/// bit-identical across thread counts; these nanoseconds do not).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Epoch barriers executed.
    pub epochs: u64,
    /// Host nanoseconds inside the serial barrier (drain/replay,
    /// store propagation, gated-instruction release).
    pub serial_ns: u64,
    /// Host nanoseconds inside the slice phase (worker threads or the
    /// inline sequential oracle).
    pub parallel_ns: u64,
}

impl EngineStats {
    /// Fraction of engine wall clock spent in the serial barrier — the
    /// Amdahl term that bounds host-parallel speedup.
    pub fn serial_share(&self) -> f64 {
        let total = self.serial_ns + self.parallel_ns;
        if total == 0 {
            0.0
        } else {
            self.serial_ns as f64 / total as f64
        }
    }
}

/// Result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-core counters.
    pub cores: Vec<PerfCounters>,
    /// Shared memory-system statistics (the master hierarchy, which saw
    /// every core's traffic in deterministic barrier order).
    pub mem: MemStats,
    /// Per-core exit codes.
    pub exit_codes: Vec<Option<u64>>,
    /// Per-core Konata pipeline traces, when tracing was enabled with
    /// [`ClusterSim::with_tracers`].
    pub konata: Option<Vec<String>>,
    /// Engine host-time breakdown (measured, non-deterministic; see
    /// [`EngineStats`]).
    pub engine: EngineStats,
    /// Per-epoch per-core progress attribution, when enabled with
    /// [`ClusterSim::with_timeline`]. Guest columns are deterministic;
    /// host columns are measurements (see [`EpochTimeline`]).
    pub timeline: Option<EpochTimeline>,
    /// The master hierarchy's memory-event stream, when enabled with
    /// [`ClusterSim::with_mem_tracing`]. Every event mirrors a counter
    /// in [`ClusterReport::mem`] ([`MemTracer::reconcile`]), and the
    /// stream is bit-identical for any host thread count.
    pub mem_events: Option<MemTracer>,
}

impl ClusterReport {
    /// Cluster makespan: the slowest core's cycle count.
    pub fn makespan(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Aggregate instructions retired.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate throughput: total instructions over the makespan.
    pub fn throughput_ipc(&self) -> f64 {
        let m = self.makespan();
        if m == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / m as f64
        }
    }
}

/// One core's private simulation state. Everything a slice touches
/// lives here, which is what makes the slice phase thread-safe without
/// locks: disjoint `&mut CoreSlot`s go to disjoint worker threads.
struct CoreSlot {
    /// This core's index (fixes the resync replay order below).
    id: usize,
    core: OooCore,
    trace: TraceSource,
    /// Private replica of the full memory hierarchy. The core steps
    /// against it between barriers; the previous barrier's traffic from
    /// the other cores is cross-applied at the start of the next slice
    /// (delayed coherence), on this slot's own worker thread.
    mem: MemSystem,
    /// All cores' logs from the last barrier, waiting to be resynced.
    pending: Option<Arc<Vec<Vec<MemOp>>>>,
    /// Parked in front of a gated (globally visible) instruction.
    parked: bool,
    /// Trace exhausted (halt, error, or instruction limit).
    done: bool,
    steps: u64,
}

impl CoreSlot {
    /// Runs this core until the epoch boundary, a barrier request, or
    /// end of trace — no shared state touched.
    fn run_slice(&mut self, epoch_end: u64, max_insts: u64) {
        // resync first: replay the other cores' last-epoch traffic into
        // the private replica, in core-index order (deterministic, and
        // off the serial barrier's critical path)
        if let Some(logs) = self.pending.take() {
            for (j, log) in logs.iter().enumerate() {
                if j != self.id {
                    for op in log {
                        self.mem.apply_op(j, op);
                    }
                }
            }
        }
        while !self.done && !self.parked && self.core.cycles() < epoch_end {
            match self.trace.try_next() {
                TraceEvent::Inst(d) => {
                    self.core.step(&d, &mut self.mem);
                    self.steps += 1;
                    if self.steps >= max_insts {
                        self.done = true;
                    }
                }
                TraceEvent::Barrier => self.parked = true,
                TraceEvent::Done => self.done = true,
            }
        }
    }
}

/// A cluster of out-of-order cores sharing one coherent memory
/// hierarchy, simulated by the epoch-barriered parallel engine (see the
/// [module docs](self)).
pub struct ClusterSim {
    slots: Vec<CoreSlot>,
    /// The canonical memory system: replays every core's traffic in
    /// barrier order and supplies the reported [`MemStats`].
    master: MemSystem,
    max_insts: u64,
    epoch_cycles: u64,
    tracing: bool,
    engine: EngineStats,
    /// Per-epoch attribution rows, when enabled.
    timeline: Option<EpochTimeline>,
    /// All cores done *and* the one-shot final drain has run.
    finished: bool,
}

impl ClusterSim {
    /// Builds a cluster running `programs[i]` on core `i`. The memory
    /// configuration's `cores` field must equal `programs.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the counts disagree or the configuration is invalid.
    pub fn new(
        programs: &[Program],
        core_cfg: &CoreConfig,
        mem_cfg: MemConfig,
        max_insts: u64,
    ) -> Self {
        assert_eq!(
            mem_cfg.cores,
            programs.len(),
            "mem_cfg.cores must match program count"
        );
        let n = programs.len();
        let slots = programs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut emu = Emulator::new();
                emu.load(p);
                let mut mem = MemSystem::new(mem_cfg);
                if n > 1 {
                    // multicore: buffer stores and park at AMO/fence
                    emu.cluster = Some(ClusterCtl {
                        gate: true,
                        ..ClusterCtl::default()
                    });
                    mem.start_recording();
                }
                CoreSlot {
                    id: i,
                    core: OooCore::new(core_cfg.clone(), i),
                    trace: TraceSource::new(emu, max_insts),
                    mem,
                    pending: None,
                    parked: false,
                    done: false,
                    steps: 0,
                }
            })
            .collect();
        ClusterSim {
            slots,
            master: MemSystem::new(mem_cfg),
            max_insts,
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
            tracing: false,
            engine: EngineStats::default(),
            timeline: None,
            finished: false,
        }
    }

    /// Overrides the epoch length (simulated cycles between barriers).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn with_epoch(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "epoch must be at least one cycle");
        self.epoch_cycles = cycles;
        if let Some(tl) = &mut self.timeline {
            tl.epoch_cycles = cycles;
        }
        self
    }

    /// Records a per-epoch, per-core progress timeline; the report then
    /// carries an [`EpochTimeline`] whose guest columns are
    /// deterministic (host columns are wall-clock measurements).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = Some(EpochTimeline::new(self.slots.len(), self.epoch_cycles));
        self
    }

    /// Attaches a [`MemTracer`] to the *master* memory hierarchy — the
    /// canonical instance every core's recorded traffic replays into at
    /// the barrier, in core-index order — so the collected event stream
    /// is deterministic for any host thread count and reconciles with
    /// the reported [`MemStats`]. Purely observational (the
    /// `tracing_does_not_change_timing` guarantee).
    pub fn with_mem_tracing(mut self) -> Self {
        self.master.start_tracing();
        self
    }

    /// Forces every core's emulator fast path on or off (overriding the
    /// `XT_FASTPATH` default). Architecturally a no-op either way — the
    /// determinism suite runs both settings against each other.
    pub fn with_fastpath(mut self, on: bool) -> Self {
        for s in &mut self.slots {
            s.trace.emulator_mut().set_fastpath(on);
        }
        self
    }

    /// Attaches the interrupt platform: every core gets its hart id and
    /// a private replica of the [`MmioBus`] (CLINT + PLIC + UART) sized
    /// for the whole cluster. Device *stores* travel the same buffered
    /// path as memory stores, so an MSIP write on core 0 lands on core
    /// 1's replica at the next epoch barrier — the IPI latency is the
    /// (bounded, deterministic) coherence lag. `mtime` advances with
    /// each core's retired instructions and is resynced to the cluster
    /// maximum at every barrier (docs/INTERRUPTS.md).
    pub fn with_interrupts(mut self) -> Self {
        let n = self.slots.len();
        for (i, s) in self.slots.iter_mut().enumerate() {
            let emu = s.trace.emulator_mut();
            emu.cpu.hart_id = i as u64;
            emu.attach_platform(Box::new(MmioBus::new(n)));
        }
        self
    }

    /// Attaches a pipeline tracer to every core; the report then carries
    /// per-core Konata trace text.
    pub fn with_tracers(mut self) -> Self {
        for s in &mut self.slots {
            s.core.attach_tracer();
        }
        self.tracing = true;
        self
    }

    /// Runs with the host thread count from `XT_THREADS` (default: the
    /// host's available parallelism, capped at the core count). The
    /// result is bit-identical for every thread count.
    pub fn run(self) -> ClusterReport {
        let threads = std::env::var("XT_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        self.run_threads(threads)
    }

    /// Runs with an explicit worker-thread count (clamped to the core
    /// count). Cores are partitioned into contiguous chunks, one scoped
    /// thread per chunk per epoch; the barrier is always serial.
    pub fn run_threads(mut self, threads: usize) -> ClusterReport {
        if self.slots.len() == 1 {
            return self.run_single();
        }
        while !self.step_epochs(1, threads) {}
        self.into_report()
    }

    /// Runs the identical epoch/barrier pipeline inline on the calling
    /// thread — the obviously-sequential oracle the determinism tests
    /// compare the threaded runs against.
    pub fn run_sequential(mut self) -> ClusterReport {
        if self.slots.len() == 1 {
            return self.run_single();
        }
        while !self.step_epochs(1, 1) {}
        self.into_report()
    }

    /// Whether every core has finished and the final drain has run —
    /// further [`ClusterSim::step_epochs`] calls are no-ops.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Simulated-cycle epoch boundaries crossed so far.
    pub fn epochs(&self) -> u64 {
        self.engine.epochs
    }

    /// Advances the engine by up to `count` epochs with `threads` worker
    /// threads (1 = inline, the sequential oracle; results are
    /// bit-identical either way). Returns [`ClusterSim::finished`].
    ///
    /// This is the resumable driver underneath the consuming
    /// [`ClusterSim::run`]* entry points: a [`ClusterSim::save`]d
    /// snapshot taken between `step_epochs` calls and
    /// [`ClusterSim::restore`]d into a same-shape instance continues
    /// bit-identically (tests/snapshot_resume.rs).
    pub fn step_epochs(&mut self, count: u64, threads: usize) -> bool {
        for _ in 0..count {
            if self.finished {
                break;
            }
            self.step_one_epoch(threads);
        }
        self.finished
    }

    /// One epoch: parallel (or inline) slice phase, then the serial
    /// barrier. A single-core cluster steps straight against the master
    /// hierarchy — no replicas, no barrier — in epoch-sized chunks.
    fn step_one_epoch(&mut self, threads: usize) {
        let n = self.slots.len();
        let epoch_end = (self.engine.epochs + 1).saturating_mul(self.epoch_cycles);
        let progress_before: Option<Vec<(u64, u64)>> = self
            .timeline
            .as_ref()
            .map(|_| self.slots.iter().map(|s| (s.core.cycles(), s.steps)).collect());
        if n == 1 {
            let t0 = Instant::now();
            let slot = &mut self.slots[0];
            while !slot.done && slot.core.cycles() < epoch_end {
                match slot.trace.try_next() {
                    TraceEvent::Inst(d) => {
                        slot.core.step(&d, &mut self.master);
                        slot.steps += 1;
                        if slot.steps >= self.max_insts {
                            slot.done = true;
                        }
                    }
                    TraceEvent::Done => slot.done = true,
                    TraceEvent::Barrier => unreachable!("no cluster gating on a single core"),
                }
            }
            let par_ns = t0.elapsed().as_nanos() as u64;
            self.engine.parallel_ns += par_ns;
            self.engine.epochs += 1;
            self.finished = self.slots[0].done;
            self.record_epoch(progress_before, par_ns, 0);
            return;
        }
        let threads = threads.clamp(1, n);
        let max_insts = self.max_insts;
        let t0 = Instant::now();
        if threads == 1 {
            for slot in &mut self.slots {
                slot.run_slice(epoch_end, max_insts);
            }
        } else {
            let chunk = n.div_ceil(threads);
            thread::scope(|scope| {
                for chunk_slots in self.slots.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for slot in chunk_slots {
                            slot.run_slice(epoch_end, max_insts);
                        }
                    });
                }
            });
        }
        let t1 = Instant::now();
        self.barrier();
        let par_ns = (t1 - t0).as_nanos() as u64;
        let ser_ns = t1.elapsed().as_nanos() as u64;
        self.engine.parallel_ns += par_ns;
        self.engine.serial_ns += ser_ns;
        self.engine.epochs += 1;
        if self.slots.iter().all(|s| s.done) {
            // traffic from the final barrier's released instructions
            let _ = self.drain_to_master();
            self.finished = true;
        }
        self.record_epoch(progress_before, par_ns, ser_ns);
    }

    /// Appends one timeline row: each core's guest-cycle and
    /// instruction deltas across the epoch just executed (slice plus
    /// barrier-released work), with the epoch's measured host split.
    fn record_epoch(
        &mut self,
        progress_before: Option<Vec<(u64, u64)>>,
        parallel_ns: u64,
        serial_ns: u64,
    ) {
        let (Some(tl), Some(before)) = (self.timeline.as_mut(), progress_before) else {
            return;
        };
        let mut cycles = Vec::with_capacity(self.slots.len());
        let mut steps = Vec::with_capacity(self.slots.len());
        for (s, (c0, s0)) in self.slots.iter().zip(before) {
            cycles.push(s.core.cycles() - c0);
            steps.push(s.steps - s0);
        }
        tl.record(EpochSample {
            cycles,
            steps,
            parallel_ns,
            serial_ns,
        });
    }

    /// Assembles the report after a [`ClusterSim::step_epochs`]-driven
    /// run (or mid-run, for the instructions consumed so far).
    pub fn into_report(self) -> ClusterReport {
        self.finish()
    }

    /// Single-core fast path: no replicas, no epochs — the core steps
    /// straight against the master hierarchy.
    fn run_single(mut self) -> ClusterReport {
        let t0 = Instant::now();
        let slot = &mut self.slots[0];
        loop {
            match slot.trace.try_next() {
                TraceEvent::Inst(d) => {
                    slot.core.step(&d, &mut self.master);
                    slot.steps += 1;
                    if slot.steps >= self.max_insts {
                        break;
                    }
                }
                TraceEvent::Done => break,
                TraceEvent::Barrier => unreachable!("no cluster gating on a single core"),
            }
        }
        let par_ns = t0.elapsed().as_nanos() as u64;
        self.engine.parallel_ns += par_ns;
        // the single-core fast path has no epochs: the timeline gets one
        // whole-run row so its totals still match the report
        if self.timeline.is_some() {
            let cycles = self.slots[0].core.cycles();
            let steps = self.slots[0].steps;
            if let Some(tl) = self.timeline.as_mut() {
                tl.record(EpochSample {
                    cycles: vec![cycles],
                    steps: vec![steps],
                    parallel_ns: par_ns,
                    serial_ns: 0,
                });
            }
        }
        self.finish()
    }

    /// Serializes the whole cluster — every core's emulator (plus its
    /// bus replica when interrupts are attached), timing core, memory
    /// replica, pending resync logs, and the master hierarchy — into a
    /// [`xt_snapshot::KIND_CLUSTER`] frame. Valid at any
    /// [`ClusterSim::step_epochs`] boundary. Host-time fields of
    /// [`EngineStats`] are written as zero (they are measurements, not
    /// state), so equal simulated states produce equal snapshot bytes.
    pub fn save(&self) -> Vec<u8> {
        use xt_snapshot::SnapshotState;
        let mut e = xt_snapshot::Enc::new();
        e.seq(self.slots.len());
        e.u64(self.epoch_cycles);
        e.u64(self.max_insts);
        e.bool(self.tracing);
        e.bool(self.finished);
        e.u64(self.engine.epochs);
        for s in &self.slots {
            s.trace.save(&mut e);
            match bus_of(s.trace.emulator()) {
                Some(bus) => {
                    e.bool(true);
                    bus.save(&mut e);
                }
                None => e.bool(false),
            }
            s.core.save(&mut e);
            s.mem.save(&mut e);
            match &s.pending {
                Some(logs) => {
                    e.bool(true);
                    e.seq(logs.len());
                    for log in logs.iter() {
                        e.seq(log.len());
                        for op in log {
                            xt_mem::system::save_mem_op(&mut e, op);
                        }
                    }
                }
                None => e.bool(false),
            }
            e.bool(s.parked);
            e.bool(s.done);
            e.u64(s.steps);
        }
        self.master.save(&mut e);
        match &self.timeline {
            Some(tl) => {
                e.bool(true);
                tl.save(&mut e);
            }
            None => e.bool(false),
        }
        xt_snapshot::seal(xt_snapshot::KIND_CLUSTER, e.bytes())
    }

    /// Restores a [`ClusterSim::save`]d frame into this cluster. The
    /// target must have been built with the same shape — core count,
    /// core/memory configuration, interrupt platform on or off — or
    /// [`xt_snapshot::SnapshotError::Mismatch`] is returned (the target
    /// is then partially restored and must be discarded). The engine
    /// fast-path setting is *not* part of the snapshot: it is
    /// architecturally invisible, so a snapshot taken with the block
    /// cache on restores fine into an instance running with it off.
    pub fn restore(&mut self, bytes: &[u8]) -> xt_snapshot::Result<()> {
        use xt_snapshot::SnapshotState;
        let payload = xt_snapshot::open(bytes, xt_snapshot::KIND_CLUSTER)?;
        let mut d = xt_snapshot::Dec::new(payload);
        if d.len(1)? != self.slots.len() {
            return Err(xt_snapshot::SnapshotError::Mismatch { what: "core count" });
        }
        self.epoch_cycles = d.u64()?;
        if self.epoch_cycles == 0 {
            return Err(xt_snapshot::SnapshotError::Corrupt {
                what: "epoch cycles",
            });
        }
        self.max_insts = d.u64()?;
        self.tracing = d.bool()?;
        self.finished = d.bool()?;
        self.engine = EngineStats {
            epochs: d.u64()?,
            serial_ns: 0,
            parallel_ns: 0,
        };
        for s in &mut self.slots {
            s.trace.restore(&mut d)?;
            let has_bus = d.bool()?;
            match (has_bus, bus_of_mut(s.trace.emulator_mut())) {
                (true, Some(bus)) => bus.restore(&mut d)?,
                (false, None) => {}
                _ => {
                    return Err(xt_snapshot::SnapshotError::Mismatch {
                        what: "interrupt platform",
                    })
                }
            }
            s.core.restore(&mut d)?;
            s.mem.restore(&mut d)?;
            s.pending = if d.bool()? {
                let n_logs = d.len(8)?;
                let mut logs = Vec::with_capacity(n_logs);
                for _ in 0..n_logs {
                    let n_ops = d.len(8)?;
                    let mut log = Vec::with_capacity(n_ops);
                    for _ in 0..n_ops {
                        log.push(xt_mem::system::restore_mem_op(&mut d)?);
                    }
                    logs.push(log);
                }
                Some(Arc::new(logs))
            } else {
                None
            };
            s.parked = d.bool()?;
            s.done = d.bool()?;
            s.steps = d.u64()?;
        }
        self.master.restore(&mut d)?;
        match (d.bool()?, self.timeline.as_mut()) {
            (true, Some(tl)) => tl.restore(&mut d)?,
            (false, None) => {}
            _ => {
                return Err(xt_snapshot::SnapshotError::Mismatch {
                    what: "epoch timeline",
                })
            }
        }
        d.finish()
    }

    /// The serial epoch barrier (see the [module docs](self) for the
    /// three phases and the ordering argument).
    fn barrier(&mut self) {
        let n = self.slots.len();
        // phase 1: timing traffic to the master; replicas resync from
        // the shared logs at the start of their next slice, in parallel
        let logs = Arc::new(self.drain_to_master());
        for slot in &mut self.slots {
            if !slot.done {
                slot.pending = Some(Arc::clone(&logs));
            }
        }
        // phase 2: buffered functional stores become globally visible
        for src in 0..n {
            let log = self.take_store_log(src);
            self.propagate_stores(src, &log);
        }
        // phase 3: release parked cores' gated instructions, one each
        for i in 0..n {
            if !self.slots[i].parked {
                continue;
            }
            self.slots[i].parked = false;
            if let Some(ctl) = self.slots[i].trace.emulator_mut().cluster.as_mut() {
                ctl.release_one = true;
            }
            match self.slots[i].trace.try_next() {
                TraceEvent::Inst(d) => {
                    let slot = &mut self.slots[i];
                    slot.core.step(&d, &mut slot.mem);
                    slot.steps += 1;
                    if slot.steps >= self.max_insts {
                        slot.done = true;
                    }
                    // the released op is globally visible *now*: its
                    // store reaches every core (killing reservations)
                    // before the next core's gated op executes, which is
                    // what serializes cluster-wide atomics
                    let log = self.take_store_log(i);
                    self.propagate_stores(i, &log);
                }
                TraceEvent::Done => self.slots[i].done = true,
                TraceEvent::Barrier => unreachable!("released instruction parked again"),
            }
        }
        self.sync_mtime();
    }

    /// Resyncs every bus replica's `mtime` to the cluster maximum. Each
    /// core ticks its private CLINT replica per retired instruction, so
    /// between barriers the replicas drift apart by at most one epoch's
    /// retirement; pinning them to the deterministic maximum here keeps
    /// timer-interrupt delivery a function of the instruction streams
    /// alone (not of which replica a compare was armed on).
    fn sync_mtime(&mut self) {
        let max = self
            .slots
            .iter()
            .filter_map(|s| bus_of(s.trace.emulator()).map(|b| b.clint.mtime()))
            .max();
        if let Some(max) = max {
            for s in &mut self.slots {
                if let Some(b) = bus_of_mut(s.trace.emulator_mut()) {
                    b.clint.set_mtime(max);
                }
            }
        }
    }

    /// Replays every replica's recorded [`MemOp`] log into the master in
    /// core-index order (the canonical, deterministic arbitration) and
    /// returns the logs for the replicas' parallel resync.
    fn drain_to_master(&mut self) -> Vec<Vec<MemOp>> {
        let logs: Vec<Vec<MemOp>> = self.slots.iter_mut().map(|s| s.mem.take_log()).collect();
        for (i, log) in logs.iter().enumerate() {
            for op in log {
                self.master.apply_op(i, op);
            }
        }
        logs
    }

    /// Drains core `i`'s buffered functional stores.
    fn take_store_log(&mut self, i: usize) -> Vec<StoreRec> {
        self.slots[i]
            .trace
            .emulator_mut()
            .cluster
            .as_mut()
            .map(|c| std::mem::take(&mut c.store_log))
            .unwrap_or_default()
    }

    /// Applies `src`'s store log to every core's memory, in program
    /// order, killing LR reservations on touched lines (a core's own
    /// stores never kill its own reservation). The source core is
    /// included — its values are already present, so its own writes are
    /// no-ops value-wise — because the barrier propagates all logs in
    /// core-index order: when two cores raced on the same address in
    /// one epoch, re-applying every log in the canonical order leaves
    /// *every* core holding the same winner (the highest-index writer,
    /// matching [`ClusterSim::drain_to_master`]'s arbitration).
    fn propagate_stores(&mut self, src: usize, log: &[StoreRec]) {
        if log.is_empty() {
            return;
        }
        let line_mask = !(RESERVATION_LINE - 1);
        for j in 0..self.slots.len() {
            let own = j == src;
            let emu = self.slots[j].trace.emulator_mut();
            for s in log {
                // a device store already took effect on the source
                // core's own bus replica at execute time; re-applying it
                // here would double the side effect (MSIP toggles,
                // claim/complete). Other cores' replicas do receive it —
                // that is the IPI delivery path.
                if own && emu.mmio_contains(s.pa) {
                    continue;
                }
                // through the emulator, not raw memory: a cross-core
                // store to a cached code page must invalidate the
                // receiving core's decoded blocks (docs/FASTPATH.md)
                emu.apply_external_store(s.pa, s.val, s.size as usize);
                if own {
                    continue;
                }
                if let Some(resv) = emu.cpu.reservation {
                    if resv & line_mask == s.pa & line_mask {
                        emu.cpu.reservation = None;
                    }
                }
            }
        }
    }

    /// Assembles the report from the master stats and per-core state.
    fn finish(mut self) -> ClusterReport {
        let mstats = self.master.stats();
        let konata = if self.tracing {
            Some(
                self.slots
                    .iter_mut()
                    .map(|s| {
                        s.core
                            .take_tracer()
                            .map(|t| t.to_konata())
                            .unwrap_or_default()
                    })
                    .collect(),
            )
        } else {
            None
        };
        let cores: Vec<PerfCounters> = self
            .slots
            .iter_mut()
            .enumerate()
            .map(|(i, s)| {
                let mut p = s.core.perf().clone();
                p.cycles = s.core.cycles();
                p.prefetch_hits = mstats.prefetches_useful.get(i).copied().unwrap_or(0);
                p
            })
            .collect();
        ClusterReport {
            cores,
            mem: mstats,
            exit_codes: self.slots.iter().map(|s| s.trace.exit_code).collect(),
            konata,
            engine: self.engine,
            timeline: self.timeline.take(),
            mem_events: self.master.stop_tracing(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_asm::Asm;
    use xt_isa::reg::Gpr;

    /// A private-working-set kernel: each core sums its own array.
    fn private_kernel(id: u64) -> Program {
        let mut a = Asm::new().with_data_base(0x8100_0000 + id * 0x0010_0000);
        let buf = a.data_zeros("buf", 64 * 1024);
        a.la(Gpr::A1, buf);
        a.li(Gpr::A2, 4096);
        let top = a.here();
        a.ld(Gpr::A4, Gpr::A1, 0);
        a.add(Gpr::A5, Gpr::A5, Gpr::A4);
        a.addi(Gpr::A1, Gpr::A1, 8);
        a.addi(Gpr::A2, Gpr::A2, -1);
        a.bnez(Gpr::A2, top);
        a.halt();
        a.finish().unwrap()
    }

    /// A sharing kernel: all cores hammer the same cache line with an
    /// atomic counter (the contended pattern that exposes ping-pong).
    fn sharing_kernel(iters: i64) -> Program {
        let mut a = Asm::new();
        let cell = a.data_u64("cell", &[0]);
        a.la(Gpr::A1, cell);
        a.li(Gpr::A2, iters);
        a.li(Gpr::A3, 1);
        let top = a.here();
        a.amoadd_d(Gpr::A4, Gpr::A3, Gpr::A1);
        a.addi(Gpr::A2, Gpr::A2, -1);
        a.bnez(Gpr::A2, top);
        a.halt();
        a.finish().unwrap()
    }

    /// The same atomic-counter kernel on a private cell.
    fn private_atomic_kernel(id: u64, iters: i64) -> Program {
        let mut a = Asm::new().with_data_base(0x8100_0000 + id * 0x0010_0000);
        let cell = a.data_u64("cell", &[0]);
        a.la(Gpr::A1, cell);
        a.li(Gpr::A2, iters);
        a.li(Gpr::A3, 1);
        let top = a.here();
        a.amoadd_d(Gpr::A4, Gpr::A3, Gpr::A1);
        a.addi(Gpr::A2, Gpr::A2, -1);
        a.bnez(Gpr::A2, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn four_private_cores_scale() {
        let mk = |n: usize| {
            let progs: Vec<Program> = (0..n as u64).map(private_kernel).collect();
            let mem_cfg = MemConfig {
                cores: n,
                ..MemConfig::default()
            };
            ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 10_000_000).run()
        };
        let one = mk(1);
        let four = mk(4);
        assert!(four.total_instructions() > 3 * one.total_instructions());
        // private working sets: near-linear throughput scaling
        assert!(
            four.throughput_ipc() > 2.0 * one.throughput_ipc(),
            "4-core throughput {:.2} vs 1-core {:.2}",
            four.throughput_ipc(),
            one.throughput_ipc()
        );
        // the only shared line is the halt mailbox: a handful of snoops
        assert!(
            four.mem.snoops_sent <= 8,
            "private sets should barely snoop: {}",
            four.mem.snoops_sent
        );
    }

    #[test]
    fn sharing_generates_coherence_traffic() {
        let progs: Vec<Program> = (0..4).map(|_| sharing_kernel(200)).collect();
        let mem_cfg = MemConfig {
            cores: 4,
            ..MemConfig::default()
        };
        let r = ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 1_000_000).run();
        assert!(r.mem.snoops_sent > 0, "line ping-pong produces snoops");
        assert!(r.mem.c2c_transfers > 0, "dirty lines move cache-to-cache");
        for code in &r.exit_codes {
            assert!(code.is_some(), "all cores halted");
        }
    }

    #[test]
    fn contended_atomic_slower_than_private_atomic() {
        let share: Vec<Program> = (0..2).map(|_| sharing_kernel(500)).collect();
        let priv_: Vec<Program> = (0..2u64).map(|i| private_atomic_kernel(i, 500)).collect();
        let mem2 = || MemConfig {
            cores: 2,
            ..MemConfig::default()
        };
        let rs = ClusterSim::new(&share, &CoreConfig::xt910(), mem2(), 1_000_000).run();
        let shared_cpi = rs.makespan() as f64 / rs.total_instructions() as f64;
        let rp = ClusterSim::new(&priv_, &CoreConfig::xt910(), mem2(), 1_000_000).run();
        let priv_cpi = rp.makespan() as f64 / rp.total_instructions() as f64;
        assert!(
            shared_cpi > priv_cpi * 1.2,
            "contended CPI {shared_cpi:.2} vs private {priv_cpi:.2}"
        );
        assert!(rs.mem.c2c_transfers > rp.mem.c2c_transfers);
    }

    #[test]
    fn atomic_increments_serialize_cluster_wide() {
        // 4 cores x 50 atomic increments on one cell: the cell must end
        // at exactly 200 in every core's view of memory
        let progs: Vec<Program> = (0..4).map(|_| sharing_kernel(50)).collect();
        let mem_cfg = MemConfig {
            cores: 4,
            ..MemConfig::default()
        };
        let r = ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 1_000_000).run();
        for code in &r.exit_codes {
            assert!(code.is_some(), "all cores halted");
        }
        // the final amoadd_d result (old value) on some core is 199
        // exactly when no increment was lost; total retires confirm all
        // 4 x 50 loop iterations ran
        let total: u64 = r.cores.iter().map(|c| c.instructions).sum();
        assert!(total > 4 * 50 * 3, "all loops completed");
    }

    #[test]
    fn engine_stats_record_epochs_and_host_time() {
        let progs: Vec<Program> = (0..2u64).map(private_kernel).collect();
        let mem_cfg = MemConfig {
            cores: 2,
            ..MemConfig::default()
        };
        let r = ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 1_000_000)
            .run_threads(2);
        assert!(r.engine.epochs > 0, "multicore run crosses barriers");
        assert!(r.engine.parallel_ns > 0, "slice phase takes host time");
        let share = r.engine.serial_share();
        assert!((0.0..=1.0).contains(&share), "share in [0,1]: {share}");
    }

    #[test]
    fn timeline_accounts_every_cycle_and_instruction() {
        let progs: Vec<Program> = (0..2u64).map(private_kernel).collect();
        let mem_cfg = MemConfig {
            cores: 2,
            ..MemConfig::default()
        };
        let r = ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 1_000_000)
            .with_timeline()
            .run_threads(2);
        let tl = r.timeline.as_ref().expect("timeline requested");
        assert_eq!(tl.cores, 2);
        assert_eq!(tl.epochs.len() as u64, r.engine.epochs, "one row per epoch");
        for (c, core) in r.cores.iter().enumerate() {
            assert_eq!(
                tl.core_cycles(c),
                core.cycles,
                "core {c}: timeline rows sum to the reported cycle count"
            );
        }
        // host attribution sums to the engine totals
        let par: u64 = tl.epochs.iter().map(|e| e.parallel_ns).sum();
        let ser: u64 = tl.epochs.iter().map(|e| e.serial_ns).sum();
        assert_eq!(par, r.engine.parallel_ns);
        assert_eq!(ser, r.engine.serial_ns);
        // the guest-axis chrome render is valid and host-free
        let j = tl.to_chrome_json(false);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains("host"));
    }

    #[test]
    fn timeline_guest_columns_deterministic_across_threads() {
        let mk = || {
            let progs: Vec<Program> = (0..4u64).map(private_kernel).collect();
            let mem_cfg = MemConfig {
                cores: 4,
                ..MemConfig::default()
            };
            ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 200_000).with_timeline()
        };
        let a = mk().run_threads(1).timeline.unwrap();
        let b = mk().run_threads(4).timeline.unwrap();
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (ra, rb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ra.cycles, rb.cycles, "guest cycles are thread-invariant");
            assert_eq!(ra.steps, rb.steps, "guest steps are thread-invariant");
        }
        assert_eq!(
            a.to_chrome_json(false),
            b.to_chrome_json(false),
            "guest-axis render is byte-identical"
        );
    }

    #[test]
    fn cluster_mem_events_reconcile_and_are_thread_invariant() {
        let mk = || {
            let progs: Vec<Program> = (0..2).map(|_| sharing_kernel(100)).collect();
            let mem_cfg = MemConfig {
                cores: 2,
                ..MemConfig::default()
            };
            ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 500_000).with_mem_tracing()
        };
        let r1 = mk().run_threads(1);
        let r2 = mk().run_threads(2);
        assert_eq!(r1.mem, r2.mem, "stats thread-invariant");
        let e1 = r1.mem_events.expect("tracing requested");
        let e2 = r2.mem_events.expect("tracing requested");
        assert!(!e1.is_empty());
        assert_eq!(e1.events, e2.events, "event stream bit-identical");
        e1.reconcile(&r1.mem).expect("events reconcile with stats");
    }

    #[test]
    fn thread_counts_agree_on_private_work() {
        let mk = || {
            let progs: Vec<Program> = (0..4u64).map(private_kernel).collect();
            let mem_cfg = MemConfig {
                cores: 4,
                ..MemConfig::default()
            };
            ClusterSim::new(&progs, &CoreConfig::xt910(), mem_cfg, 1_000_000)
        };
        let seq = mk().run_sequential();
        let t1 = mk().run_threads(1);
        let t4 = mk().run_threads(4);
        assert_eq!(seq.cores, t1.cores);
        assert_eq!(seq.cores, t4.cores);
        assert_eq!(seq.mem, t1.mem);
        assert_eq!(seq.mem, t4.mem);
        assert_eq!(seq.exit_codes, t4.exit_codes);
    }
}
