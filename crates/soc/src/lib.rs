//! # xt-soc — multi-core cluster and SoC assembly (§II, §VI)
//!
//! The XT-910 groups up to 4 cores into a cluster sharing an inclusive
//! MOSEI L2 with a snoop filter; up to 4 clusters connect through the
//! Ncore coherent interconnect (Fig. 13). The SoC also carries the
//! standard CLINT (software/timer interrupts) and PLIC (external
//! interrupts) blocks.
//!
//! This crate provides:
//!
//! * [`ClusterSim`] — the deterministic epoch-barriered parallel
//!   engine: 1-4 core timing models step concurrently (one host thread
//!   per core chunk) against private memory-hierarchy replicas, and a
//!   serial barrier arbitrates the recorded traffic through the shared
//!   master [`xt_mem::MemSystem`] in core-index order. Results are
//!   bit-identical for any `XT_THREADS` value (docs/CLUSTER.md);
//! * [`MmioBus`] — the synchronous, strongly-ordered device bus
//!   implementing [`xt_emu::Platform`]: address-window routing to the
//!   devices below plus denied-access diagnostics (docs/INTERRUPTS.md);
//! * [`Clint`] and [`Plic`] — functional models of the interrupt
//!   controllers with their standard register maps, exposed both as
//!   direct method APIs and as width-checked MMIO devices;
//! * [`Uart`] — a TX-only console UART;
//! * [`SocConfig`] — the Table I configuration space.
//!
//! Functional note: each core executes its own program image (the
//! trace-driven methodology keeps architectural state per core); the
//! *timing* hierarchy — L2, snoop filter, DRAM channel — is shared, so
//! contention and coherence traffic are modeled cluster-wide. The
//! multi-cluster (Ncore) level is represented by the [`SocConfig`]
//! configuration space; inter-cluster coherence timing is out of scope
//! (DESIGN.md).

pub mod bus;
pub mod clint;
pub mod cluster;
pub mod config;
pub mod plic;
pub mod timeline;
pub mod uart;

pub use bus::{attach_bus, bus_of, bus_of_mut, DeniedAccess, MmioBus, MmioDevice};
pub use clint::Clint;
pub use cluster::{ClusterReport, ClusterSim, EngineStats, DEFAULT_EPOCH_CYCLES};
pub use config::SocConfig;
pub use plic::Plic;
pub use timeline::{EpochSample, EpochTimeline};
pub use uart::Uart;
